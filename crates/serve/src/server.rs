//! The standalone (single-process) server: configuration, lifecycle
//! handle, and lifetime stats over the shared reactor engine.
//!
//! The actual transport — nonblocking sockets, `poll(2)` readiness,
//! bounded worker queue, graceful drain — lives in [`crate::reactor`];
//! this module binds it to [`AppState`] (the registry + endpoints) and
//! keeps the public `Server`/`ServeHandle`/`ServeStats` surface that
//! the CLI, benches, and tests use. The router tier
//! ([`crate::router`]) drives the very same engine with its own
//! application state.
//!
//! Backpressure is explicit and unchanged from the blocking engine it
//! replaced: the request queue is a bounded `crossbeam` channel (queue
//! full answers `429`), every queued request carries its enqueue time
//! (a worker that dequeues it after the deadline answers `503`), and
//! handler panics are contained with `catch_unwind` (`500`). Shutdown
//! (via [`ServeHandle::shutdown`] or `POST /v1/shutdown`) flips a
//! shared flag: reactors stop accepting, close idle connections,
//! finish in-flight requests, and exit; [`ServeHandle::join`] returns
//! the final [`ServeStats`].

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dt_telemetry::MetricsRegistry;

use crate::api::AppState;
use crate::artifact::ArtifactRegistry;
use crate::http::{Request, Response};
use crate::reactor::{start_engine, App, Engine};
use crate::ServeError;

/// Tuning knobs for a [`Server`] (and, with `shards`, a fleet tier).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling parsed requests.
    pub workers: usize,
    /// Reactor (event-loop) threads sharing the listener; more than
    /// one shards the accept path.
    pub reactors: usize,
    /// Bounded queue depth between the reactors and the workers;
    /// requests beyond this return `429`.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes (`413` beyond).
    pub max_body_bytes: usize,
    /// Longest a request may wait in the queue before a worker answers
    /// `503` instead of doing stale work.
    pub queue_deadline: Duration,
    /// `/v1/thermo` response cache capacity (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            reactors: 1,
            queue_depth: 128,
            max_body_bytes: 1 << 20,
            queue_deadline: Duration::from_secs(2),
            cache_capacity: 256,
        }
    }
}

impl ServeConfig {
    /// Reject configurations the engine cannot run.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] for zero workers/reactors/queue/body.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::BadConfig("workers must be > 0".into()));
        }
        if self.reactors == 0 {
            return Err(ServeError::BadConfig("reactors must be > 0".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::BadConfig("queue_depth must be > 0".into()));
        }
        if self.max_body_bytes == 0 {
            return Err(ServeError::BadConfig("max_body_bytes must be > 0".into()));
        }
        Ok(())
    }
}

/// Counters describing one server's lifetime, reported by
/// [`ServeHandle::join`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted by the reactors.
    pub connections_admitted: u64,
    /// Requests rejected with `429` because the worker queue was full.
    pub queue_rejections: u64,
    /// Requests answered `503` after exceeding the queue deadline.
    pub deadline_expired: u64,
    /// Requests whose handler panicked (answered `500`).
    pub handler_panics: u64,
    /// Requests handled to completion (any status).
    pub requests_handled: u64,
}

impl ServeStats {
    /// Snapshot the engine counters out of a metrics registry.
    pub(crate) fn from_metrics(m: &MetricsRegistry) -> ServeStats {
        ServeStats {
            connections_admitted: m.counter("connections_admitted").get(),
            queue_rejections: m.counter("queue_rejections").get(),
            deadline_expired: m.counter("deadline_expired").get(),
            handler_panics: m.counter("handler_panics").get(),
            requests_handled: m.counter("requests_total").get(),
        }
    }
}

impl App for AppState {
    fn handle(&self, req: &Request) -> Response {
        AppState::handle(self, req)
    }

    fn shutdown_requested(&self) -> bool {
        AppState::shutdown_requested(self)
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

/// The thermodynamics query service.
///
/// `Server` is a namespace: [`Server::start`] does the work and hands
/// back a [`ServeHandle`].
pub struct Server;

impl Server {
    /// Bind, spawn the reactor and worker threads, and return a handle.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] for zero workers/reactors/queue/body,
    /// [`ServeError::Bind`] when the listen socket cannot be created,
    /// or any [`AppState::new`] error.
    pub fn start(
        registry: ArtifactRegistry,
        config: ServeConfig,
    ) -> Result<ServeHandle, ServeError> {
        config.validate()?;
        let state = Arc::new(AppState::new(registry, config.cache_capacity)?);
        let engine = start_engine(&state, &config)?;
        Ok(ServeHandle { state, engine })
    }
}

/// A running server: the shared state plus the engine to join.
pub struct ServeHandle {
    state: Arc<AppState>,
    engine: Engine,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.engine.local_addr()
    }

    /// The shared application state (registry, metrics, drain flag).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Begin a graceful drain: stop accepting, finish what's queued and
    /// in flight. Idempotent; `POST /v1/shutdown` flips the same flag.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Wait for the drain to complete and report lifetime stats.
    /// Requests admitted before shutdown are all answered first.
    pub fn join(self) -> ServeStats {
        self.engine.join();
        ServeStats::from_metrics(&self.state.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::fixture_artifact;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn start_fixture_server(config: ServeConfig) -> ServeHandle {
        let mut registry = ArtifactRegistry::new();
        registry.insert(fixture_artifact("srv"));
        Server::start(registry, config).unwrap()
    }

    /// One blocking HTTP exchange on a fresh connection; returns
    /// (status, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut BufReader::new(stream))
    }

    fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_healthz_over_a_real_socket() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
        assert!(stats.requests_handled >= 1);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let handle = start_fixture_server(ServeConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let (status, _) = read_response(&mut reader);
            assert_eq!(status, 200);
        }
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.connections_admitted, 1);
        assert_eq!(stats.requests_handled, 3);
    }

    #[test]
    fn sharded_accept_serves_across_reactors() {
        let handle = start_fixture_server(ServeConfig {
            reactors: 2,
            ..ServeConfig::default()
        });
        let addr = handle.local_addr();
        for _ in 0..8 {
            let (status, _) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            assert_eq!(status, 200);
        }
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.requests_handled, 8);
        assert_eq!(stats.connections_admitted, 8);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let handle = start_fixture_server(ServeConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        // Two requests in one write: the reactor must serve them
        // sequentially off the same buffer.
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream);
        let (s1, _) = read_response(&mut reader);
        let (s2, _) = read_response(&mut reader);
        assert_eq!((s1, s2), (200, 200));
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.requests_handled, 2);
        assert_eq!(stats.connections_admitted, 1);
    }

    #[test]
    fn graceful_shutdown_refuses_new_connections() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
        // The listener is gone: connects fail or are refused.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        let (status, body) = roundtrip(
            addr,
            "POST /v1/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "{body}");
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
    }

    #[test]
    fn bad_config_is_rejected() {
        for bad in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                reactors: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                Server::start(ArtifactRegistry::new(), bad),
                Err(ServeError::BadConfig(_))
            ));
        }
    }
}
