//! The transport layer: listener, bounded admission queue, worker pool,
//! deadlines, and graceful drain.
//!
//! ```text
//!             accept                    bounded channel
//! clients ──▶ listener thread ──try_send──▶ [queue] ──recv──▶ worker × N
//!                │ full? write 429 inline       │ waited > deadline? 503
//!                │ draining? write 503          └─▶ keep-alive request loop
//! ```
//!
//! Backpressure is explicit: the queue is a bounded `crossbeam` channel,
//! and when it is full the *listener* writes `429 Too Many Requests` and
//! closes — no unbounded buffering, no silent latency cliff. Every
//! queued connection carries its enqueue time; a worker that dequeues it
//! after the configured deadline answers `503` instead of doing stale
//! work. Handler panics are contained with `catch_unwind` and answered
//! with `500` — a malicious request can cost at most its own connection.
//!
//! Shutdown (via [`ServeHandle::shutdown`] or `POST /v1/shutdown`) flips
//! a shared flag: the listener stops accepting and drops the queue
//! sender, workers drain what was already admitted, finish in-flight
//! requests, and exit. [`ServeHandle::join`] returns the final
//! [`ServeStats`].

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender, TrySendError};

use crate::api::AppState;
use crate::artifact::ArtifactRegistry;
use crate::http::{read_request, write_response, HttpReadError, Response};
use crate::ServeError;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth between the listener and the workers;
    /// admission beyond this returns `429`.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes (`413` beyond).
    pub max_body_bytes: usize,
    /// Longest a connection may wait in the queue before a worker
    /// answers `503` instead of serving it.
    pub queue_deadline: Duration,
    /// `/v1/thermo` response cache capacity (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 128,
            max_body_bytes: 1 << 20,
            queue_deadline: Duration::from_secs(2),
            cache_capacity: 256,
        }
    }
}

/// Counters describing one server's lifetime, reported by
/// [`ServeHandle::join`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted and admitted to the queue.
    pub connections_admitted: u64,
    /// Connections rejected with `429` because the queue was full.
    pub queue_rejections: u64,
    /// Connections answered `503` after exceeding the queue deadline.
    pub deadline_expired: u64,
    /// Requests whose handler panicked (answered `500`).
    pub handler_panics: u64,
    /// Requests handled to completion (any status).
    pub requests_handled: u64,
}

/// The thermodynamics query service.
///
/// `Server` is a namespace: [`Server::start`] does the work and hands
/// back a [`ServeHandle`].
pub struct Server;

/// One connection travelling listener → queue → worker.
struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

impl Server {
    /// Bind, spawn the listener and worker threads, and return a handle.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] for zero workers/queue/body-limit,
    /// [`ServeError::Bind`] when the listen socket cannot be created,
    /// or any [`AppState::new`] error.
    pub fn start(
        registry: ArtifactRegistry,
        config: ServeConfig,
    ) -> Result<ServeHandle, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::BadConfig("workers must be > 0".into()));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::BadConfig("queue_depth must be > 0".into()));
        }
        if config.max_body_bytes == 0 {
            return Err(ServeError::BadConfig("max_body_bytes must be > 0".into()));
        }
        let state = Arc::new(AppState::new(registry, config.cache_capacity)?);

        let bind_err = |message: String| ServeError::Bind {
            addr: config.addr.clone(),
            message,
        };
        let listener = TcpListener::bind(&config.addr).map_err(|e| bind_err(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| bind_err(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| bind_err(e.to_string()))?;

        let (tx, rx) = bounded::<Job>(config.queue_depth);

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = rx.clone();
            let state = Arc::clone(&state);
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dt-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state, &cfg))
                    .map_err(|e| bind_err(format!("spawning worker: {e}")))?,
            );
        }
        drop(rx);

        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("dt-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &tx, &acceptor_state))
            .map_err(|e| bind_err(format!("spawning acceptor: {e}")))?;

        Ok(ServeHandle {
            state,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server: the shared state plus the threads to join.
pub struct ServeHandle {
    state: Arc<AppState>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (registry, metrics, drain flag).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Begin a graceful drain: stop accepting, finish what's queued and
    /// in flight. Idempotent; `POST /v1/shutdown` flips the same flag.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Wait for the drain to complete and report lifetime stats.
    /// Requests admitted before shutdown are all answered first.
    pub fn join(mut self) -> ServeStats {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let m = &self.state.metrics;
        ServeStats {
            connections_admitted: m.counter("connections_admitted").get(),
            queue_rejections: m.counter("queue_rejections").get(),
            deadline_expired: m.counter("deadline_expired").get(),
            handler_panics: m.counter("handler_panics").get(),
            requests_handled: m.counter("requests_total").get(),
        }
    }
}

/// Accept until shutdown; admit via `try_send`, answering `429`
/// (queue full) or `503` (draining) inline.
fn accept_loop(listener: &TcpListener, tx: &Sender<Job>, state: &AppState) {
    let admitted = state.metrics.counter("connections_admitted");
    let rejected = state.metrics.counter("queue_rejections");
    loop {
        if state.shutdown_requested() {
            return; // drops tx: workers drain the queue and exit
        }
        match listener.accept() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
            Ok((stream, _peer)) => {
                // The listener is non-blocking; accepted sockets must
                // not inherit that. Disable Nagle: responses are small
                // and latency-sensitive, and Nagle + delayed ACK stalls
                // keep-alive request/response cycles by ~40 ms.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let job = Job {
                    stream,
                    enqueued: Instant::now(),
                };
                match tx.try_send(job) {
                    Ok(()) => admitted.inc(),
                    Err(TrySendError::Full(job)) => {
                        rejected.inc();
                        refuse(
                            job.stream,
                            &Response::error(429, "service saturated, retry later"),
                        );
                    }
                    Err(TrySendError::Disconnected(job)) => {
                        refuse(
                            job.stream,
                            &Response::error(503, "service is shutting down"),
                        );
                        return;
                    }
                }
            }
        }
    }
}

/// Best-effort error reply on a connection we will not serve.
fn refuse(mut stream: TcpStream, response: &Response) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = write_response(&mut stream, response, true);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Dequeue connections until the listener hangs up and the queue is dry.
fn worker_loop(rx: &crossbeam::channel::Receiver<Job>, state: &AppState, cfg: &ServeConfig) {
    let expired = state.metrics.counter("deadline_expired");
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
            Ok(job) => {
                if job.enqueued.elapsed() > cfg.queue_deadline {
                    expired.inc();
                    refuse(job.stream, &Response::error(503, "queue deadline exceeded"));
                    continue;
                }
                serve_connection(job.stream, state, cfg);
            }
        }
    }
}

/// The keep-alive request loop for one admitted connection.
fn serve_connection(stream: TcpStream, state: &AppState, cfg: &ServeConfig) {
    // Short read timeout so idle keep-alive connections notice a drain
    // quickly; write timeout so a wedged client cannot stall a worker.
    if stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = stream;
    let panics = state.metrics.counter("handler_panics");

    loop {
        match read_request(&mut reader, cfg.max_body_bytes) {
            Ok(req) => {
                // A panicking handler answers 500 and costs only this
                // connection — the worker thread survives.
                let response = match catch_unwind(AssertUnwindSafe(|| state.handle(&req))) {
                    Ok(resp) => resp,
                    Err(_) => {
                        panics.inc();
                        Response::error(500, "internal error")
                    }
                };
                let close = req.wants_close() || state.shutdown_requested();
                if write_response(&mut writer, &response, close).is_err() || close {
                    return;
                }
            }
            Err(HttpReadError::Closed) => return,
            Err(HttpReadError::Timeout) => {
                // Idle between requests: keep waiting unless draining.
                if state.shutdown_requested() {
                    return;
                }
            }
            Err(e) => {
                // Framing is unreliable after a protocol error, so
                // answer and close.
                let response = match &e {
                    HttpReadError::BodyTooLarge { .. } => Response::error(413, &e.to_string()),
                    HttpReadError::HeadersTooLarge => Response::error(431, &e.to_string()),
                    HttpReadError::Unsupported(_) => Response::error(501, &e.to_string()),
                    HttpReadError::Malformed(_) => Response::error(400, &e.to_string()),
                    HttpReadError::Io(_) => return,
                    HttpReadError::Closed | HttpReadError::Timeout => unreachable!(),
                };
                let _ = write_response(&mut writer, &response, true);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::fixture_artifact;
    use std::io::{BufRead, BufReader, Write};

    fn start_fixture_server(config: ServeConfig) -> ServeHandle {
        let mut registry = ArtifactRegistry::new();
        registry.insert(fixture_artifact("srv"));
        Server::start(registry, config).unwrap()
    }

    /// One blocking HTTP exchange on a fresh connection; returns
    /// (status, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut BufReader::new(stream))
    }

    fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_healthz_over_a_real_socket() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
        assert!(stats.requests_handled >= 1);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let handle = start_fixture_server(ServeConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let (status, _) = read_response(&mut reader);
            assert_eq!(status, 200);
        }
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.connections_admitted, 1);
        assert_eq!(stats.requests_handled, 3);
    }

    #[test]
    fn graceful_shutdown_refuses_new_connections() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
        // The listener is gone: connects fail or are refused.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let handle = start_fixture_server(ServeConfig::default());
        let addr = handle.local_addr();
        let (status, body) = roundtrip(
            addr,
            "POST /v1/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "{body}");
        let stats = handle.join();
        assert_eq!(stats.handler_panics, 0);
    }

    #[test]
    fn bad_config_is_rejected() {
        let registry = ArtifactRegistry::new();
        let bad = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(registry, bad),
            Err(ServeError::BadConfig(_))
        ));
    }
}
