//! Single-flight execution: at most one in-flight computation per key.
//!
//! When a cold popular key gets hit by many concurrent requesters, the
//! naive cache does the expensive fill once *per requester* — a cache
//! stampede that can occupy every worker with identical work. With
//! single-flight, the first requester (the **leader**) runs the
//! computation; everyone else arriving before it finishes (the
//! **followers**) parks on a condvar and receives a clone of the
//! leader's result. The serving layer composes this with the LRU in
//! [`crate::cache::ResponseCache`], turning N concurrent cold-key
//! requests into exactly one evaluation.
//!
//! A leader that panics does not strand its followers: a drop guard
//! poisons the flight, wakes everyone, and each follower retries —
//! one of them becomes the next leader. (The engine's `catch_unwind`
//! then answers the panicking request itself with `500`.)

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// The lifecycle of one in-flight computation.
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; followers clone this.
    Done(V),
    /// The leader panicked; followers must retry.
    Poisoned,
}

/// One in-flight computation, shared between leader and followers.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// A keyed single-flight group. `K` is the deduplication key; `V` is
/// the (cloneable) result every concurrent caller receives.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Removes the flight and wakes followers even if the leader's closure
/// panicked: the unwind path marks the flight poisoned so followers
/// re-elect instead of waiting forever.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    group: &'a SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    completed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            let mut state = self.flight.state.lock().expect("flight lock");
            *state = FlightState::Poisoned;
            drop(state);
            self.group
                .inflight
                .lock()
                .expect("singleflight lock")
                .remove(&self.key);
            self.flight.cv.notify_all();
        }
    }
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// An empty group.
    pub fn new() -> SingleFlight<K, V> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Run `compute` for `key`, deduplicating against concurrent calls
    /// with the same key. Returns the value plus `true` when this
    /// caller was the leader (actually ran `compute`), `false` when it
    /// received a follower copy.
    ///
    /// `publish` runs on the leader *after* `compute` but *before*
    /// followers wake or a new flight for the key can start — the slot
    /// where the caller inserts into its cache so that late arrivals
    /// cannot miss both the flight and the cache.
    pub fn run<F, P>(&self, key: &K, compute: F, publish: P) -> (V, bool)
    where
        F: FnOnce() -> V,
        P: FnOnce(&V),
    {
        loop {
            let flight = {
                let mut inflight = self.inflight.lock().expect("singleflight lock");
                match inflight.get(key) {
                    Some(flight) => Arc::clone(flight), // follower
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        inflight.insert(key.clone(), Arc::clone(&flight));
                        drop(inflight);

                        // ---- leader path ----
                        let mut guard = LeaderGuard {
                            group: self,
                            key: key.clone(),
                            flight,
                            completed: false,
                        };
                        let value = compute();
                        publish(&value);
                        // Publish-then-complete ordering: once the key
                        // leaves the inflight map, the cache already
                        // holds the value, so a racer sees one or the
                        // other — never neither.
                        *guard.flight.state.lock().expect("flight lock") =
                            FlightState::Done(value.clone());
                        guard.completed = true;
                        self.inflight.lock().expect("singleflight lock").remove(key);
                        guard.flight.cv.notify_all();
                        return (value, true);
                    }
                }
            };

            // ---- follower path ----
            let mut state = flight.state.lock().expect("flight lock");
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.cv.wait(state).expect("flight lock");
                    }
                    FlightState::Done(v) => return (v.clone(), false),
                    FlightState::Poisoned => break, // leader died: retry
                }
            }
        }
    }

    /// Number of keys currently in flight (test/diagnostic hook).
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("singleflight lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_lead() {
        let group: SingleFlight<String, u64> = SingleFlight::new();
        let key = "k".to_string();
        let (v1, led1) = group.run(&key, || 7, |_| {});
        let (v2, led2) = group.run(&key, || 8, |_| {});
        assert_eq!((v1, led1), (7, true));
        assert_eq!((v2, led2), (8, true)); // nothing cached here: both lead
        assert_eq!(group.in_flight(), 0);
    }

    #[test]
    fn concurrent_callers_share_one_computation() {
        const CALLERS: usize = 64;
        let group: Arc<SingleFlight<String, u64>> = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(CALLERS));
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let group = Arc::clone(&group);
                let computed = Arc::clone(&computed);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    group.run(
                        &"hot".to_string(),
                        || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open so followers pile up.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42u64
                        },
                        |_| {},
                    )
                })
            })
            .collect();
        let mut leaders = 0;
        for h in handles {
            let (v, led) = h.join().unwrap();
            assert_eq!(v, 42);
            leaders += usize::from(led);
        }
        // Every caller that arrived during the flight followed; callers
        // that arrived after completion led their own flight. At least
        // the 50ms window must have coalesced most of them.
        assert_eq!(leaders, computed.load(Ordering::SeqCst));
        assert!(leaders < CALLERS, "no coalescing happened at all");
        assert_eq!(group.in_flight(), 0);
    }

    #[test]
    fn publish_runs_before_followers_wake() {
        let group: Arc<SingleFlight<String, u64>> = Arc::new(SingleFlight::new());
        let published = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&published);
        let g2 = Arc::clone(&group);
        let follower = {
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                // Give the leader time to enter its flight.
                std::thread::sleep(std::time::Duration::from_millis(20));
                g2.run(
                    &"k".to_string(),
                    || 1,
                    |_| {
                        published.fetch_add(1, Ordering::SeqCst);
                    },
                )
            })
        };
        let (v, led) = group.run(
            &"k".to_string(),
            || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                9
            },
            |_| {
                p2.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!((v, led), (9, true));
        let (fv, fled) = follower.join().unwrap();
        if fled {
            // The follower raced past the flight; it led its own.
            assert_eq!(fv, 1);
        } else {
            assert_eq!(fv, 9);
            // Exactly the leader published.
            assert_eq!(published.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn a_panicking_leader_does_not_strand_followers() {
        let group: Arc<SingleFlight<String, u64>> = Arc::new(SingleFlight::new());
        let g2 = Arc::clone(&group);
        let barrier = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.run(
                    &"k".to_string(),
                    || {
                        b2.wait(); // follower is now about to join
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("leader died");
                    },
                    |_| {},
                )
            }));
        });
        barrier.wait();
        // This caller joins the doomed flight, sees the poison, retries,
        // and leads its own successful flight.
        let (v, _led) = group.run(&"k".to_string(), || 5, |_| {});
        assert_eq!(v, 5);
        leader.join().unwrap();
        assert_eq!(group.in_flight(), 0);
    }
}
