//! The router tier: one HTTP front door for a fleet of shards.
//!
//! The router runs the same readiness-driven engine as the standalone
//! server ([`crate::reactor`]) but with a different application behind
//! it: instead of evaluating thermodynamics locally, it consistent-
//! hashes the artifact id in each request onto a shard
//! ([`crate::ring::HashRing`]) and forwards the request over the dt-hpc
//! mesh (rank 0 = router, ranks `1..=N` = shards; see [`crate::shard`]
//! for the wire protocol). Fan-out endpoints (`/metrics`,
//! `/v1/artifacts`, `/v1/shutdown`) query every live shard and merge.
//!
//! Failure routing is slice-local by construction: a dead shard turns
//! *its* keys into `503 shard down` while every other slice keeps
//! serving — the property the fleet integration tests pin down.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dt_hpc::{CommError, TcpRendezvous, TcpTransport, Transport};
use dt_telemetry::{parse_json, push_f64, push_json_string, JsonValue, MetricsRegistry};

use crate::artifact::ArtifactRegistry;
use crate::http::{serialize_request, Request, Response};
use crate::reactor::{start_engine, App, Engine};
use crate::ring::HashRing;
use crate::server::{ServeConfig, ServeStats};
use crate::shard::{
    decode_response, encode_rpc, run_shard, ShardConfig, ShardStats, OP_DRAIN, OP_HTTP, TAG_REQ,
};
use crate::ServeError;

/// Tuning for the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The HTTP front-door engine configuration (listen address,
    /// reactors, workers, queue depth, ...).
    pub serve: ServeConfig,
    /// How long one router→shard RPC may take before the client gets
    /// `504 Gateway Timeout`.
    pub rpc_deadline: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            serve: ServeConfig::default(),
            rpc_deadline: Duration::from_secs(10),
        }
    }
}

/// Shared router state: the mesh, the ring, and request-id allocation.
struct RouterState {
    transport: Arc<TcpTransport>,
    ring: HashRing,
    /// Response tags; starts at 1 and stays far below [`TAG_REQ`].
    next_id: AtomicU64,
    metrics: MetricsRegistry,
    draining: AtomicBool,
    started: Instant,
    rpc_deadline: Duration,
}

impl RouterState {
    fn shards(&self) -> usize {
        self.ring.shards()
    }

    fn live_shards(&self) -> usize {
        (1..=self.shards())
            .filter(|&r| self.transport.is_alive(r))
            .count()
    }

    /// One RPC to shard `rank` (1-based): send, await the reply tagged
    /// with our request id, decode. Every failure maps to the gateway
    /// status a client of a broken backend expects.
    fn rpc(&self, rank: usize, op: u8, raw: &[u8]) -> Response {
        if !self.transport.is_alive(rank) {
            self.metrics.counter("route_shard_down").inc();
            return Response::error(503, &format!("shard {} is down", rank - 1));
        }
        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.transport
            .send(rank, TAG_REQ, encode_rpc(req_id, op, raw), None);
        match self.transport.recv_timeout(rank, req_id, self.rpc_deadline) {
            Ok(payload) => decode_response(&payload).unwrap_or_else(|| {
                self.metrics.counter("route_bad_frames").inc();
                Response::error(502, "undecodable shard response")
            }),
            Err(CommError::RankDead(_)) => {
                self.metrics.counter("route_shard_down").inc();
                Response::error(503, &format!("shard {} died mid-request", rank - 1))
            }
            Err(_) => {
                self.metrics.counter("route_timeouts").inc();
                Response::error(504, &format!("shard {} timed out", rank - 1))
            }
        }
    }

    /// Forward `req` to the shard owning its artifact id, tagging the
    /// reply with which shard served it.
    fn forward(&self, req: &Request) -> Response {
        let shard = match extract_artifact_id(&req.body) {
            Some(id) => self.ring.shard_for(&id),
            // No parseable id: any shard produces the right 4xx. Prefer
            // a live one so malformed bodies still get their 400 while
            // part of the fleet is down.
            None => (0..self.shards())
                .find(|&s| self.transport.is_alive(s + 1))
                .unwrap_or(0),
        };
        self.metrics.counter("route_forwarded").inc();
        let mut resp = self.rpc(shard + 1, OP_HTTP, &serialize_request(req));
        resp.extra_headers.push(("x-shard", shard.to_string()));
        resp
    }

    fn healthz(&self) -> Response {
        let mut body = String::from("{\"status\":");
        push_json_string(
            &mut body,
            if self.draining.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            },
        );
        body.push_str(&format!(
            ",\"role\":\"router\",\"shards\":{},\"live_shards\":{},\"uptime_s\":",
            self.shards(),
            self.live_shards()
        ));
        push_f64(&mut body, self.started.elapsed().as_secs_f64());
        body.push('}');
        Response::json(200, body)
    }

    /// Fan out `GET /metrics`, summing every shard's counters into one
    /// fleet-wide view and embedding each shard's full snapshot.
    fn metrics_fanout(&self) -> Response {
        let mut fleet: BTreeMap<String, u64> = BTreeMap::new();
        let mut shard_sections = Vec::new();
        for shard in 0..self.shards() {
            let rank = shard + 1;
            if !self.transport.is_alive(rank) {
                shard_sections.push(format!("{{\"shard\":{shard},\"status\":\"down\"}}"));
                continue;
            }
            let resp = self.rpc(rank, OP_HTTP, b"GET /metrics HTTP/1.1\r\n\r\n");
            if resp.status != 200 {
                shard_sections.push(format!("{{\"shard\":{shard},\"status\":\"down\"}}"));
                continue;
            }
            if let Ok(v) = parse_json(&resp.body) {
                if let Some(JsonValue::Object(counters)) = v.get("counters") {
                    for (name, value) in counters {
                        if let Some(n) = value.as_u64() {
                            *fleet.entry(name.clone()).or_insert(0) += n;
                        }
                    }
                }
            }
            shard_sections.push(format!(
                "{{\"shard\":{shard},\"status\":\"up\",\"metrics\":{}}}",
                resp.body
            ));
        }
        let mut body = String::from("{\"router\":{\"counters\":{");
        for (i, (name, value)) in self.metrics.counter_values().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, name);
            body.push_str(&format!(":{value}"));
        }
        body.push_str("}},\"fleet_counters\":{");
        for (i, (name, value)) in fleet.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, name);
            body.push_str(&format!(":{value}"));
        }
        body.push_str(&format!("}},\"shards\":[{}]}}", shard_sections.join(",")));
        Response::json(200, body)
    }

    /// Fan out `GET /v1/artifacts` and splice the slices back into one
    /// flat listing, so the fleet presents as one big registry.
    fn artifacts_fanout(&self) -> Response {
        let mut count = 0u64;
        let mut slices = Vec::new();
        for shard in 0..self.shards() {
            let resp = self.rpc(shard + 1, OP_HTTP, b"GET /v1/artifacts HTTP/1.1\r\n\r\n");
            if resp.status != 200 {
                // A down shard hides its slice; the listing stays
                // partial rather than failing wholesale.
                continue;
            }
            if let Ok(v) = parse_json(&resp.body) {
                count += v.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
            }
            // Our own canonical body shape: {"count":N,"artifacts":[...]}.
            if let (Some(start), Some(end)) =
                (resp.body.find("\"artifacts\":["), resp.body.rfind(']'))
            {
                let inner = &resp.body[start + "\"artifacts\":[".len()..end];
                if !inner.is_empty() {
                    slices.push(inner.to_string());
                }
            }
        }
        Response::json(
            200,
            format!(
                "{{\"count\":{count},\"live_shards\":{},\"artifacts\":[{}]}}",
                self.live_shards(),
                slices.join(",")
            ),
        )
    }

    /// Drain the whole fleet: flip our own flag first (the front door
    /// stops accepting immediately), then ask every live shard to drain
    /// and collect its summary. The reply goes out only after every
    /// reachable shard has reported drained.
    fn fleet_shutdown(&self) -> Response {
        let already = self.draining.swap(true, Ordering::SeqCst);
        if already {
            return Response::json(200, "{\"status\":\"draining\"}");
        }
        let mut summaries = Vec::new();
        for shard in 0..self.shards() {
            let rank = shard + 1;
            if !self.transport.is_alive(rank) {
                summaries.push(format!("{{\"shard\":{shard},\"status\":\"down\"}}"));
                continue;
            }
            let resp = self.rpc(rank, OP_DRAIN, &[]);
            if resp.status == 200 {
                summaries.push(format!("{{\"shard\":{shard},\"drained\":{}}}", resp.body));
            } else {
                summaries.push(format!("{{\"shard\":{shard},\"status\":\"unreachable\"}}"));
            }
        }
        let mut body = format!(
            "{{\"status\":\"draining\",\"router\":{{\"requests_total\":{},\"route_forwarded\":{},\"uptime_s\":",
            self.metrics.counter("requests_total").get(),
            self.metrics.counter("route_forwarded").get(),
        );
        push_f64(&mut body, self.started.elapsed().as_secs_f64());
        body.push_str(&format!("}},\"shards\":[{}]}}", summaries.join(",")));
        Response::json(200, body)
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.target.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics_fanout(),
            ("GET", "/v1/artifacts") => self.artifacts_fanout(),
            ("POST", "/v1/thermo" | "/v1/sro" | "/v1/predict") => self.forward(req),
            ("POST", "/v1/shutdown") => self.fleet_shutdown(),
            (_, "/healthz" | "/metrics" | "/v1/artifacts") => {
                Response::error(405, "endpoint only supports GET")
            }
            (_, "/v1/thermo" | "/v1/sro" | "/v1/predict" | "/v1/shutdown") => {
                Response::error(405, "endpoint only supports POST")
            }
            (_, target) => Response::error(404, &format!("no such endpoint: {target}")),
        }
    }
}

impl App for RouterState {
    fn handle(&self, req: &Request) -> Response {
        self.metrics.counter("requests_total").inc();
        let resp = self.route(req);
        if resp.status >= 500 {
            self.metrics.counter("responses_5xx").inc();
        } else if resp.status >= 400 {
            self.metrics.counter("responses_4xx").inc();
        }
        resp
    }

    fn shutdown_requested(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

/// Pull `"artifact":"..."` out of a request body without a full JSON
/// parse on the hot path failing hard: a parse failure just means "no
/// id" and the shard produces the authoritative error.
fn extract_artifact_id(body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let v = parse_json(text).ok()?;
    v.get("artifact")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

/// The router front door. Like [`crate::Server`], a namespace:
/// [`Router::start`] does the work.
pub struct Router;

impl Router {
    /// Start the HTTP engine over an already-connected fleet mesh.
    /// `transport` must be rank 0 of a `(shards + 1)`-size transport.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] when called off rank 0 or with no
    /// shards; engine bind/config errors otherwise.
    pub fn start(
        transport: TcpTransport,
        config: RouterConfig,
    ) -> Result<RouterHandle, ServeError> {
        if transport.rank() != 0 {
            return Err(ServeError::BadConfig(
                "the router must be rank 0 of the fleet mesh".into(),
            ));
        }
        if transport.size() < 2 {
            return Err(ServeError::BadConfig(
                "a fleet needs at least one shard".into(),
            ));
        }
        config.serve.validate()?;
        let state = Arc::new(RouterState {
            ring: HashRing::new(transport.size() - 1),
            transport: Arc::new(transport),
            next_id: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            rpc_deadline: config.rpc_deadline,
        });
        let engine = start_engine(&state, &config.serve)?;
        Ok(RouterHandle { state, engine })
    }
}

/// A running router: lifecycle mirror of [`crate::ServeHandle`].
pub struct RouterHandle {
    state: Arc<RouterState>,
    engine: Engine,
}

impl RouterHandle {
    /// The bound front-door address.
    pub fn local_addr(&self) -> SocketAddr {
        self.engine.local_addr()
    }

    /// Drain the fleet programmatically: shards first, then the front
    /// door — the same path as `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        let _ = self.state.fleet_shutdown();
    }

    /// Wait for the front door to finish draining; returns its engine
    /// stats. Shard processes exit on their own once drained (or once
    /// the router's transport drops).
    pub fn join(self) -> ServeStats {
        self.engine.join();
        ServeStats::from_metrics(&self.state.metrics)
    }
}

/// An in-process fleet — router plus `N` shard threads wired over real
/// loopback TCP — for integration tests and benchmarks. Each shard
/// slices the same `registry` by the shared hash ring, exactly as the
/// multi-process deployment does.
pub struct Fleet {
    router: RouterHandle,
    shards: Vec<std::thread::JoinHandle<Result<ShardStats, ServeError>>>,
    kills: Vec<Arc<AtomicBool>>,
}

impl Fleet {
    /// Boot a rendezvous, connect `num_shards` shard threads and the
    /// router, and open the front door.
    ///
    /// # Errors
    /// Rendezvous/bind failures as [`ServeError::Bind`]; any
    /// [`Router::start`] error.
    pub fn launch(
        num_shards: usize,
        registry: &ArtifactRegistry,
        router_config: RouterConfig,
        shard_config: &ShardConfig,
    ) -> Result<Fleet, ServeError> {
        let rendezvous = TcpRendezvous::bind("127.0.0.1:0").map_err(|e| ServeError::Bind {
            addr: "127.0.0.1:0".into(),
            message: e.to_string(),
        })?;
        let addr = rendezvous
            .local_addr()
            .map_err(|e| ServeError::Bind {
                addr: "127.0.0.1:0".into(),
                message: e.to_string(),
            })?
            .to_string();
        let size = num_shards + 1;
        let mut shards = Vec::with_capacity(num_shards);
        let mut kills = Vec::with_capacity(num_shards);
        for rank in 1..=num_shards {
            let kill = Arc::new(AtomicBool::new(false));
            kills.push(Arc::clone(&kill));
            let mut cfg = shard_config.clone();
            cfg.kill = Some(kill);
            let registry = registry.clone();
            let addr = addr.clone();
            shards.push(std::thread::spawn(move || {
                let transport =
                    TcpTransport::connect(&addr, rank, size).map_err(|e| ServeError::Bind {
                        addr: addr.clone(),
                        message: e.to_string(),
                    })?;
                run_shard(transport, registry, &cfg)
            }));
        }
        let transport = rendezvous
            .into_transport(size)
            .map_err(|e| ServeError::Bind {
                addr,
                message: e.to_string(),
            })?;
        let router = Router::start(transport, router_config)?;
        Ok(Fleet {
            router,
            shards,
            kills,
        })
    }

    /// The front-door address.
    pub fn local_addr(&self) -> SocketAddr {
        self.router.local_addr()
    }

    /// Abruptly kill shard `index` (0-based): its thread exits without
    /// draining or replying, tearing down its mesh connections. Within
    /// the transport's failure-detection window the router will answer
    /// `503` for that slice only.
    pub fn kill_shard(&self, index: usize) {
        self.kills[index].store(true, Ordering::SeqCst);
    }

    /// Drain everything and collect stats: the router's engine stats
    /// plus each shard's lifetime stats (`None` for a shard that died
    /// or panicked instead of exiting cleanly).
    pub fn join(self) -> (ServeStats, Vec<Option<ShardStats>>) {
        self.router.shutdown();
        let router_stats = self.router.join();
        let shard_stats = self
            .shards
            .into_iter()
            .map(|h| h.join().ok().and_then(Result::ok))
            .collect();
        (router_stats, shard_stats)
    }
}
