//! A readiness-driven event loop: the serving engine under both tiers.
//!
//! ```text
//!            accept + read + parse             bounded channel
//! clients ──▶ reactor thread × R ──try_send──▶ [queue] ──recv──▶ worker × N
//!                ▲    │ full? queue 429, close       │ waited > deadline? 503
//!                │    │ parse error? 4xx, close      │ panic? 500
//!                │    └─ nonblocking sockets, poll(2)│
//!                └──── completions (wake pipe) ◀─────┘
//! ```
//!
//! The old transport was thread-per-connection with blocking reads: a
//! worker was *occupied* by an idle keep-alive connection. Here R
//! reactor threads own the sockets — each runs `poll(2)` over its
//! accepted connections, reads whatever bytes are ready, and feeds the
//! incremental parser ([`crate::http::try_parse_request`]); only a
//! *complete* request occupies a worker, so ten thousand idle
//! connections cost ten thousand buffers, not ten thousand threads.
//! Workers return responses over a completion channel and wake the
//! owning reactor through a self-pipe; the reactor serializes the
//! response into the connection's write buffer and drains it under
//! `POLLOUT`, so a wedged client cannot stall anything but itself.
//!
//! With `reactors > 1` the listener is shared (sharded accept): every
//! reactor polls the same listening socket and the kernel spreads
//! wakeups across them. Backpressure semantics are unchanged from the
//! blocking engine: the worker queue is bounded (`429` when full),
//! queued requests carry deadlines (`503` when stale), and handler
//! panics are contained (`500`).
//!
//! This module owns the crate's only `unsafe` code: the three-line FFI
//! binding to `poll(2)` in the private `sys` module — `std` links libc
//! on every Unix target, so no external crate is needed.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use dt_telemetry::MetricsRegistry;

use crate::http::{try_parse_request, write_response, HttpReadError, Request, Response};
use crate::server::ServeConfig;
use crate::ServeError;

/// The three-line `poll(2)` binding. `#![deny(unsafe_code)]` holds for
/// the rest of the crate; this module carries the single scoped allow.
mod sys {
    #![allow(unsafe_code)]

    use std::ffi::{c_int, c_ulong};
    use std::io;
    use std::os::unix::io::RawFd;

    /// Readable (POSIX `POLLIN`).
    pub const POLLIN: i16 = 0x001;
    /// Writable (POSIX `POLLOUT`).
    pub const POLLOUT: i16 = 0x004;

    /// Mirror of C `struct pollfd` (`<poll.h>`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: RawFd,
        /// Requested events.
        pub events: i16,
        /// Returned events (`POLLERR`/`POLLHUP`/`POLLNVAL` may appear
        /// even when unrequested).
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Block until an fd is ready or `timeout_ms` elapses. `EINTR` is
    /// reported as zero ready fds — the caller's loop just re-polls.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // pollfd records, valid for the whole call; the kernel writes
        // only the `revents` fields.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as c_ulong,
                c_int::from(timeout_ms),
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

use sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// What the engine serves: one request in, one response out, plus the
/// drain flag and the counter registry. [`crate::api::AppState`] (a
/// shard or standalone server) and [`crate::router::RouterState`] (the
/// routing tier) both implement it, so the two tiers share this exact
/// engine.
pub(crate) trait App: Send + Sync + 'static {
    /// Handle one parsed request.
    fn handle(&self, req: &Request) -> Response;
    /// Whether a graceful drain has been requested.
    fn shutdown_requested(&self) -> bool;
    /// The counter registry (`connections_admitted` etc. live here).
    fn metrics(&self) -> &MetricsRegistry;
}

/// A parsed request travelling reactor → queue → worker.
struct Job {
    token: u64,
    req: Request,
    enqueued: Instant,
    completion: CompletionHandle,
}

/// A finished response travelling worker → owning reactor.
struct Completion {
    token: u64,
    response: Response,
    close: bool,
}

/// The worker's way back to the reactor that owns the connection: a
/// completion channel plus a self-pipe write end to interrupt `poll`.
#[derive(Clone)]
struct CompletionHandle {
    tx: Sender<Completion>,
    wake: Arc<UnixStream>,
}

impl CompletionHandle {
    fn complete(&self, token: u64, response: Response, close: bool) {
        let _ = self.tx.send(Completion {
            token,
            response,
            close,
        });
        // A full pipe means a wakeup is already pending; that's enough.
        let _ = (&*self.wake).write(&[1]);
    }
}

/// One accepted connection owned by a reactor.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by the parser.
    rbuf: Vec<u8>,
    /// Serialized response bytes not yet written, from `wpos` on.
    wbuf: Vec<u8>,
    wpos: usize,
    /// A request from this connection sits in the queue or a worker.
    in_flight: bool,
    /// Close once `wbuf` drains (protocol error, `Connection: close`,
    /// rejection, or drain).
    close_after_write: bool,
    /// Framing is unreliable (protocol error): never parse again.
    protocol_dead: bool,
    /// The peer half-closed; serve what's in flight, then drop.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: false,
            close_after_write: false,
            protocol_dead: false,
            eof: false,
        }
    }

    fn write_pending(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Queue `response` for writing and push what fits right now.
    /// Returns `false` when the transport failed and the connection
    /// should be dropped.
    fn send_response(&mut self, response: &Response, close: bool) -> bool {
        self.wbuf.clear();
        self.wpos = 0;
        write_response(&mut self.wbuf, response, close).expect("Vec write is infallible");
        self.close_after_write = self.close_after_write || close;
        self.flush_some()
    }

    /// Write as much of `wbuf` as the socket accepts without blocking.
    fn flush_some(&mut self) -> bool {
        while self.write_pending() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// A connection with nothing queued, nothing in flight, and nothing
    /// to write — safe to close during a drain.
    fn idle(&self) -> bool {
        !self.in_flight && !self.write_pending()
    }
}

/// Keep per-connection read buffers bounded even when a client
/// pipelines aggressively while a request is in flight.
const READ_HIGH_WATER: usize = 256 * 1024;

/// A running engine: reactor and worker threads, bound address.
pub(crate) struct Engine {
    addr: std::net::SocketAddr,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// The bound listen address (useful with port 0).
    pub(crate) fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Wait for drain: reactors exit once every admitted request is
    /// answered and every connection closed; workers exit when the job
    /// queue disconnects.
    pub(crate) fn join(mut self) {
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind and spawn `cfg.reactors` reactor threads plus `cfg.workers`
/// handler threads over a shared bounded queue.
pub(crate) fn start_engine<A: App>(app: &Arc<A>, cfg: &ServeConfig) -> Result<Engine, ServeError> {
    let bind_err = |message: String| ServeError::Bind {
        addr: cfg.addr.clone(),
        message,
    };
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| bind_err(e.to_string()))?;
    let addr = listener.local_addr().map_err(|e| bind_err(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| bind_err(e.to_string()))?;

    let (job_tx, job_rx) = bounded::<Job>(cfg.queue_depth);

    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        let rx = job_rx.clone();
        let app = Arc::clone(app);
        let deadline = cfg.queue_deadline;
        workers.push(
            std::thread::Builder::new()
                .name(format!("dt-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &*app, deadline))
                .map_err(|e| bind_err(format!("spawning worker: {e}")))?,
        );
    }
    drop(job_rx);

    let mut reactors = Vec::with_capacity(cfg.reactors);
    for i in 0..cfg.reactors {
        // Sharded accept: every reactor polls a dup of the same
        // listening socket; the kernel spreads accept wakeups.
        let listener = listener.try_clone().map_err(|e| bind_err(e.to_string()))?;
        let (wake_rx, wake_tx) = UnixStream::pair().map_err(|e| bind_err(e.to_string()))?;
        wake_rx
            .set_nonblocking(true)
            .map_err(|e| bind_err(e.to_string()))?;
        wake_tx
            .set_nonblocking(true)
            .map_err(|e| bind_err(e.to_string()))?;
        // Completions outstanding are bounded by jobs in flight, so
        // this capacity can never block a worker.
        let (comp_tx, comp_rx) = bounded::<Completion>(cfg.queue_depth + cfg.workers + 1);
        let completion = CompletionHandle {
            tx: comp_tx,
            wake: Arc::new(wake_tx),
        };
        let app = Arc::clone(app);
        let jobs = job_tx.clone();
        let max_body = cfg.max_body_bytes;
        reactors.push(
            std::thread::Builder::new()
                .name(format!("dt-serve-reactor-{i}"))
                .spawn(move || {
                    reactor_loop(
                        listener,
                        &*app,
                        max_body,
                        &jobs,
                        &comp_rx,
                        &wake_rx,
                        &completion,
                    );
                })
                .map_err(|e| bind_err(format!("spawning reactor: {e}")))?,
        );
    }
    drop(job_tx);

    Ok(Engine {
        addr,
        reactors,
        workers,
    })
}

/// Handle queued requests until every reactor has dropped its sender.
fn worker_loop<A: App>(rx: &Receiver<Job>, app: &A, deadline: Duration) {
    let expired = app.metrics().counter("deadline_expired");
    let panics = app.metrics().counter("handler_panics");
    while let Ok(job) = rx.recv() {
        let (response, close) = if job.enqueued.elapsed() > deadline {
            expired.inc();
            (Response::error(503, "queue deadline exceeded"), true)
        } else {
            // A panicking handler answers 500 and costs only this
            // request — the worker thread survives.
            let response = match catch_unwind(AssertUnwindSafe(|| app.handle(&job.req))) {
                Ok(resp) => resp,
                Err(_) => {
                    panics.inc();
                    Response::error(500, "internal error")
                }
            };
            (response, job.req.wants_close() || app.shutdown_requested())
        };
        job.completion.complete(job.token, response, close);
    }
}

/// The poll loop: one reactor's whole life.
#[allow(clippy::too_many_lines)]
fn reactor_loop<A: App>(
    listener: TcpListener,
    app: &A,
    max_body: usize,
    jobs: &Sender<Job>,
    comp_rx: &Receiver<Completion>,
    wake_rx: &UnixStream,
    completion: &CompletionHandle,
) {
    let admitted = app.metrics().counter("connections_admitted");
    let rejected = app.metrics().counter("queue_rejections");
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut draining = false;

    loop {
        // ---- build the poll set: wake pipe, listener, every conn ----
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        if let Some(l) = &listener {
            fds.push(PollFd {
                fd: l.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        let base = fds.len();
        let mut order: Vec<u64> = Vec::with_capacity(conns.len());
        for (&token, conn) in &conns {
            let mut events = 0i16;
            if conn.write_pending() {
                events |= POLLOUT;
            }
            // Read unless this client is already over its buffer
            // budget; error/hangup events arrive regardless.
            if !conn.eof && conn.rbuf.len() < READ_HIGH_WATER {
                events |= POLLIN;
            }
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            order.push(token);
        }

        // Short timeout so drains initiated via the handler (the
        // /v1/shutdown flag flip) are noticed promptly.
        if poll_fds(&mut fds, 25).is_err() {
            // poll(2) failing outright is unrecoverable for this
            // reactor; drop everything rather than spin.
            return;
        }

        // ---- wake pipe: drain the bytes, completions follow below ----
        if fds[0].revents != 0 {
            let mut sink = [0u8; 64];
            let mut pipe: &UnixStream = wake_rx;
            while let Ok(n) = pipe.read(&mut sink) {
                if n < sink.len() {
                    break;
                }
            }
        }

        // ---- worker completions: fill write buffers ----
        let mut dead: Vec<u64> = Vec::new();
        while let Some(comp) = comp_rx.try_recv() {
            let Some(conn) = conns.get_mut(&comp.token) else {
                continue; // connection vanished while the worker ran
            };
            conn.in_flight = false;
            let close = comp.close || draining || app.shutdown_requested();
            if !conn.send_response(&comp.response, close) {
                dead.push(comp.token);
                continue;
            }
            if !conn.write_pending() {
                if conn.close_after_write {
                    dead.push(comp.token);
                } else {
                    // Response fully flushed: a pipelined request may
                    // already be buffered.
                    parse_and_dispatch(
                        comp.token, conn, max_body, jobs, completion, &rejected, &mut dead,
                    );
                }
            }
        }

        // ---- new connections ----
        if listener.is_some() && fds.get(1).is_some_and(|f| f.revents & POLLIN != 0) {
            while let Some(l) = &listener {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Nagle + delayed ACK stalls keep-alive
                        // request/response cycles by ~40 ms.
                        let _ = stream.set_nodelay(true);
                        admitted.inc();
                        conns.insert(next_token, Conn::new(stream));
                        next_token += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // ---- per-connection readiness ----
        for (i, &token) in order.iter().enumerate() {
            let revents = fds[base + i].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if revents & POLLOUT != 0 && !conn.flush_some() {
                dead.push(token);
                continue;
            }
            if !conn.write_pending() && conn.close_after_write {
                dead.push(token);
                continue;
            }
            if revents & POLLIN != 0 {
                if !read_ready(conn) {
                    dead.push(token);
                    continue;
                }
                if !conn.in_flight && !conn.write_pending() {
                    parse_and_dispatch(
                        token, conn, max_body, jobs, completion, &rejected, &mut dead,
                    );
                }
            }
            // POLLERR/POLLHUP with nothing in flight: the peer is gone.
            if revents & POLLIN == 0 && revents & POLLOUT == 0 {
                let conn = &conns[&token];
                if conn.idle() {
                    dead.push(token);
                }
            }
        }

        for token in dead.drain(..) {
            if let Some(conn) = conns.remove(&token) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }

        // ---- drain ----
        if !draining && app.shutdown_requested() {
            draining = true;
            listener = None; // closes the listen socket: connects now fail
        }
        if draining {
            // Idle connections close now; in-flight requests and
            // unflushed responses finish first. A racing request that
            // parsed this very iteration is in flight, so it is kept
            // and answered before its connection closes.
            conns.retain(|_, conn| {
                let keep = !conn.idle();
                if !keep {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                }
                keep
            });
            if conns.is_empty() {
                return;
            }
        }
    }
}

/// Pull whatever bytes are ready into `conn.rbuf`. Returns `false`
/// when the connection died mid-read with nothing in flight.
fn read_ready(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                // Peer half-closed: a response may still be owed, and
                // buffered bytes may hold one last complete request.
                return conn.in_flight || conn.write_pending() || !conn.rbuf.is_empty();
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if conn.rbuf.len() >= READ_HIGH_WATER {
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return conn.in_flight || conn.write_pending(),
        }
    }
}

/// Try to parse one complete request off `conn.rbuf` and hand it to
/// the workers; answer protocol errors and queue-full inline.
#[allow(clippy::too_many_arguments)]
fn parse_and_dispatch(
    token: u64,
    conn: &mut Conn,
    max_body: usize,
    jobs: &Sender<Job>,
    completion: &CompletionHandle,
    rejected: &dt_telemetry::Counter,
    dead: &mut Vec<u64>,
) {
    if conn.protocol_dead || conn.in_flight {
        return;
    }
    match try_parse_request(&conn.rbuf, max_body) {
        Ok(None) => {
            if conn.eof && !conn.in_flight && !conn.write_pending() {
                dead.push(token);
            }
        }
        Ok(Some((req, consumed))) => {
            conn.rbuf.drain(..consumed);
            match jobs.try_send(Job {
                token,
                req,
                enqueued: Instant::now(),
                completion: completion.clone(),
            }) {
                Ok(()) => conn.in_flight = true,
                Err(TrySendError::Full(_)) => {
                    rejected.inc();
                    conn.protocol_dead = true;
                    if !conn.send_response(
                        &Response::error(429, "service saturated, retry later"),
                        true,
                    ) || !conn.write_pending() && conn.close_after_write
                    {
                        dead.push(token);
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    conn.protocol_dead = true;
                    if !conn.send_response(&Response::error(503, "service is shutting down"), true)
                        || !conn.write_pending() && conn.close_after_write
                    {
                        dead.push(token);
                    }
                }
            }
        }
        Err(e) => {
            // Framing is unreliable after a protocol error: answer and
            // close, exactly like the blocking engine did.
            conn.protocol_dead = true;
            let response = match &e {
                HttpReadError::BodyTooLarge { .. } => Response::error(413, &e.to_string()),
                HttpReadError::HeadersTooLarge => Response::error(431, &e.to_string()),
                HttpReadError::Unsupported(_) => Response::error(501, &e.to_string()),
                HttpReadError::Io(_) | HttpReadError::Closed | HttpReadError::Timeout => {
                    dead.push(token);
                    return;
                }
                HttpReadError::Malformed(_) => Response::error(400, &e.to_string()),
            };
            if !conn.send_response(&response, true)
                || !conn.write_pending() && conn.close_after_write
            {
                dead.push(token);
            }
        }
    }
}
