//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! The workspace builds fully offline from vendored crates, so there is
//! no external HTTP stack; this module implements exactly the subset
//! the query service needs: request-line + header parsing with hard
//! size limits, `Content-Length` bodies (chunked transfer is refused
//! with `501`), keep-alive accounting, and response serialization.
//! Every parse failure is a typed [`HttpReadError`] that the server
//! maps to a `4xx` — malformed traffic must never panic a worker.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/v1/thermo`.
    pub target: String,
    /// `true` for HTTP/1.1 (keep-alive default), `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (or is HTTP/1.0 without `keep-alive`).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error condition.
    Closed,
    /// The socket read timed out.
    Timeout,
    /// Syntactically invalid request (maps to `400`).
    Malformed(&'static str),
    /// Headers exceeded [`MAX_HEADER_BYTES`] (maps to `431`).
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds the configured body limit
    /// (maps to `413`).
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A protocol feature this server does not implement (maps to
    /// `501`).
    Unsupported(&'static str),
    /// The underlying transport failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpReadError::Closed => write!(f, "connection closed"),
            HttpReadError::Timeout => write!(f, "read timed out"),
            HttpReadError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpReadError::HeadersTooLarge => write!(f, "headers exceed {MAX_HEADER_BYTES} bytes"),
            HttpReadError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpReadError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpReadError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpReadError {}

fn io_error(e: std::io::Error) -> HttpReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpReadError::Timeout,
        std::io::ErrorKind::UnexpectedEof => HttpReadError::Malformed("truncated request"),
        _ => HttpReadError::Io(e.to_string()),
    }
}

/// Read one line (through `\n`), bounding total header bytes consumed.
fn read_line<R: BufRead>(
    reader: &mut R,
    consumed: &mut usize,
    first: bool,
) -> Result<String, HttpReadError> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf().map_err(io_error)?;
        if available.is_empty() {
            return if first && buf.is_empty() {
                Err(HttpReadError::Closed)
            } else {
                Err(HttpReadError::Malformed("truncated request"))
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if *consumed + take > MAX_HEADER_BYTES {
            return Err(HttpReadError::HeadersTooLarge);
        }
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        *consumed += take;
        if newline.is_some() {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpReadError::Malformed("non-UTF-8 header bytes"))
}

/// Read and parse one request from a buffered stream, bounding the body
/// at `max_body` bytes.
///
/// # Errors
/// [`HttpReadError::Closed`] on clean EOF before the request line; any
/// other variant for timeouts, oversized, or malformed input.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpReadError> {
    let mut consumed = 0usize;
    let request_line = read_line(reader, &mut consumed, true)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpReadError::Malformed("bad method"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpReadError::Malformed("bad request target"))?
        .to_string();
    let http11 = match parts.next() {
        Some("HTTP/1.1") => true,
        Some("HTTP/1.0") => false,
        _ => return Err(HttpReadError::Malformed("bad HTTP version")),
    };
    if parts.next().is_some() {
        return Err(HttpReadError::Malformed("extra tokens in request line"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut consumed, false)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpReadError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpReadError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpReadError::Unsupported("chunked transfer encoding"));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpReadError::Malformed("bad content-length"))?,
    };
    if content_length > max_body {
        return Err(HttpReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_error)?;

    Ok(Request {
        method,
        target,
        http11,
        headers,
        body,
    })
}

/// An outgoing response, built by the handlers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always sent with `Content-Length`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers, e.g. `("x-cache", "hit")`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error response with a standard `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        dt_telemetry::push_json_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Serialize `response` onto `stream`. `close` controls the
/// `Connection` header (and should match what the caller then does).
///
/// # Errors
/// Propagates transport write errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    for (k, v) in &response.extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /v1/thermo HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/thermo");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_semantics() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(parse(""), Err(HttpReadError::Closed));
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_and_headers_are_rejected() {
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpReadError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            })
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert_eq!(parse(&huge), Err(HttpReadError::HeadersTooLarge));
    }

    #[test]
    fn chunked_transfer_is_unsupported() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpReadError::Unsupported(_))
        ));
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::error(404, "no such artifact"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close"));
        assert!(text.contains("{\"error\":\"no such artifact\"}"));
    }
}
