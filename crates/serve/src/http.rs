//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! The workspace builds fully offline from vendored crates, so there is
//! no external HTTP stack; this module implements exactly the subset
//! the query service needs: request-line + header parsing with hard
//! size limits, `Content-Length` bodies (chunked transfer is refused
//! with `501`), keep-alive accounting, and response serialization.
//! Every parse failure is a typed [`HttpReadError`] that the server
//! maps to a `4xx` — malformed traffic must never panic a worker.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/v1/thermo`.
    pub target: String,
    /// `true` for HTTP/1.1 (keep-alive default), `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header. Lookup is case-insensitive (RFC 9110
    /// §5.1): header names are lowercased at parse time, and the query
    /// name is matched ignoring ASCII case so callers need not care.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (or is HTTP/1.0 without `keep-alive`).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error condition.
    Closed,
    /// The socket read timed out.
    Timeout,
    /// Syntactically invalid request (maps to `400`).
    Malformed(&'static str),
    /// Headers exceeded [`MAX_HEADER_BYTES`] (maps to `431`).
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds the configured body limit
    /// (maps to `413`).
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A protocol feature this server does not implement (maps to
    /// `501`).
    Unsupported(&'static str),
    /// The underlying transport failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpReadError::Closed => write!(f, "connection closed"),
            HttpReadError::Timeout => write!(f, "read timed out"),
            HttpReadError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpReadError::HeadersTooLarge => write!(f, "headers exceed {MAX_HEADER_BYTES} bytes"),
            HttpReadError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpReadError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpReadError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpReadError {}

fn io_error(e: std::io::Error) -> HttpReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpReadError::Timeout,
        std::io::ErrorKind::UnexpectedEof => HttpReadError::Malformed("truncated request"),
        _ => HttpReadError::Io(e.to_string()),
    }
}

/// Read one line (through `\n`), bounding total header bytes consumed.
fn read_line<R: BufRead>(
    reader: &mut R,
    consumed: &mut usize,
    first: bool,
) -> Result<String, HttpReadError> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf().map_err(io_error)?;
        if available.is_empty() {
            return if first && buf.is_empty() {
                Err(HttpReadError::Closed)
            } else {
                Err(HttpReadError::Malformed("truncated request"))
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if *consumed + take > MAX_HEADER_BYTES {
            return Err(HttpReadError::HeadersTooLarge);
        }
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        *consumed += take;
        if newline.is_some() {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpReadError::Malformed("non-UTF-8 header bytes"))
}

/// Read and parse one request from a buffered stream, bounding the body
/// at `max_body` bytes.
///
/// # Errors
/// [`HttpReadError::Closed`] on clean EOF before the request line; any
/// other variant for timeouts, oversized, or malformed input.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpReadError> {
    let mut consumed = 0usize;
    let request_line = read_line(reader, &mut consumed, true)?;
    let (method, target, http11) = parse_request_line(&request_line)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut consumed, false)?;
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(&line)?);
    }

    let content_length = validate_headers(&headers)?;
    if content_length > max_body {
        return Err(HttpReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_error)?;

    Ok(Request {
        method,
        target,
        http11,
        headers,
        body,
    })
}

/// Parse `METHOD TARGET HTTP/1.x` into its validated parts.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpReadError> {
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpReadError::Malformed("bad method"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpReadError::Malformed("bad request target"))?
        .to_string();
    let http11 = match parts.next() {
        Some("HTTP/1.1") => true,
        Some("HTTP/1.0") => false,
        _ => return Err(HttpReadError::Malformed("bad HTTP version")),
    };
    if parts.next().is_some() {
        return Err(HttpReadError::Malformed("extra tokens in request line"));
    }
    Ok((method, target, http11))
}

/// Split one `Name: value` header line, lowercasing the name.
fn parse_header_line(line: &str) -> Result<(String, String), HttpReadError> {
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpReadError::Malformed("header without ':'"))?;
    if name.is_empty() || name.contains(' ') {
        return Err(HttpReadError::Malformed("bad header name"));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_string()))
}

/// Message-framing checks shared by the blocking and incremental
/// parsers: refuse chunked transfer, refuse duplicate `Content-Length`
/// (RFC 9110 §8.6 — a smuggling vector when two lengths disagree), and
/// return the single declared body length.
fn validate_headers(headers: &[(String, String)]) -> Result<usize, HttpReadError> {
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpReadError::Unsupported("chunked transfer encoding"));
    }
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
    let content_length = match lengths.next() {
        None => 0,
        Some((_, v)) => {
            if lengths.next().is_some() {
                return Err(HttpReadError::Malformed("duplicate content-length"));
            }
            v.parse::<usize>()
                .map_err(|_| HttpReadError::Malformed("bad content-length"))?
        }
    };
    Ok(content_length)
}

/// Index just past the head terminator (`\r\n\r\n` or bare `\n\n`), if
/// the buffer holds a complete head yet.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    // A lone `\n\n` also terminates (the line reader tolerates missing
    // `\r`), so scan for either form in one pass.
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Try to parse one complete request from the front of `buf` without
/// consuming it — the incremental entry point for the readiness-driven
/// reactor, which accumulates bytes as they arrive.
///
/// Returns `Ok(None)` while the buffer holds only a prefix of a
/// request, and `Ok(Some((request, consumed)))` once a full head+body
/// is present; the caller then drains `consumed` bytes. Oversized heads
/// and bodies fail as soon as they are detectable, without waiting for
/// the rest of the bytes.
///
/// # Errors
/// The same [`HttpReadError`] variants as [`read_request`], except
/// `Closed`/`Timeout` (EOF and pacing are the reactor's business).
pub fn try_parse_request(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<(Request, usize)>, HttpReadError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpReadError::HeadersTooLarge);
        }
        // The head is incomplete, but garbage should fail now, not
        // when the peer eventually sends a blank line: as soon as the
        // first line is complete, it must be a valid request line.
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line = std::str::from_utf8(&buf[..nl])
                .map_err(|_| HttpReadError::Malformed("non-UTF-8 header bytes"))?;
            parse_request_line(line.strip_suffix('\r').unwrap_or(line))?;
        }
        return Ok(None);
    };
    if head_end > MAX_HEADER_BYTES {
        return Err(HttpReadError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpReadError::Malformed("non-UTF-8 header bytes"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    if request_line.is_empty() {
        return Err(HttpReadError::Malformed("empty request line"));
    }
    let (method, target, http11) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        headers.push(parse_header_line(line)?);
    }
    let content_length = validate_headers(&headers)?;
    if content_length > max_body {
        return Err(HttpReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            target,
            http11,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    )))
}

/// Serialize a parsed request back to wire bytes — the router forwards
/// client requests to shards in this form, and the shard re-parses
/// them with the same validator the edge used. `Content-Length` is
/// re-derived from the actual body so the framing is always canonical.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut head = format!(
        "{} {} {}\r\n",
        req.method,
        req.target,
        if req.http11 { "HTTP/1.1" } else { "HTTP/1.0" }
    );
    for (k, v) in &req.headers {
        if k == "content-length" {
            continue;
        }
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", req.body.len()));
    let mut out = head.into_bytes();
    out.extend_from_slice(&req.body);
    out
}

/// An outgoing response, built by the handlers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always sent with `Content-Length`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers, e.g. `("x-cache", "hit")`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error response with a standard `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        dt_telemetry::push_json_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// Serialize `response` onto `stream`. `close` controls the
/// `Connection` header (and should match what the caller then does).
///
/// # Errors
/// Propagates transport write errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    for (k, v) in &response.extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /v1/thermo HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/thermo");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_semantics() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(parse(""), Err(HttpReadError::Closed));
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_and_headers_are_rejected() {
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpReadError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            })
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert_eq!(parse(&huge), Err(HttpReadError::HeadersTooLarge));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse(
            "POST / HTTP/1.1\r\nX-Request-ID: abc\r\ncOnTeNt-LeNgTh: 2\r\nConnection: CLOSE\r\n\r\nhi",
        )
        .unwrap();
        // Mixed-case wire names parse, and lookups match in any case.
        assert_eq!(req.header("x-request-id"), Some("abc"));
        assert_eq!(req.header("X-Request-Id"), Some("abc"));
        assert_eq!(req.header("X-REQUEST-ID"), Some("abc"));
        assert_eq!(req.header("Content-Length"), Some("2"));
        assert_eq!(req.body, b"hi");
        assert!(req.wants_close());
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Disagreeing lengths are a request-smuggling vector...
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi"),
            Err(HttpReadError::Malformed("duplicate content-length"))
        );
        // ...and even agreeing duplicates are refused outright.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\ncontent-length: 2\r\n\r\nhi"),
            Err(HttpReadError::Malformed("duplicate content-length"))
        );
        // The incremental parser applies the identical validation.
        assert_eq!(
            try_parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
                1024
            ),
            Err(HttpReadError::Malformed("duplicate content-length"))
        );
    }

    #[test]
    fn incremental_parser_handles_partial_and_pipelined_input() {
        let wire = b"POST /v1/thermo HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        // Every strict prefix is "not yet".
        for cut in 0..wire.len() {
            assert_eq!(try_parse_request(&wire[..cut], 1024), Ok(None), "cut {cut}");
        }
        let (req, consumed) = try_parse_request(wire, 1024).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");

        // A second pipelined request stays in the buffer untouched.
        let mut two = wire.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (first, consumed) = try_parse_request(&two, 1024).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(first.target, "/v1/thermo");
        let (second, rest) = try_parse_request(&two[consumed..], 1024).unwrap().unwrap();
        assert_eq!(second.target, "/healthz");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn incremental_parser_rejects_garbage_before_the_head_completes() {
        // A non-HTTP first line fails as soon as it is complete, even
        // though the head terminator never arrives.
        assert!(matches!(
            try_parse_request(b"EHLO mail.example.com\r\n", 1024),
            Err(HttpReadError::Malformed(_))
        ));
        // A valid-so-far prefix still waits for more bytes.
        assert_eq!(
            try_parse_request(b"GET /healthz HTTP/1.1\r\nhost: x\r\n", 1024),
            Ok(None)
        );
    }

    #[test]
    fn incremental_parser_fails_oversize_early() {
        // Headers that can no longer fit fail before the terminator
        // arrives...
        let endless = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert_eq!(
            try_parse_request(&endless, 1024),
            Err(HttpReadError::HeadersTooLarge)
        );
        // ...and a declared-too-large body fails on the head alone.
        assert_eq!(
            try_parse_request(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n", 1024),
            Err(HttpReadError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            })
        );
    }

    #[test]
    fn serialized_requests_reparse_identically() {
        let req = parse("POST /v1/sro HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap();
        let wire = serialize_request(&req);
        let (back, consumed) = try_parse_request(&wire, 1024).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(back, req);
    }

    #[test]
    fn chunked_transfer_is_unsupported() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpReadError::Unsupported(_))
        ));
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::error(404, "no such artifact"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close"));
        assert!(text.contains("{\"error\":\"no such artifact\"}"));
    }
}
