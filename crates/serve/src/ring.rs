//! Consistent hashing: the router's map from artifact id to shard.
//!
//! A [`HashRing`] places `vnodes` virtual points per shard on a 64-bit
//! ring using FNV-1a (chosen over `std`'s `RandomState` because the
//! assignment must be *deterministic across processes*: the router and
//! every shard independently build the same ring from the same shard
//! list and must agree on which shard owns which artifact). Lookup is a
//! binary search for the first point clockwise of the key's hash.
//!
//! Virtual nodes smooth the distribution (with one point per shard, a
//! 2-shard ring can be arbitrarily lopsided) and bound reshuffling:
//! removing a shard only reassigns the keys that mapped to its points,
//! roughly `1/n` of the keyspace.

/// FNV-1a (64-bit) with a splitmix64 finalizer. FNV alone is stable and
/// dependency-free but avalanches poorly on short, similar strings —
/// vnode labels differ in a few trailing digits, and the raw hashes
/// cluster badly enough to skew shard loads 4x. The finalizer mixes
/// every input bit into every output bit; the composition stays fully
/// deterministic across processes.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // splitmix64 finalizer (Stafford variant 13).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Number of virtual points each shard contributes to the ring.
pub const VNODES_PER_SHARD: usize = 64;

/// A consistent-hash ring over shard ids `0..shards`.
#[derive(Debug, Clone)]
pub struct HashRing {
    shards: usize,
    /// `(point, shard)` sorted by point; lookup binary-searches this.
    points: Vec<(u64, u16)>,
}

impl HashRing {
    /// A ring over `shards` shards with [`VNODES_PER_SHARD`] virtual
    /// points each. `shards` must fit in `u16` (a 65k-shard fleet is
    /// beyond anything this crate addresses).
    ///
    /// # Panics
    /// If `shards` is 0 or exceeds `u16::MAX`.
    pub fn new(shards: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(shards <= usize::from(u16::MAX), "shard count exceeds u16");
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}-vnode-{vnode}");
                points.push((fnv1a(label.as_bytes()), shard as u16));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0); // astronomically unlikely, but keep lookup total
        HashRing { shards, points }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or clockwise of
    /// `hash(key)`, wrapping to the smallest point past the top.
    pub fn shard_for(&self, key: &str) -> usize {
        let h = fnv1a(key.as_bytes());
        let idx = match self.points.binary_search_by_key(&h, |p| p.0) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap around
            Err(i) => i,
        };
        usize::from(self.points[idx].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("fcc-CrCoNi-L16-seed{i}")).collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1);
        for k in keys(100) {
            assert_eq!(ring.shard_for(&k), 0);
        }
    }

    #[test]
    fn assignment_is_deterministic_across_ring_instances() {
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        for k in keys(200) {
            assert_eq!(a.shard_for(&k), b.shard_for(&k));
        }
    }

    #[test]
    fn every_shard_gets_a_reasonable_share() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        let n = 4000;
        for k in keys(n) {
            counts[ring.shard_for(&k)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // With 64 vnodes the spread is well inside 2x of fair share.
            assert!(
                c > n / 8 && c < n / 2,
                "shard {shard} got {c} of {n} keys: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let before = HashRing::new(4);
        let after = HashRing::new(5);
        let n = 4000;
        let moved = keys(n)
            .iter()
            .filter(|k| before.shard_for(k) != after.shard_for(k))
            .count();
        // Ideal is n/5 = 800; allow generous slack but reject full
        // reshuffles (a modulo hash would move ~80%).
        assert!(moved < n / 2, "{moved} of {n} keys moved on 4 -> 5 shards");
        assert!(moved > 0, "adding a shard must claim some keys");
    }

    #[test]
    fn lookup_handles_wraparound() {
        // Some key hashes above the highest ring point and must wrap to
        // the lowest. Probe many keys so at least one exercises it; the
        // assertion is just "no panic, valid shard".
        let ring = HashRing::new(3);
        for k in keys(1000) {
            assert!(ring.shard_for(&k) < 3);
        }
    }
}
