//! # dt-serve
//!
//! The serving layer of DeepThermo: turn converged sampling runs into a
//! long-running thermodynamics query service.
//!
//! A REWL run takes minutes to hours to converge `ln g(E)`, but once it
//! has, every downstream query — canonical U/C_v/F/S curves, T_c
//! location, SRO reweighting, surrogate energy prediction — is a cheap
//! pure function over the converged artifact. This crate is the
//! "expensive train, cheap serve" split:
//!
//! * [`Artifact`] / [`ArtifactRegistry`] — converged run outputs
//!   (`ln g(E)`, visited-bin mask, microcanonical SRO accumulators,
//!   serialized surrogate models) persisted in an on-disk registry keyed
//!   by `(material, L, seed)` and loaded into memory for serving.
//!   Floating-point payloads are stored as exact bit patterns, so a
//!   served thermodynamic curve is bit-identical to one evaluated
//!   directly on the producing run's data.
//! * [`Server`] — a hand-rolled HTTP/1.1 JSON API (the workspace is
//!   offline/vendored; no external HTTP stack) over a readiness-driven
//!   event loop ([`reactor`]): nonblocking sockets polled by reactor
//!   threads, parsed requests flowing through a bounded `crossbeam`
//!   channel into a worker pool. Saturation returns `429` instead of
//!   queueing unboundedly, queued requests carry a deadline (`503`
//!   when exceeded), malformed or oversized bodies map to `4xx` —
//!   never a worker panic — and shutdown drains in-flight requests
//!   before the engine exits.
//! * [`Router`] / [`shard`] — the horizontal-scale tier: a router
//!   consistent-hashes artifact ids ([`HashRing`]) onto N shard
//!   processes, each owning a disjoint slice of the registry, over the
//!   `dt-hpc` TCP mesh (rendezvous bootstrap, framed RPC, liveness).
//! * [`ResponseCache`] — single-flight LRU response cache for
//!   `POST /v1/thermo`; `canonical_curve` is pure, so identical
//!   `(artifact, T-grid)` requests are served from memory, and
//!   concurrent cold-key requesters park on one in-flight fill
//!   ([`singleflight`]) instead of stampeding the workers.
//! * `GET /metrics` — the `dt-telemetry` metrics registry (request
//!   counts, per-endpoint latency histograms, cache hit/miss, queue
//!   rejections) exported as JSON; the router aggregates per-shard
//!   counters into a fleet-wide view.
//!
//! See DESIGN.md ("Serving architecture" and "Serving fleet") for the
//! endpoint reference, the artifact directory layout, and the tiering
//! diagram.

#![warn(missing_docs)]
// The only unsafe in the crate is the scoped three-line poll(2) FFI
// binding in `reactor::sys`.
#![deny(unsafe_code)]

pub mod api;
pub mod artifact;
pub mod cache;
pub mod fixture;
pub mod http;
pub mod reactor;
pub mod ring;
pub mod router;
pub mod server;
pub mod shard;
pub mod singleflight;

pub use api::AppState;
pub use artifact::{Artifact, ArtifactManifest, ArtifactRegistry};
pub use cache::{LruCache, ResponseCache};
pub use ring::HashRing;
pub use router::{Fleet, Router, RouterConfig, RouterHandle};
pub use server::{ServeConfig, ServeHandle, ServeStats, Server};
pub use shard::{run_shard, ShardConfig, ShardStats};
pub use singleflight::SingleFlight;

use std::path::PathBuf;

/// Everything that can go wrong while building or serving a registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Reading or writing an artifact file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// An artifact file exists but its contents are malformed.
    BadArtifact {
        /// The offending path.
        path: PathBuf,
        /// What was wrong.
        what: String,
    },
    /// Binding or configuring the listening socket failed.
    Bind {
        /// The requested address.
        addr: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// The server configuration is inconsistent (zero workers, zero
    /// queue depth, ...).
    BadConfig(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, message } => {
                write!(f, "artifact I/O failed at {}: {message}", path.display())
            }
            ServeError::BadArtifact { path, what } => {
                write!(f, "malformed artifact at {}: {what}", path.display())
            }
            ServeError::Bind { addr, message } => {
                write!(f, "cannot bind {addr}: {message}")
            }
            ServeError::BadConfig(what) => write!(f, "bad serve configuration: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}
