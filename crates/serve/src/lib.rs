//! # dt-serve
//!
//! The serving layer of DeepThermo: turn converged sampling runs into a
//! long-running thermodynamics query service.
//!
//! A REWL run takes minutes to hours to converge `ln g(E)`, but once it
//! has, every downstream query — canonical U/C_v/F/S curves, T_c
//! location, SRO reweighting, surrogate energy prediction — is a cheap
//! pure function over the converged artifact. This crate is the
//! "expensive train, cheap serve" split:
//!
//! * [`Artifact`] / [`ArtifactRegistry`] — converged run outputs
//!   (`ln g(E)`, visited-bin mask, microcanonical SRO accumulators,
//!   serialized surrogate models) persisted in an on-disk registry keyed
//!   by `(material, L, seed)` and loaded into memory for serving.
//!   Floating-point payloads are stored as exact bit patterns, so a
//!   served thermodynamic curve is bit-identical to one evaluated
//!   directly on the producing run's data.
//! * [`Server`] — a hand-rolled `std::net::TcpListener` HTTP/1.1 JSON
//!   API (the workspace is offline/vendored; no external HTTP stack).
//!   Connections flow through a bounded `crossbeam` channel into a
//!   worker-thread pool: saturation returns `429` instead of queueing
//!   unboundedly, queued connections carry a deadline (`503` when
//!   exceeded), malformed or oversized bodies map to `4xx` — never a
//!   worker panic — and shutdown drains in-flight requests before the
//!   listener thread exits.
//! * [`LruCache`] — response cache for `POST /v1/thermo`;
//!   `canonical_curve` is pure, so identical `(artifact, T-grid)`
//!   requests are served from memory.
//! * `GET /metrics` — the `dt-telemetry` metrics registry (request
//!   counts, per-endpoint latency histograms, cache hit/miss, queue
//!   rejections) exported as JSON.
//!
//! See DESIGN.md ("Serving architecture") for the endpoint reference
//! and the artifact directory layout.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod artifact;
pub mod cache;
pub mod fixture;
pub mod http;
pub mod server;

pub use api::AppState;
pub use artifact::{Artifact, ArtifactManifest, ArtifactRegistry};
pub use cache::LruCache;
pub use server::{ServeConfig, ServeHandle, ServeStats, Server};

use std::path::PathBuf;

/// Everything that can go wrong while building or serving a registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Reading or writing an artifact file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// An artifact file exists but its contents are malformed.
    BadArtifact {
        /// The offending path.
        path: PathBuf,
        /// What was wrong.
        what: String,
    },
    /// Binding or configuring the listening socket failed.
    Bind {
        /// The requested address.
        addr: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// The server configuration is inconsistent (zero workers, zero
    /// queue depth, ...).
    BadConfig(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, message } => {
                write!(f, "artifact I/O failed at {}: {message}", path.display())
            }
            ServeError::BadArtifact { path, what } => {
                write!(f, "malformed artifact at {}: {what}", path.display())
            }
            ServeError::Bind { addr, message } => {
                write!(f, "cannot bind {addr}: {message}")
            }
            ServeError::BadConfig(what) => write!(f, "bad serve configuration: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}
