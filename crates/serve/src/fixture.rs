//! Synthetic artifacts for tests and benchmarks.
//!
//! A real artifact takes a converged REWL run to produce; tests and the
//! `bench_serve` load generator need one in milliseconds. The fixture
//! is a physically plausible stand-in: a smooth dome-shaped `ln g(E)`
//! over a BCC NbMoTaW supercell, a populated SRO accumulator, and a
//! small (untrained) surrogate network — enough to exercise every
//! endpoint, not enough to publish.

use dt_lattice::{Composition, Structure, Supercell};
use dt_nn::{Activation, Mlp};
use dt_surrogate::{PairCorrelationDescriptor, SurrogateModel};
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::EnergyGrid;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::artifact::{Artifact, ArtifactManifest};

/// Build an in-memory fixture artifact with id `fixture-<tag>`.
pub fn fixture_artifact(tag: &str) -> Artifact {
    let l = 3;
    let num_species = 4;
    let num_shells = 2;
    let cell = Supercell::cubic(Structure::bcc(), l);
    let num_sites = cell.num_sites();
    let comp = Composition::equiatomic(num_species, num_sites).expect("fixture composition");

    let num_bins = 64;
    let grid = EnergyGrid::new(-5.0, 3.0, num_bins);
    // Dome-shaped ln g spanning ~60 ln-units, edges unvisited (as a
    // real flat-histogram run leaves them).
    let mid = (num_bins - 1) as f64 / 2.0;
    let mut ln_g = Vec::with_capacity(num_bins);
    let mut mask = Vec::with_capacity(num_bins);
    for b in 0..num_bins {
        let x = (b as f64 - mid) / mid;
        ln_g.push(60.0 * (1.0 - x * x));
        mask.push(b >= 2 && b < num_bins - 2);
    }

    // Directed pair probabilities per shell: the equiatomic baseline
    // 1/m² plus a bin-dependent ordering tendency on the Mo–Ta channel
    // (and its transpose), re-balanced on the diagonal so each shell
    // still sums to one.
    let m = num_species;
    let obs_dim = num_shells * m * m;
    let mut sro = MicrocanonicalAccumulator::new(num_bins, obs_dim);
    let base = 1.0 / (m * m) as f64;
    for (b, &visited) in mask.iter().enumerate() {
        if !visited {
            continue;
        }
        // Low-energy bins are ordered (strong Mo–Ta preference), high
        // bins random.
        let order = 0.5 * (1.0 - b as f64 / (num_bins - 1) as f64);
        let mut obs = vec![base; obs_dim];
        for shell in 0..num_shells {
            let o = shell * m * m;
            let bump = 0.04 * order;
            obs[o + m + 2] += bump; // (Mo, Ta)
            obs[o + 2 * m + 1] += bump; // (Ta, Mo)
            obs[o + m + 1] -= bump; // (Mo, Mo)
            obs[o + 2 * m + 2] -= bump; // (Ta, Ta)
        }
        sro.record(b, &obs);
        sro.record(b, &obs); // two samples so counts > 1 are exercised
    }

    // A small surrogate with deterministic (seeded) random weights:
    // untrained, but structurally identical to a trained model, and
    // load-validated like any artifact surrogate.
    let descriptor = PairCorrelationDescriptor {
        num_species,
        num_shells,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let net = Mlp::new(
        &[descriptor.dim(), 8, 1],
        Activation::Tanh,
        Activation::Identity,
        &mut rng,
    );
    let surrogate_text = format!(
        "dtsur v1\ndesc {} {}\nnorm {:016x} {:016x}\n{}",
        num_species,
        num_shells,
        (-0.2f64).to_bits(),
        0.05f64.to_bits(),
        dt_nn::save_mlp(&net)
    );
    SurrogateModel::load(&surrogate_text).expect("fixture surrogate must deserialize");

    Artifact {
        manifest: ArtifactManifest {
            id: format!("fixture-{tag}"),
            material: "NbMoTaW".into(),
            material_key: "nbmotaw".into(),
            structure: "bcc".into(),
            l,
            num_sites,
            species: vec!["Nb".into(), "Mo".into(), "Ta".into(), "W".into()],
            counts: comp.counts().to_vec(),
            seed: 7,
            num_shells,
            sweeps: 0,
            converged: true,
        },
        grid,
        ln_g,
        mask,
        sro: Some(sro),
        surrogate_text: Some(surrogate_text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_internally_consistent() {
        let art = fixture_artifact("check");
        assert_eq!(art.ln_g.len(), art.grid.num_bins());
        assert_eq!(art.mask.len(), art.grid.num_bins());
        let (e, lg) = art.visited_dos();
        assert_eq!(e.len(), lg.len());
        assert!(e.len() > 10);
        // The fixture DOS must be servable: a canonical curve evaluates.
        let temps = dt_thermo::temperature_grid(300.0, 3000.0, 20);
        let curve =
            dt_thermo::try_canonical_curve(&e, &lg, &temps, dt_thermo::KB_EV_PER_K).unwrap();
        assert!(curve.iter().all(|p| p.u.is_finite() && p.cv >= 0.0));
        // And the SRO accumulator reweights without panicking.
        let (ge, glg) = art.grid_dos_masked();
        let mean = art.sro.as_ref().unwrap().canonical_average(
            &ge,
            &glg,
            1.0 / (dt_thermo::KB_EV_PER_K * 1000.0),
        );
        assert_eq!(mean.len(), 2 * 16);
        assert!(mean.iter().all(|v| v.is_finite()));
    }
}
