//! End-to-end tests against a live sharded fleet: a router plus two
//! shard threads over real loopback TCP, launched with
//! [`dt_serve::Fleet`]. The suites mirror the single-server
//! integration tests (abuse, saturation-429, graceful drain) at the
//! fleet level, plus the fleet-only property: killing one shard
//! degrades only its key slice.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dt_serve::fixture::fixture_artifact;
use dt_serve::{ArtifactRegistry, Fleet, HashRing, RouterConfig, ServeConfig, ShardConfig};
use dt_telemetry::{parse_json, JsonValue};

/// A registry with enough artifacts that every shard of a 2-shard ring
/// owns at least one.
fn fleet_registry(n: usize) -> ArtifactRegistry {
    let mut registry = ArtifactRegistry::new();
    for i in 0..n {
        registry.insert(fixture_artifact(&format!("f{i}")));
    }
    registry
}

fn launch(num_shards: usize, registry: &ArtifactRegistry) -> Fleet {
    Fleet::launch(
        num_shards,
        registry,
        RouterConfig::default(),
        &ShardConfig::default(),
    )
    .unwrap()
}

/// Read one HTTP response: (status, headers lowercased, body).
fn read_response<R: BufRead>(reader: &mut R) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').unwrap();
        let (k, v) = (k.to_ascii_lowercase(), v.trim().to_string());
        if k == "content-length" {
            content_length = v.parse().unwrap();
        }
        headers.push((k, v));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

fn exchange(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream))
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// One artifact id owned by each shard of a 2-shard ring, found with
/// the same deterministic ring the fleet builds.
fn ids_per_shard(registry: &ArtifactRegistry) -> [String; 2] {
    let ring = HashRing::new(2);
    let mut out: [Option<String>; 2] = [None, None];
    for id in registry.ids() {
        out[ring.shard_for(id)].get_or_insert_with(|| id.to_string());
    }
    [out[0].take().unwrap(), out[1].take().unwrap()]
}

#[test]
fn fleet_routes_requests_and_merges_fanouts() {
    let registry = fleet_registry(8);
    let fleet = launch(2, &registry);
    let addr = fleet.local_addr();

    // The front door reports router health, not shard health.
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let v = parse_json(&body).unwrap();
    assert_eq!(v.get("role").and_then(JsonValue::as_str), Some("router"));
    assert_eq!(v.get("shards").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(v.get("live_shards").and_then(JsonValue::as_u64), Some(2));

    // The artifact listing splices every shard's slice back together.
    let (status, _, body) = get(addr, "/v1/artifacts");
    assert_eq!(status, 200);
    let v = parse_json(&body).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(8));
    for id in registry.ids() {
        assert!(body.contains(id), "artifact {id} missing from fanout");
    }

    // Every artifact is served by exactly the shard the ring assigns,
    // and the response says which shard that was.
    let ring = HashRing::new(2);
    for id in registry.ids() {
        let (status, headers, body) = post(
            addr,
            "/v1/thermo",
            &format!("{{\"artifact\":\"{id}\",\"temperatures\":[800,1600]}}"),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            header(&headers, "x-shard"),
            Some(ring.shard_for(id).to_string().as_str())
        );
    }

    // /metrics aggregates per-shard counters into a fleet-wide sum: the
    // 8 thermo requests all landed on some shard.
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let v = parse_json(&body).unwrap();
    let fleet_requests = v
        .get("fleet_counters")
        .and_then(|c| c.get("requests_total"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(fleet_requests >= 8, "fleet_counters sum too low: {body}");
    assert!(
        v.get("shards").and_then(JsonValue::as_array).unwrap().len() == 2,
        "{body}"
    );

    let (router_stats, shard_stats) = fleet.join();
    assert_eq!(router_stats.handler_panics, 0);
    let owned: usize = shard_stats
        .iter()
        .map(|s| s.as_ref().unwrap().artifacts)
        .sum();
    assert_eq!(owned, 8, "ring slices must cover the registry exactly");
    for s in &shard_stats {
        let s = s.as_ref().unwrap();
        assert!(s.artifacts > 0, "every shard should own a slice");
        assert_eq!(s.handler_panics, 0);
    }
}

#[test]
fn fleet_abuse_suite_yields_4xx_and_stays_healthy() {
    let registry = fleet_registry(2);
    let fleet = launch(2, &registry);
    let addr = fleet.local_addr();

    // Oversized declared body (rejected at the router edge).
    let (status, _, _) = exchange(
        addr,
        "POST /v1/thermo HTTP/1.1\r\ncontent-length: 99999999\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 413);

    // Malformed JSON: forwarded to a shard, which answers the 400.
    let (status, _, body) = post(addr, "/v1/thermo", "{\"artifact\": <-- nope");
    assert_eq!(status, 400, "{body}");

    // Unknown artifact: routed by ring hash, 404 from the owning shard.
    let (status, _, _) = post(
        addr,
        "/v1/thermo",
        "{\"artifact\":\"ghost\",\"temperatures\":[100]}",
    );
    assert_eq!(status, 404);

    // Unknown endpoint / wrong method / raw garbage: router-local.
    let (status, _, _) = get(addr, "/v2/everything");
    assert_eq!(status, 404);
    let (status, _, _) = exchange(
        addr,
        "DELETE /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    let (status, _, _) = exchange(addr, "EHLO mail.example.com\r\n");
    assert_eq!(status, 400);

    // Header flood and chunked transfer.
    let flood = format!(
        "GET /healthz HTTP/1.1\r\nx-filler: {}\r\n\r\n",
        "a".repeat(64 * 1024)
    );
    let (status, _, _) = exchange(addr, &flood);
    assert_eq!(status, 431);
    let (status, _, _) = exchange(
        addr,
        "POST /v1/thermo HTTP/1.1\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 501);

    // The fleet still serves real queries afterwards.
    let id = registry.ids()[0].to_string();
    let (status, _, body) = post(
        addr,
        "/v1/thermo",
        &format!("{{\"artifact\":\"{id}\",\"temperatures\":[1000]}}"),
    );
    assert_eq!(status, 200, "{body}");

    let (router_stats, shard_stats) = fleet.join();
    assert_eq!(router_stats.handler_panics, 0);
    for s in shard_stats {
        assert_eq!(s.unwrap().handler_panics, 0);
    }
}

#[test]
fn fleet_saturation_sheds_load_with_429() {
    let registry = fleet_registry(2);
    // Starve the router tier: one worker, queue depth one. Forwarding
    // blocks that worker for the whole router→shard round trip, so a
    // simultaneous burst must overflow the queue at the front door.
    let fleet = Fleet::launch(
        2,
        &registry,
        RouterConfig {
            serve: ServeConfig {
                workers: 1,
                queue_depth: 1,
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        },
        &ShardConfig::default(),
    )
    .unwrap();
    let addr = fleet.local_addr();
    let id = registry.ids()[0].to_string();

    let mut saw_429 = false;
    let mut saw_200 = false;
    for round in 0..5 {
        let threads: Vec<_> = (0..32)
            .map(|i| {
                let id = id.clone();
                std::thread::spawn(move || {
                    // Unique cold grid per request: every one costs a
                    // full evaluation on the shard.
                    let body = format!(
                        "{{\"artifact\":\"{id}\",\"t_min\":{},\"t_max\":3000,\"num_t\":4096}}",
                        300 + round * 40 + i
                    );
                    let (status, _, _) = post(addr, "/v1/thermo", &body);
                    status
                })
            })
            .collect();
        for t in threads {
            match t.join().unwrap() {
                429 => saw_429 = true,
                200 => saw_200 = true,
                other => panic!("unexpected status {other} under fleet saturation"),
            }
        }
        if saw_429 && saw_200 {
            break;
        }
    }
    assert!(saw_429, "a saturated router must shed load with 429");
    assert!(saw_200, "admitted requests must still be answered");

    let (router_stats, _) = fleet.join();
    assert!(router_stats.queue_rejections > 0);
    assert_eq!(router_stats.handler_panics, 0);
}

#[test]
fn shutdown_endpoint_drains_router_and_every_shard() {
    let registry = fleet_registry(4);
    let fleet = launch(2, &registry);
    let addr = fleet.local_addr();

    // Warm one shard so its drain summary shows traffic.
    let id = registry.ids()[0].to_string();
    let (status, _, _) = post(
        addr,
        "/v1/thermo",
        &format!("{{\"artifact\":\"{id}\",\"temperatures\":[900]}}"),
    );
    assert_eq!(status, 200);

    // The drain reply embeds one summary per shard — the router only
    // answers after every shard has reported drained.
    let (status, _, body) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    let v = parse_json(&body).unwrap();
    assert_eq!(
        v.get("status").and_then(JsonValue::as_str),
        Some("draining")
    );
    let shards = v.get("shards").and_then(JsonValue::as_array).unwrap();
    assert_eq!(shards.len(), 2, "{body}");
    for entry in shards {
        let drained = entry.get("drained").expect("per-shard drain summary");
        assert_eq!(
            drained.get("status").and_then(JsonValue::as_str),
            Some("draining")
        );
    }

    // The front door refuses new connections once drained.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (router_stats, shard_stats) = fleet.join();
    assert!(Instant::now() < deadline, "drain should be prompt");
    assert_eq!(router_stats.handler_panics, 0);
    for s in shard_stats {
        assert!(s.is_some(), "every shard must exit cleanly after drain");
    }
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn killing_one_shard_degrades_only_its_key_slice() {
    let registry = fleet_registry(6);
    let fleet = launch(2, &registry);
    let addr = fleet.local_addr();
    let [shard0_id, shard1_id] = ids_per_shard(&registry);

    // Both slices serve before the kill.
    for id in [&shard0_id, &shard1_id] {
        let (status, _, body) = post(
            addr,
            "/v1/thermo",
            &format!("{{\"artifact\":\"{id}\",\"temperatures\":[700]}}"),
        );
        assert_eq!(status, 200, "{body}");
    }

    // Kill shard 0 abruptly (no drain, no goodbye) and wait for the
    // router's liveness to notice the torn-down connections.
    fleet.kill_shard(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = get(addr, "/healthz");
        let live = parse_json(&body)
            .unwrap()
            .get("live_shards")
            .and_then(JsonValue::as_u64)
            .unwrap();
        if live == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never noticed the dead shard: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The dead slice answers 503; the surviving slice keeps serving.
    let (status, headers, _) = post(
        addr,
        "/v1/thermo",
        &format!("{{\"artifact\":\"{shard0_id}\",\"temperatures\":[700]}}"),
    );
    assert_eq!(status, 503, "dead shard's slice must fail fast");
    assert_eq!(header(&headers, "x-shard"), Some("0"));
    let (status, _, body) = post(
        addr,
        "/v1/thermo",
        &format!("{{\"artifact\":\"{shard1_id}\",\"temperatures\":[700]}}"),
    );
    assert_eq!(status, 200, "surviving slice must keep serving: {body}");

    // Fan-outs degrade to the surviving slice instead of failing.
    let (status, _, body) = get(addr, "/v1/artifacts");
    assert_eq!(status, 200);
    assert!(body.contains(&shard1_id));
    assert!(!body.contains(&format!("\"id\":\"{shard0_id}\"")), "{body}");

    let (router_stats, _) = fleet.join();
    assert_eq!(router_stats.handler_panics, 0);
}
