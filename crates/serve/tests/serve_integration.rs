//! End-to-end tests against a live server on a loopback socket:
//! registry round-trips, concurrent bit-exactness, the abuse suite, and
//! graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dt_serve::fixture::fixture_artifact;
use dt_serve::{Artifact, ArtifactRegistry, ServeConfig, ServeHandle, Server};
use dt_telemetry::{parse_json, JsonValue};
use dt_thermo::KB_EV_PER_K;

fn start(config: ServeConfig) -> ServeHandle {
    let mut registry = ArtifactRegistry::new();
    registry.insert(fixture_artifact("it"));
    Server::start(registry, config).unwrap()
}

/// Read one HTTP response: (status, headers lowercased, body).
fn read_response<R: BufRead>(reader: &mut R) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').unwrap();
        let (k, v) = (k.to_ascii_lowercase(), v.trim().to_string());
        if k == "content-length" {
            content_length = v.parse().unwrap();
        }
        headers.push((k, v));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

/// One fresh-connection exchange.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn served_registry_round_trips_from_disk() {
    // Save the fixture to a temp registry dir, serve from the loaded
    // copy, and check the served curve matches the in-memory original.
    let dir = std::env::temp_dir().join(format!("dtserve-it-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let original = fixture_artifact("disk");
    original.save(&dir).unwrap();
    let loaded = Artifact::load(dir.join(&original.manifest.id)).unwrap();

    let registry = ArtifactRegistry::open(&dir).unwrap();
    assert_eq!(registry.len(), 1);
    let handle = Server::start(registry, ServeConfig::default()).unwrap();
    let (status, _, body) = post(
        handle.local_addr(),
        "/v1/thermo",
        "{\"artifact\":\"fixture-disk\",\"t_min\":400,\"t_max\":2400,\"num_t\":9}",
    );
    assert_eq!(status, 200, "{body}");

    let (e, lg) = loaded.visited_dos();
    let temps = dt_thermo::temperature_grid(400.0, 2400.0, 9);
    let direct = dt_thermo::canonical_curve(&e, &lg, &temps, KB_EV_PER_K);
    let v = parse_json(&body).unwrap();
    let served_u: Vec<u64> = v
        .get("u")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap().to_bits())
        .collect();
    let direct_u: Vec<u64> = direct.iter().map(|p| p.u.to_bits()).collect();
    assert_eq!(served_u, direct_u);

    handle.shutdown();
    assert_eq!(handle.join().handler_panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_get_bit_identical_curves() {
    let handle = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    // The ground truth, evaluated directly on the fixture's data.
    let art = fixture_artifact("it");
    let (e, lg) = art.visited_dos();
    let temps = dt_thermo::temperature_grid(300.0, 3000.0, 40);
    let direct = dt_thermo::canonical_curve(&e, &lg, &temps, KB_EV_PER_K);
    let want_bits: Vec<Vec<u64>> = ["temperatures", "u", "cv", "f", "s"]
        .iter()
        .enumerate()
        .map(|(i, _)| {
            direct
                .iter()
                .map(|p| [p.t, p.u, p.cv, p.f, p.s][i].to_bits())
                .collect()
        })
        .collect();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let want = want_bits.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, _, body) = post(
                        addr,
                        "/v1/thermo",
                        "{\"artifact\":\"fixture-it\",\"t_min\":300,\"t_max\":3000,\"num_t\":40}",
                    );
                    assert_eq!(status, 200, "{body}");
                    let v = parse_json(&body).unwrap();
                    for (name, want) in ["temperatures", "u", "cv", "f", "s"].iter().zip(&want) {
                        let got: Vec<u64> = v
                            .get(name)
                            .and_then(JsonValue::as_array)
                            .unwrap()
                            .iter()
                            .map(|x| x.as_f64().unwrap().to_bits())
                            .collect();
                        assert_eq!(&got, want, "series {name} differs from direct evaluation");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.handler_panics, 0);
    assert!(stats.requests_handled >= 40);
}

#[test]
fn abuse_suite_yields_4xx_and_leaves_the_server_healthy() {
    let handle = start(ServeConfig {
        max_body_bytes: 4096,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    // Oversized body: declared length beyond the limit.
    let (status, _, _) = exchange(
        addr,
        "POST /v1/thermo HTTP/1.1\r\ncontent-length: 999999\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 413);

    // Malformed JSON.
    let (status, _, body) = post(addr, "/v1/thermo", "{\"artifact\": <-- nope");
    assert_eq!(status, 400, "{body}");
    assert!(parse_json(&body).unwrap().get("error").is_some());

    // Unknown artifact.
    let (status, _, _) = post(
        addr,
        "/v1/thermo",
        "{\"artifact\":\"ghost\",\"temperatures\":[100]}",
    );
    assert_eq!(status, 404);

    // Unknown endpoint and wrong method.
    let (status, _, _) = exchange(
        addr,
        "GET /v2/everything HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    let (status, _, _) = exchange(
        addr,
        "DELETE /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);

    // Not HTTP at all.
    let (status, _, _) = exchange(addr, "EHLO mail.example.com\r\n");
    assert_eq!(status, 400);

    // Header flood.
    let flood = format!(
        "GET /healthz HTTP/1.1\r\nx-filler: {}\r\n\r\n",
        "a".repeat(64 * 1024)
    );
    let (status, _, _) = exchange(addr, &flood);
    assert_eq!(status, 431);

    // Chunked upload (unimplemented on purpose).
    let (status, _, _) = exchange(
        addr,
        "POST /v1/thermo HTTP/1.1\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 501);

    // After all that, the server still answers real queries.
    let (status, _, body) = post(
        addr,
        "/v1/thermo",
        "{\"artifact\":\"fixture-it\",\"temperatures\":[1000]}",
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = exchange(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.handler_panics, 0, "abuse must never panic a worker");
}

#[test]
fn cache_header_distinguishes_hit_from_miss() {
    let handle = start(ServeConfig::default());
    let addr = handle.local_addr();
    let body = "{\"artifact\":\"fixture-it\",\"temperatures\":[321,654,987]}";
    let (status, headers, first) = post(addr, "/v1/thermo", body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    let (status, headers, second) = post(addr, "/v1/thermo", body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(first, second, "hit and miss bodies must be identical");
    handle.shutdown();
    handle.join();
}

#[test]
fn saturation_returns_429_not_unbounded_queueing() {
    // One worker, queue depth one. Under the readiness-driven engine an
    // idle connection costs nothing (that's the point), so saturation
    // means *compute*: a burst of cold, unique-grid thermo evaluations.
    // The single worker can hold one and the queue one more; the
    // reactor must shed the rest of the simultaneous burst with 429.
    let handle = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    let mut saw_429 = false;
    let mut saw_200 = false;
    for round in 0..5 {
        let threads: Vec<_> = (0..32)
            .map(|i| {
                std::thread::spawn(move || {
                    // Unique grid per request: every fill is cold and
                    // runs the full evaluation.
                    let body = format!(
                        "{{\"artifact\":\"fixture-it\",\"t_min\":{},\"t_max\":3000,\"num_t\":4096}}",
                        300 + round * 40 + i
                    );
                    let (status, _, _) = post(addr, "/v1/thermo", &body);
                    status
                })
            })
            .collect();
        for t in threads {
            match t.join().unwrap() {
                429 => saw_429 = true,
                200 => saw_200 = true,
                other => panic!("unexpected status {other} under saturation"),
            }
        }
        if saw_429 && saw_200 {
            break;
        }
    }
    assert!(saw_429, "a saturated queue must shed load with 429");
    assert!(saw_200, "admitted requests must still be answered");

    handle.shutdown();
    let stats = handle.join();
    assert!(stats.queue_rejections > 0);
    assert_eq!(stats.handler_panics, 0);
}

#[test]
fn graceful_shutdown_answers_the_in_flight_request_first() {
    let handle = start(ServeConfig::default());
    let addr = handle.local_addr();

    // Open a keep-alive connection and park it idle, then drain.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    idle.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    // Request a drain from a second connection.
    let (status, _, _) = exchange(
        addr,
        "POST /v1/shutdown HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);

    // A request racing the drain on the still-open connection either
    // gets a final answer (connection: close) or the socket closes —
    // never a hang.
    idle.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut status_line = String::new();
    let outcome = reader.read_line(&mut status_line);
    assert!(
        matches!(outcome, Ok(0)) || status_line.starts_with("HTTP/1.1"),
        "got {outcome:?} / {status_line:?}"
    );

    let stats = handle.join();
    assert_eq!(stats.handler_panics, 0);
}
