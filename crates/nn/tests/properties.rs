//! Property tests of the NN substrate: softmax normalization, gradient
//! correctness against finite differences, and lossless serialization for
//! arbitrary shapes.

use dt_nn::{
    load_mlp, log_softmax_masked, mse_loss, save_mlp, softmax_cross_entropy, Activation, Matrix,
    Mlp,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn finite_logits() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// exp(log_softmax) always sums to 1 over allowed classes, for any
    /// finite logits and any non-empty mask.
    #[test]
    fn log_softmax_normalizes(logits in finite_logits(), mask_bits in any::<u64>()) {
        let n = logits.len();
        let mut mask: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        if !mask.iter().any(|&b| b) {
            mask[0] = true;
        }
        let lp = log_softmax_masked(&logits, Some(&mask));
        let total: f64 = lp.iter().map(|&v| v.exp()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for (i, &v) in lp.iter().enumerate() {
            if !mask[i] {
                prop_assert_eq!(v, f64::NEG_INFINITY);
            } else {
                prop_assert!(v <= 1e-12);
            }
        }
    }

    /// log_softmax is shift-invariant.
    #[test]
    fn log_softmax_shift_invariant(logits in finite_logits(), shift in -100.0f64..100.0) {
        let a = log_softmax_masked(&logits, None);
        let shifted: Vec<f64> = logits.iter().map(|&v| v + shift).collect();
        let b = log_softmax_masked(&shifted, None);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    /// Cross-entropy gradients match central finite differences for random
    /// logits/targets.
    #[test]
    fn cross_entropy_gradient_is_exact(
        rows in 1usize..4,
        cols in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::RngExt;
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
        let logits = Matrix::from_vec(rows, cols, data);
        let targets: Vec<usize> = (0..rows).map(|_| rng.random_range(0..cols)).collect();
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for r in 0..rows {
            for c in 0..cols {
                let mut up = logits.clone();
                up[(r, c)] += eps;
                let mut dn = logits.clone();
                dn[(r, c)] -= eps;
                let fd = (softmax_cross_entropy(&up, &targets).0
                    - softmax_cross_entropy(&dn, &targets).0)
                    / (2.0 * eps);
                prop_assert!((grad[(r, c)] - fd).abs() < 1e-5);
            }
        }
    }

    /// MLP gradients match finite differences for random small networks.
    #[test]
    fn mlp_backprop_is_exact(seed in any::<u64>(), hidden in 2usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, hidden, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.6]]);
        let y = Matrix::from_rows(&[&[0.5, -0.5]]);
        let out = mlp.forward_train(&x);
        let (_, grad) = mse_loss(&out, &y);
        mlp.zero_grad();
        mlp.backward(&grad);
        let loss_of = |m: &Mlp| mse_loss(&m.forward(&x), &y).0;
        let eps = 1e-6;
        // Check one weight per layer.
        for li in 0..mlp.layers().len() {
            let orig = mlp.layers()[li].w[(0, 0)];
            mlp.layers_mut()[li].w[(0, 0)] = orig + eps;
            let up = loss_of(&mlp);
            mlp.layers_mut()[li].w[(0, 0)] = orig - eps;
            let dn = loss_of(&mlp);
            mlp.layers_mut()[li].w[(0, 0)] = orig;
            let fd = (up - dn) / (2.0 * eps);
            prop_assert!((mlp.layers()[li].gw[(0, 0)] - fd).abs() < 1e-5);
        }
    }

    /// Serialization round-trips bit-exactly for arbitrary shapes and
    /// activations.
    #[test]
    fn serialization_round_trips(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..7, 2..5),
        act_pick in 0u8..3,
    ) {
        let act = match act_pick {
            0 => Activation::Relu,
            1 => Activation::Tanh,
            _ => Activation::Identity,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, act, Activation::Identity, &mut rng);
        let back = load_mlp(&save_mlp(&mlp)).unwrap();
        prop_assert_eq!(back.dims(), mlp.dims());
        let x = Matrix::from_vec(1, dims[0], vec![0.3; dims[0]]);
        let a = mlp.forward(&x);
        let b = back.forward(&x);
        prop_assert_eq!(a.data(), b.data());
    }

    /// flatten/set params round-trips through arbitrary vectors.
    #[test]
    fn param_vector_round_trips(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[2, 3, 2], Activation::Relu, Activation::Identity, &mut rng);
        let params = mlp.flatten_params();
        let doubled: Vec<f64> = params.iter().map(|&p| 2.0 * p).collect();
        mlp.set_params(&doubled);
        prop_assert_eq!(mlp.flatten_params(), doubled);
    }
}
