//! Equivalence suite for the batched inference engine: `forward_into`
//! must be **bit-identical** to the `Mlp::forward` reference path for any
//! network shape, activation pairing, and batch size — the deep
//! proposal's Metropolis–Hastings log-probabilities depend on it.

use dt_nn::{
    log_softmax_masked, log_softmax_masked_into, softmax_cross_entropy_masked,
    softmax_cross_entropy_masked_flat, Activation, ForwardScratch, Matrix, Mlp,
};
use proptest::prelude::*;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn activation(pick: u8) -> Activation {
    match pick % 3 {
        0 => Activation::Relu,
        1 => Activation::Tanh,
        _ => Activation::Identity,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Batched scratch inference reproduces the reference forward pass
    /// bit-for-bit over random shapes, activations, and batch sizes.
    #[test]
    fn forward_into_is_bit_identical_to_forward(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..23, 2..5),
        rows in 1usize..9,
        hidden_pick in 0u8..3,
        out_pick in 0u8..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, activation(hidden_pick), activation(out_pick), &mut rng);
        let x: Vec<f64> = (0..rows * dims[0])
            .map(|_| rng.random::<f64>() * 6.0 - 3.0)
            .collect();
        let reference = mlp.forward(&Matrix::from_vec(rows, dims[0], x.clone()));
        let mut scratch = ForwardScratch::new();
        let got = mlp.forward_into(&x, rows, &mut scratch);
        prop_assert_eq!(got.len(), reference.data().len());
        for (g, e) in got.iter().zip(reference.data()) {
            prop_assert_eq!(g.to_bits(), e.to_bits(), "{} vs {}", g, e);
        }
    }

    /// A warmed scratch stays bit-identical when reused across many
    /// batches of varying size (ping-pong buffers carry no state between
    /// calls).
    #[test]
    fn scratch_reuse_does_not_leak_state(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[5, 11, 7, 3], Activation::Relu, Activation::Identity, &mut rng);
        let mut scratch = ForwardScratch::for_mlp(&mlp, 8);
        for rows in [8usize, 1, 3, 8, 2, 1] {
            let x: Vec<f64> = (0..rows * 5).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
            let reference = mlp.forward(&Matrix::from_vec(rows, 5, x.clone()));
            let got = mlp.forward_into(&x, rows, &mut scratch);
            for (g, e) in got.iter().zip(reference.data()) {
                prop_assert_eq!(g.to_bits(), e.to_bits());
            }
        }
    }

    /// Processing k rows in ONE batched call equals k separate batch-1
    /// calls bit-for-bit — the identity that lets replay and training
    /// batch freely.
    #[test]
    fn batched_rows_equal_sequential_batch1(
        seed in any::<u64>(),
        rows in 2usize..8,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[6, 16, 4], Activation::Tanh, Activation::Identity, &mut rng);
        let x: Vec<f64> = (0..rows * 6).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
        let mut scratch = ForwardScratch::for_mlp(&mlp, rows);
        let batched: Vec<f64> = mlp.forward_into(&x, rows, &mut scratch).to_vec();
        for r in 0..rows {
            let row = &x[r * 6..(r + 1) * 6];
            let single = mlp.forward_into(row, 1, &mut scratch);
            for (b, s) in batched[r * 4..(r + 1) * 4].iter().zip(single) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }

    /// The buffered log-softmax writes exactly what the allocating one
    /// returns.
    #[test]
    fn log_softmax_into_matches_allocating(
        logits in proptest::collection::vec(-40.0f64..40.0, 2..9),
        mask_bits in any::<u64>(),
    ) {
        let n = logits.len();
        let mut mask: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        if !mask.iter().any(|&b| b) {
            mask[0] = true;
        }
        let want = log_softmax_masked(&logits, Some(&mask));
        let mut got = Vec::new();
        log_softmax_masked_into(&logits, Some(&mask), &mut got);
        for (g, e) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    /// Flat-mask cross-entropy equals the per-row-Vec form exactly
    /// (loss and gradient).
    #[test]
    fn flat_mask_cross_entropy_matches_rows(
        seed in any::<u64>(),
        rows in 1usize..6,
        cols in 2usize..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let logits = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect(),
        );
        let mut masks_rows = Vec::new();
        let mut masks_flat = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..rows {
            let mut m: Vec<bool> = (0..cols).map(|_| rng.random::<f64>() < 0.7).collect();
            if !m.iter().any(|&b| b) {
                m[0] = true;
            }
            let allowed: Vec<usize> = (0..cols).filter(|&c| m[c]).collect();
            targets.push(allowed[rng.random_range(0..allowed.len())]);
            masks_flat.extend_from_slice(&m);
            masks_rows.push(m);
        }
        let (loss_a, grad_a) = softmax_cross_entropy_masked(&logits, &targets, &masks_rows);
        let (loss_b, grad_b) = softmax_cross_entropy_masked_flat(&logits, &targets, &masks_flat);
        prop_assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        for (a, b) in grad_a.data().iter().zip(grad_b.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
