//! Asserts the acceptance criterion that steady-state `forward_into`
//! performs **zero heap allocations**, using a counting global allocator.
//!
//! Counting is armed per-thread: the libtest harness keeps its own
//! threads alive next to the test thread, and their incidental
//! allocations must not leak into the count. The flag is a
//! const-initialised `Cell` so arming it never allocates (a lazily
//! initialised thread-local would recurse into the allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use dt_nn::{log_softmax_masked_into, Activation, ForwardScratch, Mlp};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread has armed counting. `Cell<bool>` has no
/// destructor, so the allocator never observes a dead thread-local.
fn counting() -> bool {
    COUNTING.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count heap allocations performed by `f` on the calling thread.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_forward_into_is_allocation_free() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mlp = Mlp::new(
        &[31, 64, 64, 4],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let batch = 32usize;
    let x: Vec<f64> = (0..batch * 31)
        .map(|_| rng.random::<f64>() * 2.0 - 1.0)
        .collect();
    let mut scratch = ForwardScratch::new();
    let mut logp = Vec::with_capacity(4);
    let mask = [true, true, false, true];

    // Warm-up: first calls may grow the scratch and logp buffers.
    let _ = mlp.forward_into(&x, batch, &mut scratch);
    let out = mlp.forward_into(&x[..31], 1, &mut scratch);
    log_softmax_masked_into(&out[..4], Some(&mask), &mut logp);

    // Steady state: batched, batch-1, and the decode-loop softmax must
    // all run without touching the allocator.
    let mut sink = 0.0;
    let count = allocations_in(|| {
        for _ in 0..100 {
            let out = mlp.forward_into(&x, batch, &mut scratch);
            sink += out[0];
            let out1 = mlp.forward_into(&x[..31], 1, &mut scratch);
            log_softmax_masked_into(&out1[..4], Some(&mask), &mut logp);
            sink += logp[0];
        }
    });
    assert!(sink.is_finite());
    assert_eq!(
        count, 0,
        "steady-state forward_into must not allocate, saw {count} allocations"
    );

    // Sanity check that the counter actually counts.
    let count = allocations_in(|| {
        let v: Vec<f64> = Vec::with_capacity(64);
        std::hint::black_box(&v);
    });
    assert!(count >= 1, "counter should see an explicit allocation");
}
