//! Dense layers and activations with explicit backprop.

use rand::{Rng, RngExt};

use crate::matrix::Matrix;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op (used on output layers).
    Identity,
}

impl Activation {
    /// Apply the activation to one value. This is the scalar kernel both
    /// [`Activation::forward`] and the fused inference path build on, so
    /// the two are bit-identical by construction.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Relu => {
                if v > 0.0 {
                    v
                } else {
                    0.0
                }
            }
            Activation::Tanh => v.tanh(),
            Activation::Identity => v,
        }
    }

    /// Apply the activation element-wise.
    pub fn forward(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Identity => x.clone(),
            _ => x.map(|v| self.apply(v)),
        }
    }

    /// `grad_in = grad_out ⊙ f'(preactivation)`.
    pub fn backward(self, preact: &Matrix, grad_out: &Matrix) -> Matrix {
        match self {
            Activation::Relu => {
                let mut g = grad_out.clone();
                for (gv, &p) in g.data_mut().iter_mut().zip(preact.data()) {
                    if p <= 0.0 {
                        *gv = 0.0;
                    }
                }
                g
            }
            Activation::Tanh => {
                let mut g = grad_out.clone();
                for (gv, &p) in g.data_mut().iter_mut().zip(preact.data()) {
                    let t = p.tanh();
                    *gv *= 1.0 - t * t;
                }
                g
            }
            Activation::Identity => grad_out.clone(),
        }
    }

    /// Short tag used by the serializer.
    pub fn tag(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Identity => "id",
        }
    }

    /// Parse a serializer tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "relu" => Some(Activation::Relu),
            "tanh" => Some(Activation::Tanh),
            "id" => Some(Activation::Identity),
            _ => None,
        }
    }
}

/// A fully connected layer `y = x · Wᵀ + b` with cached activations for
/// backprop. Weights are stored `out × in`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `out_dim × in_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f64>,
    /// Weight gradient accumulator.
    pub gw: Matrix,
    /// Bias gradient accumulator.
    pub gb: Vec<f64>,
    input_cache: Option<Matrix>,
}

impl Linear {
    /// He-initialized layer (good default for ReLU nets; harmless for
    /// tanh at these widths).
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / in_dim as f64).sqrt();
        let mut w = Matrix::zeros(out_dim, in_dim);
        for v in w.data_mut() {
            // Box–Muller from two uniforms keeps us independent of
            // distribution crates.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            *v = std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        Linear {
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            b: vec![0.0; out_dim],
            w,
            input_cache: None,
        }
    }

    /// Build from explicit parameters (deserialization).
    pub fn from_params(w: Matrix, b: Vec<f64>) -> Self {
        assert_eq!(w.rows(), b.len(), "bias length must equal out_dim");
        Linear {
            gw: Matrix::zeros(w.rows(), w.cols()),
            gb: vec![0.0; b.len()],
            w,
            b,
            input_cache: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Inference-only forward (no caching, `&self`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_transpose_b(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Training forward: caches the input for the backward pass.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let y = self.forward(x);
        self.input_cache = Some(x.clone());
        y
    }

    /// Backward pass: accumulates `gw`/`gb` and returns the input gradient.
    ///
    /// # Panics
    /// Panics if called before `forward_train`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .input_cache
            .as_ref()
            .expect("backward called before forward_train");
        // dW = dYᵀ · X ; db = colsum(dY) ; dX = dY · W
        self.gw.add_assign(&grad_out.transpose_a_matmul(x));
        for (g, s) in self.gb.iter_mut().zip(grad_out.column_sums()) {
            *g += s;
        }
        grad_out.matmul(&self.w)
    }

    /// Clear gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw.scale(0.0);
        for g in &mut self.gb {
            *g = 0.0;
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn relu_forward_backward() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = Activation::Relu.backward(&x, &Matrix::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_backward_matches_derivative() {
        let x = Matrix::from_rows(&[&[0.3]]);
        let g = Activation::Tanh.backward(&x, &Matrix::from_rows(&[&[1.0]]));
        let t = 0.3f64.tanh();
        assert!((g.data()[0] - (1.0 - t * t)).abs() < 1e-12);
    }

    #[test]
    fn activation_tags_round_trip() {
        for a in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            assert_eq!(Activation::from_tag(a.tag()), Some(a));
        }
        assert_eq!(Activation::from_tag("nope"), None);
    }

    #[test]
    fn linear_forward_known_values() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]);
        let l = Linear::from_params(w, vec![0.5, 0.0]);
        let y = l.forward(&Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(y.data(), &[11.5, -4.0]);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 0.5, -0.5]]);
        // Loss = sum(y); dL/dy = ones.
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = l.forward_train(&x);
        l.zero_grad();
        let gx = l.backward(&ones);

        let eps = 1e-6;
        // Check a weight gradient.
        for (r, c) in [(0, 0), (1, 2)] {
            let orig = l.w[(r, c)];
            l.w[(r, c)] = orig + eps;
            let up: f64 = l.forward(&x).data().iter().sum();
            l.w[(r, c)] = orig - eps;
            let dn: f64 = l.forward(&x).data().iter().sum();
            l.w[(r, c)] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!((l.gw[(r, c)] - fd).abs() < 1e-6, "gw({r},{c})");
        }
        // Check an input gradient by perturbing x.
        let mut x2 = x.clone();
        let orig = x2[(0, 1)];
        x2[(0, 1)] = orig + eps;
        let up: f64 = l.forward(&x2).data().iter().sum();
        x2[(0, 1)] = orig - eps;
        let dn: f64 = l.forward(&x2).data().iter().sum();
        let fd = (up - dn) / (2.0 * eps);
        assert!((gx[(0, 1)] - fd).abs() < 1e-6);
    }

    #[test]
    fn he_init_scale_is_reasonable() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = Linear::new(100, 50, &mut rng);
        let var: f64 = l.w.data().iter().map(|&v| v * v).sum::<f64>() / l.w.data().len() as f64;
        assert!((var - 0.02).abs() < 0.005, "He variance 2/100, got {var}");
        assert!(l.b.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(Linear::new(4, 3, &mut rng).num_params(), 15);
    }
}
