//! Optimizers: SGD (with momentum) and Adam.

use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<(Matrix, Vec<f64>)>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from the accumulated gradients.
    pub fn step(&mut self, mlp: &mut Mlp) {
        if self.velocity.is_empty() {
            self.velocity = mlp
                .layers()
                .iter()
                .map(|l| (Matrix::zeros(l.w.rows(), l.w.cols()), vec![0.0; l.b.len()]))
                .collect();
        }
        for (layer, (vw, vb)) in mlp.layers_mut().iter_mut().zip(&mut self.velocity) {
            for ((w, &g), v) in layer
                .w
                .data_mut()
                .iter_mut()
                .zip(layer.gw.data())
                .zip(vw.data_mut())
            {
                *v = self.momentum * *v - self.lr * g;
                *w += *v;
            }
            for ((b, &g), v) in layer.b.iter_mut().zip(&layer.gb).zip(vb.iter_mut()) {
                *v = self.momentum * *v - self.lr * g;
                *b += *v;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    state: Vec<AdamLayerState>,
}

#[derive(Debug, Clone)]
struct AdamLayerState {
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Adam {
    /// Adam with the canonical hyperparameters and a custom learning rate.
    pub fn with_lr(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Fully custom Adam.
    pub fn new(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Apply one update from the accumulated gradients.
    pub fn step(&mut self, mlp: &mut Mlp) {
        if self.state.is_empty() {
            self.state = mlp
                .layers()
                .iter()
                .map(|l| AdamLayerState {
                    mw: Matrix::zeros(l.w.rows(), l.w.cols()),
                    vw: Matrix::zeros(l.w.rows(), l.w.cols()),
                    mb: vec![0.0; l.b.len()],
                    vb: vec![0.0; l.b.len()],
                })
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (layer, st) in mlp.layers_mut().iter_mut().zip(&mut self.state) {
            for (((w, &g), m), v) in layer
                .w
                .data_mut()
                .iter_mut()
                .zip(layer.gw.data())
                .zip(st.mw.data_mut())
                .zip(st.vw.data_mut())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                *w -= self.lr * (*m / bc1) / ((*v / bc2).sqrt() + self.eps);
            }
            for (((b, &g), m), v) in layer
                .b
                .iter_mut()
                .zip(&layer.gb)
                .zip(st.mb.iter_mut())
                .zip(st.vb.iter_mut())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                *b -= self.lr * (*m / bc1) / ((*v / bc2).sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::mse_loss;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn train(opt_is_adam: bool, steps: usize) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(
            &[2, 12, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        // XOR-ish continuous target: y = x0 * x1.
        let x = Matrix::from_rows(&[
            &[-1.0, -1.0],
            &[-1.0, 1.0],
            &[1.0, -1.0],
            &[1.0, 1.0],
            &[0.5, 0.5],
            &[-0.5, 0.5],
        ]);
        let y = Matrix::from_vec(6, 1, x.data().chunks(2).map(|p| p[0] * p[1]).collect());
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let mut adam = Adam::with_lr(0.01);
        let mut last = 0.0;
        for _ in 0..steps {
            let out = mlp.forward_train(&x);
            let (loss, grad) = mse_loss(&out, &y);
            mlp.zero_grad();
            mlp.backward(&grad);
            if opt_is_adam {
                adam.step(&mut mlp);
            } else {
                sgd.step(&mut mlp);
            }
            last = loss;
        }
        last
    }

    #[test]
    fn adam_learns_xor() {
        assert!(train(true, 600) < 1e-2);
    }

    #[test]
    fn sgd_momentum_learns_xor() {
        assert!(train(false, 800) < 5e-2);
    }

    #[test]
    fn adam_lr_accessors() {
        let mut a = Adam::with_lr(0.01);
        assert_eq!(a.lr(), 0.01);
        a.set_lr(0.001);
        assert_eq!(a.lr(), 0.001);
    }

    #[test]
    fn adam_first_step_size_is_bounded_by_lr() {
        // With bias correction, |Δw| ≈ lr on the first step regardless of
        // gradient magnitude.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut mlp = Mlp::new(
            &[1, 1],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );
        let w0 = mlp.layers()[0].w[(0, 0)];
        let x = Matrix::from_rows(&[&[1000.0]]);
        let out = mlp.forward_train(&x);
        let target = out.map(|v| v + 1e6);
        let (_, grad) = mse_loss(&out, &target);
        mlp.zero_grad();
        mlp.backward(&grad);
        let mut adam = Adam::with_lr(0.01);
        adam.step(&mut mlp);
        let dw = (mlp.layers()[0].w[(0, 0)] - w0).abs();
        assert!(dw <= 0.011, "first Adam step {dw} must be ~lr");
    }
}
