//! Losses and (masked) softmax utilities.
//!
//! The masked log-softmax here is the numerical heart of DeepThermo's deep
//! proposal: during constrained autoregressive decoding, species whose
//! remaining composition count is zero are masked out, and the *exact*
//! log-probability of each decoded species feeds the Metropolis–Hastings
//! acceptance ratio. All paths use the standard max-subtraction trick so
//! probabilities stay finite for any logit magnitude.

use rand::{Rng, RngExt};

use crate::matrix::Matrix;

/// Mean-squared-error loss over all elements.
///
/// Returns `(loss, dL/d_pred)` where the gradient is already divided by the
/// element count.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = pred.data().len() as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Row-wise log-softmax with an optional mask of allowed classes.
///
/// Masked-out entries get `-inf`. `mask.len()` must equal the row length
/// when provided, and at least one entry must be allowed.
pub fn log_softmax_masked(logits: &[f64], mask: Option<&[bool]>) -> Vec<f64> {
    let mut out = Vec::with_capacity(logits.len());
    log_softmax_masked_into(logits, mask, &mut out);
    out
}

/// [`log_softmax_masked`] writing into a reused buffer.
///
/// `out` is cleared and refilled; a buffer with enough capacity makes the
/// call allocation-free, which matters in the deep proposal's per-site
/// decode loop. The arithmetic is identical to [`log_softmax_masked`], so
/// results are bit-identical.
pub fn log_softmax_masked_into(logits: &[f64], mask: Option<&[bool]>, out: &mut Vec<f64>) {
    if let Some(m) = mask {
        assert_eq!(m.len(), logits.len(), "mask length mismatch");
        assert!(m.iter().any(|&a| a), "mask must allow at least one class");
    }
    let allowed = |i: usize| mask.is_none_or(|m| m[i]);
    let max = logits
        .iter()
        .enumerate()
        .filter(|&(i, _)| allowed(i))
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut lse = 0.0;
    for (i, &v) in logits.iter().enumerate() {
        if allowed(i) {
            lse += (v - max).exp();
        }
    }
    let lse = max + lse.ln();
    out.clear();
    out.extend(logits.iter().enumerate().map(|(i, &v)| {
        if allowed(i) {
            v - lse
        } else {
            f64::NEG_INFINITY
        }
    }));
}

/// Softmax cross-entropy over a batch with integer targets.
///
/// Returns `(mean loss, dL/d_logits)`.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f64, Matrix) {
    softmax_cross_entropy_impl(logits, targets, MaskSource::None)
}

/// Masked softmax cross-entropy: per-row class masks (e.g. exhausted
/// species during constrained decoding). Targets must be allowed by their
/// row's mask.
pub fn softmax_cross_entropy_masked(
    logits: &Matrix,
    targets: &[usize],
    masks: &[Vec<bool>],
) -> (f64, Matrix) {
    assert_eq!(masks.len(), targets.len(), "mask count mismatch");
    softmax_cross_entropy_impl(logits, targets, MaskSource::Rows(masks))
}

/// [`softmax_cross_entropy_masked`] with the per-row masks flattened into
/// one `rows × cols` slice — the reusable-buffer form the proposal
/// trainer feeds so building a minibatch allocates no per-row `Vec`s.
pub fn softmax_cross_entropy_masked_flat(
    logits: &Matrix,
    targets: &[usize],
    masks: &[bool],
) -> (f64, Matrix) {
    assert_eq!(
        masks.len(),
        logits.rows() * logits.cols(),
        "flat mask length mismatch"
    );
    softmax_cross_entropy_impl(logits, targets, MaskSource::Flat(masks))
}

/// Where per-row class masks come from, if anywhere.
enum MaskSource<'a> {
    None,
    Rows(&'a [Vec<bool>]),
    Flat(&'a [bool]),
}

impl<'a> MaskSource<'a> {
    fn row(&self, r: usize, cols: usize) -> Option<&'a [bool]> {
        match self {
            MaskSource::None => None,
            MaskSource::Rows(m) => Some(m[r].as_slice()),
            MaskSource::Flat(m) => Some(&m[r * cols..(r + 1) * cols]),
        }
    }
}

fn softmax_cross_entropy_impl(
    logits: &Matrix,
    targets: &[usize],
    masks: MaskSource<'_>,
) -> (f64, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    let rows = logits.rows();
    let mut grad = Matrix::zeros(rows, logits.cols());
    let mut loss = 0.0;
    for (r, &t) in targets.iter().enumerate() {
        let mask = masks.row(r, logits.cols());
        let logp = log_softmax_masked(logits.row(r), mask);
        debug_assert!(
            mask.is_none_or(|m| m[t]),
            "target {t} masked out in row {r}"
        );
        loss -= logp[t];
        let g_row = grad.row_mut(r);
        for (c, &lp) in logp.iter().enumerate() {
            if lp == f64::NEG_INFINITY {
                g_row[c] = 0.0;
            } else {
                let p = lp.exp();
                g_row[c] = (p - f64::from(u8::from(c == t))) / rows as f64;
            }
        }
    }
    (loss / rows as f64, grad)
}

/// Sample a class index from log-probabilities (as produced by
/// [`log_softmax_masked`]); `-inf` entries are never chosen.
///
/// Returns the class and its log-probability.
pub fn sample_categorical<R: Rng + ?Sized>(logp: &[f64], rng: &mut R) -> (usize, f64) {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    let mut last_valid = None;
    for (i, &lp) in logp.iter().enumerate() {
        if lp == f64::NEG_INFINITY {
            continue;
        }
        last_valid = Some(i);
        acc += lp.exp();
        if u < acc {
            return (i, lp);
        }
    }
    // Floating-point slack: fall back to the last valid class.
    let i = last_valid.expect("at least one valid class");
    (i, logp[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let t = Matrix::from_rows(&[&[0.0, 4.0]]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-12); // (1 + 4)/2
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = log_softmax_masked(&[1.0, 2.0, 3.0], None);
        let total: f64 = lp.iter().map(|&v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Shift invariance.
        let lp2 = log_softmax_masked(&[101.0, 102.0, 103.0], None);
        for (a, b) in lp.iter().zip(&lp2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let lp = log_softmax_masked(&[1e6, 0.0, -1e6], None);
        assert!((lp[0] - 0.0).abs() < 1e-9);
        assert!(lp[1] < -1e5);
        let total: f64 = lp.iter().map(|&v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn masked_log_softmax_excludes_classes() {
        let lp = log_softmax_masked(&[5.0, 1.0, 1.0], Some(&[false, true, true]));
        assert_eq!(lp[0], f64::NEG_INFINITY);
        assert!((lp[1] - 0.5f64.ln()).abs() < 1e-12);
        assert!((lp[2] - 0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn fully_masked_row_panics() {
        let _ = log_softmax_masked(&[1.0, 2.0], Some(&[false, false]));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.2, -0.1, 0.5], &[1.0, 0.0, -1.0]]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for (r, c) in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut up = logits.clone();
            up[(r, c)] += eps;
            let mut dn = logits.clone();
            dn[(r, c)] -= eps;
            let (lu, _) = softmax_cross_entropy(&up, &targets);
            let (ld, _) = softmax_cross_entropy(&dn, &targets);
            let fd = (lu - ld) / (2.0 * eps);
            assert!((grad[(r, c)] - fd).abs() < 1e-6, "({r},{c})");
        }
    }

    #[test]
    fn masked_cross_entropy_ignores_masked_classes() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0, 0.0]]);
        let masks = vec![vec![false, true, true]];
        let (loss, grad) = softmax_cross_entropy_masked(&logits, &[1], &masks);
        // With class 0 masked, classes 1/2 are symmetric: loss = ln 2.
        assert!((loss - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(grad[(0, 0)], 0.0);
    }

    #[test]
    fn categorical_sampling_matches_probabilities() {
        let logp = log_softmax_masked(&[0.0, 0.0, (4.0f64).ln()], None);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            let (i, lp) = sample_categorical(&logp, &mut rng);
            assert!((lp - logp[i]).abs() < 1e-12);
            counts[i] += 1;
        }
        let p2 = counts[2] as f64 / n as f64;
        assert!((p2 - 4.0 / 6.0).abs() < 0.02, "p2 = {p2}");
    }

    #[test]
    fn categorical_sampling_skips_masked() {
        let logp = log_softmax_masked(&[3.0, 1.0], Some(&[false, true]));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_categorical(&logp, &mut rng).0, 1);
        }
    }
}
