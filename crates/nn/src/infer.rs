//! Batched, allocation-free inference.
//!
//! [`crate::Mlp::forward`] allocates a fresh [`Matrix`] per layer per
//! call, which is fine for training but dominates the cost of the deep
//! proposal's decode loop, where the network runs once per site per MC
//! move. The **one inference surface** callers use is
//! [`crate::Mlp::forward_into`] — batch-first (`rows ≥ 1`), fed from a
//! [`ForwardScratch`]; everything below it is an internal layer:
//!
//! * [`ForwardScratch`] — a pair of ping-pong activation buffers reused
//!   across forward passes. Buffers grow on first use (or when a larger
//!   batch arrives) and are never shrunk, so a warmed scratch performs
//!   **zero heap allocations** per forward. One scratch per walker/thread;
//!   it is `Clone` so per-rank state can be snapshotted freely.
//! * [`linear_forward_fused`] (doc-hidden) — a register-tiled `X · Wᵀ`
//!   kernel with the bias add and activation fused into the store. Each
//!   output element is accumulated in the **same sequential k-order** as
//!   the naive [`Matrix::matmul_transpose_b`] path, so results are
//!   bit-identical to [`crate::Mlp::forward`]; the speedup comes from
//!   running several independent accumulator chains at once (the naive
//!   dot product is latency-bound on the single accumulator) and from not
//!   touching the allocator.
//!
//! Batching rules (see DESIGN.md, "Inference engine"): whenever every
//! input row is known upfront — teacher-forced replay, reverse
//! log-probabilities, surrogate batch prediction — build all rows and run
//! one k-row pass through [`crate::Mlp::forward_into`]. Genuinely
//! autoregressive decoding (sampling step t+1 needs the species drawn at
//! step t) cannot batch across *sites*, but walkers sharing a network
//! decode in lockstep so each step is still one W-row pass; only a lone
//! walker ever runs batch-1, and even there the scratch removes all
//! per-step allocation.

use crate::layer::Activation;
use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Reusable activation buffers for [`Mlp::forward_into`].
///
/// Holds two flat row-major buffers that the forward pass ping-pongs
/// between, so any number of layers needs only two allocations for the
/// lifetime of the scratch. All buffers grow geometrically and never
/// shrink: once warmed for the largest batch a call site uses, every
/// subsequent forward is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    pub(crate) buf_a: Vec<f64>,
    pub(crate) buf_b: Vec<f64>,
    /// Column-major (input-index-major) repack of *every* layer's
    /// weights, concatenated in layer order, so multi-row forwards read
    /// contiguous weight lanes. Cached across calls and keyed by
    /// `packed_version`: repacking happens once per weight update, not
    /// once per layer per forward.
    pub(crate) packed_w: Vec<f64>,
    /// `Mlp` weight version `packed_w` was built from (0 = none).
    pub(crate) packed_version: u64,
}

impl ForwardScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        ForwardScratch::default()
    }

    /// A scratch pre-sized for `max_rows`-row batches through `mlp`, so
    /// the very first forward already allocates nothing.
    pub fn for_mlp(mlp: &Mlp, max_rows: usize) -> Self {
        let mut scratch = ForwardScratch::new();
        scratch.reserve(mlp, max_rows);
        scratch
    }

    /// Grow the buffers so `max_rows`-row batches through `mlp` need no
    /// further allocation.
    pub fn reserve(&mut self, mlp: &Mlp, max_rows: usize) {
        let widest = mlp
            .layers()
            .iter()
            .map(|l| l.out_dim())
            .max()
            .unwrap_or(0)
            .max(mlp.in_dim());
        let need = max_rows * widest;
        if self.buf_a.len() < need {
            self.buf_a.resize(need, 0.0);
        }
        if self.buf_b.len() < need {
            self.buf_b.resize(need, 0.0);
        }
        let total_w: usize = mlp
            .layers()
            .iter()
            .map(|l| packed_len(l.w.cols(), l.w.rows()))
            .sum();
        if self.packed_w.len() < total_w {
            self.packed_w.resize(total_w, 0.0);
            self.packed_version = 0;
        }
    }
}

/// Fused `out = act(x · wᵀ + bias)` over the first `rows` rows of `x`.
///
/// `x` is row-major `rows × w.cols()`; `out` receives row-major
/// `rows × w.rows()` (any tail beyond that is left untouched). The k-loop
/// for each output element is sequential, matching the accumulation order
/// of [`Matrix::matmul_transpose_b`] exactly, so this is bit-identical to
/// the layer-by-layer reference path while the 2×4 register tile keeps
/// 8 independent accumulator chains in flight.
///
/// Internal kernel of [`crate::Mlp::forward_into`]; call that instead.
///
/// # Panics
/// Panics when `x` is shorter than `rows × w.cols()`, `bias` does not
/// match `w.rows()`, or `out` is shorter than `rows × w.rows()`.
#[doc(hidden)]
pub fn linear_forward_fused(
    x: &[f64],
    rows: usize,
    w: &Matrix,
    bias: &[f64],
    act: Activation,
    out: &mut [f64],
) {
    let in_dim = w.cols();
    let out_dim = w.rows();
    assert!(x.len() >= rows * in_dim, "input slice too short");
    assert_eq!(bias.len(), out_dim, "bias length mismatch");
    assert!(out.len() >= rows * out_dim, "output slice too short");
    let wd = w.data();

    let mut i = 0;
    // 2-row × 4-column register tiles.
    while i + 2 <= rows {
        let x0 = &x[i * in_dim..][..in_dim];
        let x1 = &x[(i + 1) * in_dim..][..in_dim];
        let mut j = 0;
        while j + 4 <= out_dim {
            let w0 = &wd[j * in_dim..][..in_dim];
            let w1 = &wd[(j + 1) * in_dim..][..in_dim];
            let w2 = &wd[(j + 2) * in_dim..][..in_dim];
            let w3 = &wd[(j + 3) * in_dim..][..in_dim];
            let (mut a00, mut a01, mut a02, mut a03) = (0.0, 0.0, 0.0, 0.0);
            let (mut a10, mut a11, mut a12, mut a13) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..in_dim {
                let v0 = x0[k];
                let v1 = x1[k];
                let b0 = w0[k];
                let b1 = w1[k];
                let b2 = w2[k];
                let b3 = w3[k];
                a00 += v0 * b0;
                a01 += v0 * b1;
                a02 += v0 * b2;
                a03 += v0 * b3;
                a10 += v1 * b0;
                a11 += v1 * b1;
                a12 += v1 * b2;
                a13 += v1 * b3;
            }
            out[i * out_dim + j] = act.apply(a00 + bias[j]);
            out[i * out_dim + j + 1] = act.apply(a01 + bias[j + 1]);
            out[i * out_dim + j + 2] = act.apply(a02 + bias[j + 2]);
            out[i * out_dim + j + 3] = act.apply(a03 + bias[j + 3]);
            out[(i + 1) * out_dim + j] = act.apply(a10 + bias[j]);
            out[(i + 1) * out_dim + j + 1] = act.apply(a11 + bias[j + 1]);
            out[(i + 1) * out_dim + j + 2] = act.apply(a12 + bias[j + 2]);
            out[(i + 1) * out_dim + j + 3] = act.apply(a13 + bias[j + 3]);
            j += 4;
        }
        while j < out_dim {
            let wj = &wd[j * in_dim..][..in_dim];
            let mut a0 = 0.0;
            let mut a1 = 0.0;
            for k in 0..in_dim {
                a0 += x0[k] * wj[k];
                a1 += x1[k] * wj[k];
            }
            out[i * out_dim + j] = act.apply(a0 + bias[j]);
            out[(i + 1) * out_dim + j] = act.apply(a1 + bias[j]);
            j += 1;
        }
        i += 2;
    }
    // Odd trailing row: 1-row × 4-column tiles.
    if i < rows {
        let x0 = &x[i * in_dim..][..in_dim];
        let mut j = 0;
        while j + 4 <= out_dim {
            let w0 = &wd[j * in_dim..][..in_dim];
            let w1 = &wd[(j + 1) * in_dim..][..in_dim];
            let w2 = &wd[(j + 2) * in_dim..][..in_dim];
            let w3 = &wd[(j + 3) * in_dim..][..in_dim];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..in_dim {
                let v = x0[k];
                a0 += v * w0[k];
                a1 += v * w1[k];
                a2 += v * w2[k];
                a3 += v * w3[k];
            }
            out[i * out_dim + j] = act.apply(a0 + bias[j]);
            out[i * out_dim + j + 1] = act.apply(a1 + bias[j + 1]);
            out[i * out_dim + j + 2] = act.apply(a2 + bias[j + 2]);
            out[i * out_dim + j + 3] = act.apply(a3 + bias[j + 3]);
            j += 4;
        }
        while j < out_dim {
            let wj = &wd[j * in_dim..][..in_dim];
            let mut a = 0.0;
            for k in 0..in_dim {
                a += x0[k] * wj[k];
            }
            out[i * out_dim + j] = act.apply(a + bias[j]);
            j += 1;
        }
    }
}

/// Column-tile width of [`linear_forward_fused_packed`]: 8 with AVX
/// (two 256-bit accumulator lanes per row), 4 on the SSE2 baseline
/// (two 128-bit lanes — a 2×8 tile spills there and runs slower).
/// Compile-time only; results are bit-identical either way.
#[cfg(target_feature = "avx")]
const J_TILE: usize = 8;
#[cfg(not(target_feature = "avx"))]
const J_TILE: usize = 4;

/// Length of the packed buffer [`pack_weights_transposed`] needs for an
/// `out_dim × in_dim` weight matrix: the column count rounded up to a
/// whole number of [`J_TILE`]-wide tiles. The tail tile is zero-padded,
/// which is what keeps the kernel's inner loop a single full-width
/// vector shape for *every* output width (a narrow tail tile defeats
/// LLVM's SLP vectorizer and runs scalar).
///
/// Internal sizing helper of [`crate::Mlp::forward_into`]'s scratch.
#[doc(hidden)]
pub fn packed_len(in_dim: usize, out_dim: usize) -> usize {
    in_dim * out_dim.div_ceil(J_TILE) * J_TILE
}

/// Repack `w` (row-major `out_dim × in_dim`) into the tile-blocked
/// layout [`linear_forward_fused_packed`] consumes: the output columns
/// are cut into [`J_TILE`]-wide tiles (the last tile zero-padded past
/// `out_dim`), and each tile stores its weights input-index-major —
/// `J_TILE` contiguous values per input index `k`.
///
/// The kernel's inner loop therefore walks the packed buffer strictly
/// sequentially: no index arithmetic, no strided loads, and bounds
/// checks vanish into `chunks_exact` — the scalar tiled kernel is
/// capped by scalar FP-add throughput, which batched workloads outgrow.
/// Padding columns accumulate zeros the epilogue never reads, so real
/// outputs keep the exact sequential k-order of the reference path.
///
/// Internal kernel of [`crate::Mlp::forward_into`]; call that instead.
///
/// # Panics
/// Panics when `wt` is shorter than [`packed_len`]`(w.cols(), w.rows())`.
#[doc(hidden)]
pub fn pack_weights_transposed(w: &Matrix, wt: &mut [f64]) {
    let in_dim = w.cols();
    let out_dim = w.rows();
    assert!(
        wt.len() >= packed_len(in_dim, out_dim),
        "packed buffer too short"
    );
    let wd = w.data();
    let mut off = 0;
    let mut j = 0;
    while j < out_dim {
        let width = J_TILE.min(out_dim - j);
        for k in 0..in_dim {
            for t in 0..J_TILE {
                wt[off] = if t < width {
                    wd[(j + t) * in_dim + k]
                } else {
                    0.0
                };
                off += 1;
            }
        }
        j += J_TILE;
    }
}

/// Fused `out = act(x · wᵀ + bias)` over packed weights
/// (see [`pack_weights_transposed`]).
///
/// Semantically identical to [`linear_forward_fused`] — every output
/// element accumulates in the same sequential k-order, so results stay
/// bit-identical to the reference path — but the inner loop walks
/// `out_dim`-contiguous packed weights, turning the 8-column tile into
/// vector mul/add lanes instead of eight scalar chains. Used by
/// [`Mlp::forward_into`] for multi-row batches, where the
/// `in_dim × out_dim` repack cost amortizes across rows.
///
/// Internal kernel of [`crate::Mlp::forward_into`]; call that instead.
///
/// # Panics
/// Panics when `x` is shorter than `rows × in_dim`, `wt` is shorter than
/// `in_dim × out_dim`, `bias` does not match `out_dim`, or `out` is
/// shorter than `rows × out_dim`.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn linear_forward_fused_packed(
    x: &[f64],
    rows: usize,
    wt: &[f64],
    in_dim: usize,
    out_dim: usize,
    bias: &[f64],
    act: Activation,
    out: &mut [f64],
) {
    assert!(x.len() >= rows * in_dim, "input slice too short");
    assert!(
        wt.len() >= packed_len(in_dim, out_dim),
        "packed weights too short"
    );
    assert_eq!(bias.len(), out_dim, "bias length mismatch");
    assert!(out.len() >= rows * out_dim, "output slice too short");

    // Column-tile-major, 4/2/1-row × J_TILE-column tiles; the accumulator
    // arrays become vector lanes. The tile is 8 wide when AVX registers
    // exist and 4 wide on the SSE2 baseline, where a 2×8 tile spills.
    // Keeping the column tile in the *outer* loop means each tile's
    // weight lines (one cache line per input index with an 8-wide tile)
    // are re-read from L1 by every row pair instead of re-streaming the
    // whole matrix once per pair — the difference between the proposal
    // batch widths (2–16 rows) scaling and not.
    //
    // Every tile accumulates at the full J_TILE width — the packed tail
    // tile is zero-padded, and only the epilogue narrows to `$real`
    // live columns. A width-specialized narrow tile looks cheaper but
    // LLVM's SLP vectorizer rejects it and emits scalar chains, which
    // is ~3x slower on narrow output layers than burning a few padded
    // lanes. Macro, not closure: each expansion keeps the constant
    // J_TILE accumulate shape while getting its own epilogue width.
    macro_rules! col_tile {
        ($j:expr, $off:expr, $real:expr) => {{
            let block = &wt[$off..$off + in_dim * J_TILE];
            let mut i = 0;
            // 4-row tiles first: eight vector accumulator chains, enough
            // to saturate both FP add ports (a 2-row tile's four chains
            // are add-latency-bound). The weight block is read strictly
            // sequentially and stays L1-resident across row tiles.
            while i + 4 <= rows {
                let x0 = &x[i * in_dim..][..in_dim];
                let x1 = &x[(i + 1) * in_dim..][..in_dim];
                let x2 = &x[(i + 2) * in_dim..][..in_dim];
                let x3 = &x[(i + 3) * in_dim..][..in_dim];
                let mut a0 = [0.0f64; J_TILE];
                let mut a1 = [0.0f64; J_TILE];
                let mut a2 = [0.0f64; J_TILE];
                let mut a3 = [0.0f64; J_TILE];
                for (((&v0, &v1), (&v2, &v3)), wr) in x0
                    .iter()
                    .zip(x1)
                    .zip(x2.iter().zip(x3))
                    .zip(block.chunks_exact(J_TILE))
                {
                    for t in 0..J_TILE {
                        a0[t] += v0 * wr[t];
                        a1[t] += v1 * wr[t];
                        a2[t] += v2 * wr[t];
                        a3[t] += v3 * wr[t];
                    }
                }
                for t in 0..$real {
                    out[i * out_dim + $j + t] = act.apply(a0[t] + bias[$j + t]);
                    out[(i + 1) * out_dim + $j + t] = act.apply(a1[t] + bias[$j + t]);
                    out[(i + 2) * out_dim + $j + t] = act.apply(a2[t] + bias[$j + t]);
                    out[(i + 3) * out_dim + $j + t] = act.apply(a3[t] + bias[$j + t]);
                }
                i += 4;
            }
            while i + 2 <= rows {
                let x0 = &x[i * in_dim..][..in_dim];
                let x1 = &x[(i + 1) * in_dim..][..in_dim];
                let mut a0 = [0.0f64; J_TILE];
                let mut a1 = [0.0f64; J_TILE];
                for ((&v0, &v1), wr) in x0.iter().zip(x1).zip(block.chunks_exact(J_TILE)) {
                    for t in 0..J_TILE {
                        a0[t] += v0 * wr[t];
                        a1[t] += v1 * wr[t];
                    }
                }
                for t in 0..$real {
                    out[i * out_dim + $j + t] = act.apply(a0[t] + bias[$j + t]);
                    out[(i + 1) * out_dim + $j + t] = act.apply(a1[t] + bias[$j + t]);
                }
                i += 2;
            }
            if i < rows {
                let x0 = &x[i * in_dim..][..in_dim];
                let mut a0 = [0.0f64; J_TILE];
                for (&v0, wr) in x0.iter().zip(block.chunks_exact(J_TILE)) {
                    for t in 0..J_TILE {
                        a0[t] += v0 * wr[t];
                    }
                }
                for t in 0..$real {
                    out[i * out_dim + $j + t] = act.apply(a0[t] + bias[$j + t]);
                }
            }
        }};
    }

    let mut off = 0;
    let mut j = 0;
    while j + J_TILE <= out_dim {
        col_tile!(j, off, J_TILE);
        off += in_dim * J_TILE;
        j += J_TILE;
    }
    if j < out_dim {
        let real = out_dim - j;
        col_tile!(j, off, real);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Reference: naive matmul_t + broadcast bias + activation map.
    fn reference(x: &Matrix, w: &Matrix, bias: &[f64], act: Activation) -> Matrix {
        let mut y = x.matmul_transpose_b(w);
        y.add_row_broadcast(bias);
        act.forward(&y)
    }

    #[test]
    fn fused_kernel_is_bit_identical_to_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        use rand::RngExt;
        for &(rows, in_dim, out_dim) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 5),
            (2, 8, 4),
            (3, 31, 64),
            (5, 64, 64),
            (8, 13, 3),
        ] {
            for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
                let x = Matrix::from_vec(
                    rows,
                    in_dim,
                    (0..rows * in_dim)
                        .map(|_| rng.random::<f64>() * 4.0 - 2.0)
                        .collect(),
                );
                let w = Matrix::from_vec(
                    out_dim,
                    in_dim,
                    (0..out_dim * in_dim)
                        .map(|_| rng.random::<f64>() * 2.0 - 1.0)
                        .collect(),
                );
                let bias: Vec<f64> = (0..out_dim).map(|_| rng.random::<f64>() - 0.5).collect();
                let want = reference(&x, &w, &bias, act);
                let mut got = vec![f64::NAN; rows * out_dim];
                linear_forward_fused(x.data(), rows, &w, &bias, act, &mut got);
                for (g, e) in got.iter().zip(want.data()) {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "{rows}x{in_dim}x{out_dim} {act:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        use rand::RngExt;
        for &(rows, in_dim, out_dim) in &[
            (2usize, 1usize, 1usize),
            (2, 7, 5),
            (2, 8, 4),
            (3, 31, 64),
            (5, 64, 64),
            (8, 13, 3),
            (4, 15, 12),
            (7, 9, 21),
        ] {
            for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
                let x = Matrix::from_vec(
                    rows,
                    in_dim,
                    (0..rows * in_dim)
                        .map(|_| rng.random::<f64>() * 4.0 - 2.0)
                        .collect(),
                );
                let w = Matrix::from_vec(
                    out_dim,
                    in_dim,
                    (0..out_dim * in_dim)
                        .map(|_| rng.random::<f64>() * 2.0 - 1.0)
                        .collect(),
                );
                let bias: Vec<f64> = (0..out_dim).map(|_| rng.random::<f64>() - 0.5).collect();
                let want = reference(&x, &w, &bias, act);
                let mut wt = vec![f64::NAN; packed_len(in_dim, out_dim)];
                pack_weights_transposed(&w, &mut wt);
                let mut got = vec![f64::NAN; rows * out_dim];
                linear_forward_fused_packed(
                    x.data(),
                    rows,
                    &wt,
                    in_dim,
                    out_dim,
                    &bias,
                    act,
                    &mut got,
                );
                for (g, e) in got.iter().zip(want.data()) {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "{rows}x{in_dim}x{out_dim} {act:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reserve_sizes_for_widest_layer() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(
            &[3, 17, 5],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let s = ForwardScratch::for_mlp(&mlp, 4);
        assert!(s.buf_a.len() >= 4 * 17);
        assert!(s.buf_b.len() >= 4 * 17);
    }
}
