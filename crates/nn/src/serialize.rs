//! Versioned text serialization of MLPs.
//!
//! DeepThermo redistributes retrained proposal networks to every walker
//! (in the paper: an allreduce/broadcast of parameters between GPUs); the
//! simulated cluster ships them as strings, so the format must be exact.
//! `f64` values are written as hex-encoded IEEE-754 bits — lossless and
//! locale-independent.

use std::fmt;

use crate::layer::{Activation, Linear};
use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Format version written at the head of every serialized model.
const FORMAT_VERSION: u32 = 1;

/// Errors from [`load_mlp`] and the file round-trip helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnFormatError {
    /// The header line is missing or malformed.
    BadHeader,
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// A structural line was malformed.
    Malformed(String),
    /// The data ended early.
    Truncated,
    /// Reading or writing the model file failed. The message carries the
    /// rendered `std::io::Error` (stored as text so this enum stays
    /// `Clone + PartialEq`).
    Io(String),
}

impl fmt::Display for NnFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnFormatError::BadHeader => write!(f, "bad model header"),
            NnFormatError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            NnFormatError::Malformed(what) => write!(f, "malformed model data: {what}"),
            NnFormatError::Truncated => write!(f, "model data truncated"),
            NnFormatError::Io(what) => write!(f, "model file I/O failed: {what}"),
        }
    }
}

impl std::error::Error for NnFormatError {}

impl From<std::io::Error> for NnFormatError {
    fn from(e: std::io::Error) -> Self {
        NnFormatError::Io(e.to_string())
    }
}

/// Serialize an MLP to the versioned text format.
pub fn save_mlp(mlp: &Mlp) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "dtnn v{FORMAT_VERSION}").expect("string write");
    writeln!(
        out,
        "acts {} {}",
        mlp.hidden_activation().tag(),
        mlp.output_activation().tag()
    )
    .expect("string write");
    writeln!(out, "layers {}", mlp.layers().len()).expect("string write");
    for l in mlp.layers() {
        writeln!(out, "layer {} {}", l.out_dim(), l.in_dim()).expect("string write");
        for v in l.w.data() {
            writeln!(out, "{:016x}", v.to_bits()).expect("string write");
        }
        for v in &l.b {
            writeln!(out, "{:016x}", v.to_bits()).expect("string write");
        }
    }
    out
}

/// Deserialize an MLP from [`save_mlp`] output.
///
/// # Errors
/// Returns a [`NnFormatError`] on any structural or encoding problem.
pub fn load_mlp(text: &str) -> Result<Mlp, NnFormatError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(NnFormatError::BadHeader)?;
    let version: u32 = header
        .strip_prefix("dtnn v")
        .and_then(|v| v.parse().ok())
        .ok_or(NnFormatError::BadHeader)?;
    if version != FORMAT_VERSION {
        return Err(NnFormatError::UnsupportedVersion(version));
    }

    let acts_line = lines.next().ok_or(NnFormatError::Truncated)?;
    let mut acts = acts_line
        .strip_prefix("acts ")
        .ok_or_else(|| NnFormatError::Malformed("acts line".into()))?
        .split_whitespace();
    let hidden = acts
        .next()
        .and_then(Activation::from_tag)
        .ok_or_else(|| NnFormatError::Malformed("hidden activation".into()))?;
    let output = acts
        .next()
        .and_then(Activation::from_tag)
        .ok_or_else(|| NnFormatError::Malformed("output activation".into()))?;

    let count_line = lines.next().ok_or(NnFormatError::Truncated)?;
    let num_layers: usize = count_line
        .strip_prefix("layers ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| NnFormatError::Malformed("layers line".into()))?;
    if num_layers == 0 {
        return Err(NnFormatError::Malformed("zero layers".into()));
    }

    let read_f64 = |lines: &mut std::str::Lines<'_>| -> Result<f64, NnFormatError> {
        let line = lines.next().ok_or(NnFormatError::Truncated)?;
        let bits = u64::from_str_radix(line.trim(), 16)
            .map_err(|_| NnFormatError::Malformed(format!("bad f64 bits: {line}")))?;
        Ok(f64::from_bits(bits))
    };

    let mut layers = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let shape_line = lines.next().ok_or(NnFormatError::Truncated)?;
        let mut parts = shape_line
            .strip_prefix("layer ")
            .ok_or_else(|| NnFormatError::Malformed("layer line".into()))?
            .split_whitespace();
        let out_dim: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| NnFormatError::Malformed("layer out_dim".into()))?;
        let in_dim: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| NnFormatError::Malformed("layer in_dim".into()))?;
        let mut w = Vec::with_capacity(out_dim * in_dim);
        for _ in 0..out_dim * in_dim {
            w.push(read_f64(&mut lines)?);
        }
        let mut b = Vec::with_capacity(out_dim);
        for _ in 0..out_dim {
            b.push(read_f64(&mut lines)?);
        }
        layers.push(Linear::from_params(Matrix::from_vec(out_dim, in_dim, w), b));
    }

    Ok(Mlp::from_parts(layers, hidden, output))
}

/// Write an MLP to `path` in the versioned text format.
///
/// # Errors
/// Returns [`NnFormatError::Io`] if the file cannot be written.
pub fn save_mlp_to_file(mlp: &Mlp, path: impl AsRef<std::path::Path>) -> Result<(), NnFormatError> {
    std::fs::write(path, save_mlp(mlp))?;
    Ok(())
}

/// Read an MLP previously written by [`save_mlp_to_file`].
///
/// # Errors
/// Returns [`NnFormatError::Io`] if the file cannot be read, or any other
/// [`NnFormatError`] if its contents are not a valid model.
pub fn load_mlp_from_file(path: impl AsRef<std::path::Path>) -> Result<Mlp, NnFormatError> {
    load_mlp(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_mlp() -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        Mlp::new(&[4, 7, 3], Activation::Relu, Activation::Identity, &mut rng)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let mlp = sample_mlp();
        let text = save_mlp(&mlp);
        let back = load_mlp(&text).unwrap();
        assert_eq!(back.dims(), mlp.dims());
        assert_eq!(back.hidden_activation(), mlp.hidden_activation());
        for (a, b) in mlp.layers().iter().zip(back.layers()) {
            assert_eq!(a.w.data(), b.w.data());
            assert_eq!(a.b, b.b);
        }
        // Outputs must be bit-identical.
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 7.0]]);
        assert_eq!(mlp.forward(&x).data(), back.forward(&x).data());
    }

    #[test]
    fn special_values_survive() {
        let mut mlp = sample_mlp();
        mlp.layers_mut()[0].w[(0, 0)] = f64::MIN_POSITIVE;
        mlp.layers_mut()[0].w[(0, 1)] = -0.0;
        mlp.layers_mut()[0].b[0] = 1e-300;
        let back = load_mlp(&save_mlp(&mlp)).unwrap();
        assert_eq!(back.layers()[0].w[(0, 0)], f64::MIN_POSITIVE);
        assert!(back.layers()[0].w[(0, 1)].is_sign_negative());
        assert_eq!(back.layers()[0].b[0], 1e-300);
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(load_mlp("garbage").unwrap_err(), NnFormatError::BadHeader);
        assert_eq!(
            load_mlp("dtnn v9\nacts relu id\nlayers 1\n").unwrap_err(),
            NnFormatError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn rejects_truncation() {
        let text = save_mlp(&sample_mlp());
        let cut: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            load_mlp(&cut),
            Err(NnFormatError::Truncated) | Err(NnFormatError::Malformed(_))
        ));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let mlp = sample_mlp();
        let dir = std::env::temp_dir().join("dtnn-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dtnn");
        save_mlp_to_file(&mlp, &path).unwrap();
        let back = load_mlp_from_file(&path).unwrap();
        assert_eq!(back.dims(), mlp.dims());
        let missing = dir.join("does-not-exist.dtnn");
        assert!(matches!(
            load_mlp_from_file(&missing),
            Err(NnFormatError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_bits() {
        let mut text = save_mlp(&sample_mlp());
        text = text.replacen(text.lines().nth(4).unwrap(), "zzzznotvalidhex!", 1);
        assert!(matches!(load_mlp(&text), Err(NnFormatError::Malformed(_))));
    }
}
