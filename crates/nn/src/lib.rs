//! # dt-nn
//!
//! A small, dependency-free dense neural-network library with explicit
//! backpropagation, written for DeepThermo's two models:
//!
//! * the **surrogate energy model** (regression MLP over pair-correlation
//!   descriptors), and
//! * the **deep proposal network** (classification MLP over local-context
//!   descriptors with composition-constrained softmax heads).
//!
//! The paper trains its networks with PyTorch on V100/MI250X GPUs; here the
//! models are small enough (10³–10⁵ parameters) that a straightforward
//! `f64` CPU implementation trains in milliseconds while keeping the exact
//! semantics the samplers need — in particular *numerically exact
//! log-probabilities* for Metropolis–Hastings corrections, which is why the
//! whole crate works in `f64`.
//!
//! Inference has **one surface**: the batch-first, steady-state
//! allocation-free [`Mlp::forward_into`] (fed from a [`ForwardScratch`];
//! see the [`infer`] module), which produces bit-identical results per
//! row for any batch size `rows ≥ 1`. [`Mlp::forward`] is its allocating
//! reference twin, kept for training diagnostics and tests; the fused
//! row kernels underneath `forward_into` are implementation details and
//! no longer part of the public API.
//!
//! ```
//! use dt_nn::{Activation, Adam, Matrix, Mlp};
//! use rand::SeedableRng;
//!
//! // Learn y = x0 * x1 on random data.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, Activation::Identity, &mut rng);
//! let mut adam = Adam::with_lr(1e-2);
//! let x = Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 1.0], &[-1.0, 0.25]]);
//! let y = Matrix::from_rows(&[&[-0.25], &[1.0], &[-0.25]]);
//! let mut last = f64::INFINITY;
//! for _ in 0..200 {
//!     let out = mlp.forward_train(&x);
//!     let (loss, grad) = dt_nn::mse_loss(&out, &y);
//!     mlp.zero_grad();
//!     mlp.backward(&grad);
//!     adam.step(&mut mlp);
//!     last = loss;
//! }
//! assert!(last < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod infer;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod serialize;

pub use infer::ForwardScratch;
pub use layer::{Activation, Linear};
pub use loss::{
    log_softmax_masked, log_softmax_masked_into, mse_loss, sample_categorical,
    softmax_cross_entropy, softmax_cross_entropy_masked, softmax_cross_entropy_masked_flat,
};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use optim::{Adam, Sgd};
pub use serialize::{load_mlp, load_mlp_from_file, save_mlp, save_mlp_to_file, NnFormatError};
