//! Row-major `f64` matrices sized for small-model training.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
///
/// The layout is `data[r * cols + c]`. Matrix products use an `ikj` loop
/// order so the inner loop streams both operands — ample for the ≤ few-
/// hundred-wide layers DeepThermo trains.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A single-row matrix view of a feature vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (standard matrix product).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            // No zero-skip fast path here: `0.0 * NaN` must stay NaN so a
            // poisoned operand surfaces instead of silently vanishing.
            for (k, &aik) in a_row.iter().enumerate() {
                let b_row = other.row(k);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — used for the forward pass `X · Wᵀ` where weights
    /// are stored `out × in`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` — used for weight gradients `dYᵀ · X`.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector to every row (broadcast), in place.
    pub fn add_row_broadcast(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(v) {
                *a += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Map every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        // a · bᵀ
        let c = a.matmul_transpose_b(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 4.0);
        assert_eq!(c[(0, 1)], 4.0);
        assert_eq!(c[(1, 0)], 2.0);
        assert_eq!(c[(1, 1)], -1.0);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[-1.0]]);
        // aᵀ · b : 2x1
        let c = a.transpose_a_matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], -4.0);
        assert_eq!(c[(1, 0)], -4.0);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.column_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn map_and_scale() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]);
        let sq = m.map(|v| v * v);
        assert_eq!(sq.data(), &[1.0, 4.0]);
        let mut s = m.clone();
        s.scale(-3.0);
        assert_eq!(s.data(), &[-3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_coefficients() {
        // 0.0 · NaN is NaN; a poisoned weight must not be masked by a
        // zero activation.
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f64::NAN, 0.0], &[1.0, 1.0]]);
        let c = a.matmul(&b);
        assert!(c[(0, 0)].is_nan(), "NaN must propagate, got {}", c[(0, 0)]);
        assert_eq!(c[(0, 1)], 1.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
