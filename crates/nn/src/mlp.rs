//! Multi-layer perceptrons.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::infer::{
    linear_forward_fused, linear_forward_fused_packed, pack_weights_transposed, packed_len,
    ForwardScratch,
};
use crate::layer::{Activation, Linear};
use crate::matrix::Matrix;

/// Process-global weight-version source: every freshly built or mutably
/// re-exposed network takes a new, never-reused version, so two networks
/// share a version only when one is an unmutated clone of the other — in
/// which case their weights really are identical and a
/// [`ForwardScratch`]'s cached repack is valid for both.
static WEIGHTS_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_weights_version() -> u64 {
    WEIGHTS_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A feed-forward network of [`Linear`] layers with a shared hidden
/// activation and a separate output activation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
    /// Pre-activation caches from the last `forward_train`.
    preacts: Vec<Matrix>,
    /// Weight version for [`ForwardScratch`] repack caching; bumped on
    /// every mutable layer access.
    version: u64,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `&[in, h1, h2, out]`.
    ///
    /// # Panics
    /// Panics when fewer than two dims are given.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_act,
            out_act,
            preacts: Vec::new(),
            version: next_weights_version(),
        }
    }

    /// Rebuild from parts (deserialization).
    pub fn from_parts(layers: Vec<Linear>, hidden_act: Activation, out_act: Activation) -> Self {
        assert!(!layers.is_empty());
        Mlp {
            layers,
            hidden_act,
            out_act,
            preacts: Vec::new(),
            version: next_weights_version(),
        }
    }

    /// Layer widths `[in, ..., out]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.layers[0].in_dim()];
        dims.extend(self.layers.iter().map(Linear::out_dim));
        dims
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Hidden activation.
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_act
    }

    /// Output activation.
    pub fn output_activation(&self) -> Activation {
        self.out_act
    }

    /// The layers (for serialization and optimizer access).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable layer access (for optimizers).
    ///
    /// Conservatively assumes the caller changes the weights: any cached
    /// weight repack in a [`ForwardScratch`] is invalidated.
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        self.version = next_weights_version();
        &mut self.layers
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Allocating reference forward pass (`&self`, no caches) — safe to
    /// share across threads.
    ///
    /// Kept for training diagnostics and tests; hot paths should use the
    /// batch-first [`Mlp::forward_into`], which is bit-identical per row
    /// and allocation-free once warmed.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&h);
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            h = act.forward(&pre);
        }
        h
    }

    /// **The** inference surface: a batch-first forward pass into
    /// reusable scratch buffers.
    ///
    /// `x` holds `rows ≥ 1` row-major feature rows of width
    /// [`Mlp::in_dim`]; the returned slice holds `rows` rows of width
    /// [`Mlp::out_dim`], borrowed from `scratch`. Each output row is
    /// bit-identical to [`Mlp::forward`] on that row alone, *regardless
    /// of the batch size* — every fused kernel underneath accumulates in
    /// the same sequential k-order — which is what lets callers batch
    /// work across walkers without perturbing any Markov chain. A scratch
    /// warmed by [`ForwardScratch::reserve`] — or by a first call at the
    /// largest batch size — makes this perform **zero heap allocations**.
    ///
    /// # Panics
    /// Panics when `x` is shorter than `rows · in_dim`.
    pub fn forward_into<'a>(
        &self,
        x: &[f64],
        rows: usize,
        scratch: &'a mut ForwardScratch,
    ) -> &'a [f64] {
        assert!(x.len() >= rows * self.in_dim(), "input rows too short");
        scratch.reserve(self, rows);
        let ForwardScratch {
            buf_a,
            buf_b,
            packed_w,
            packed_version,
        } = scratch;
        let packed = rows >= 2 && cfg!(target_feature = "avx");
        if packed && *packed_version != self.version {
            // Multi-row batch: repack every layer's weights so the column
            // loop vectorizes. The pack is cached across forwards and
            // invalidated only when the weights change, so its cost
            // amortizes over entire sampling runs, not just one batch.
            // Bit-identical to the scalar tile. Without AVX the vector
            // lanes are too narrow to beat the scalar tile's eight
            // accumulator chains, so the packed path is compiled out on
            // baseline targets.
            let mut off = 0;
            for layer in &self.layers {
                let wn = packed_len(layer.w.cols(), layer.w.rows());
                pack_weights_transposed(&layer.w, &mut packed_w[off..off + wn]);
                off += wn;
            }
            *packed_version = self.version;
        }
        let last = self.layers.len() - 1;
        let mut off = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            // Ping-pong: x → a → b → a → …
            let (src, dst): (&[f64], &mut [f64]) = if i == 0 {
                (x, buf_a.as_mut_slice())
            } else if i % 2 == 1 {
                (buf_a.as_slice(), buf_b.as_mut_slice())
            } else {
                (buf_b.as_slice(), buf_a.as_mut_slice())
            };
            if packed {
                let wn = packed_len(layer.w.cols(), layer.w.rows());
                linear_forward_fused_packed(
                    src,
                    rows,
                    &packed_w[off..off + wn],
                    layer.w.cols(),
                    layer.w.rows(),
                    &layer.b,
                    act,
                    dst,
                );
                off += wn;
            } else {
                linear_forward_fused(src, rows, &layer.w, &layer.b, act, dst);
            }
        }
        let out = rows * self.out_dim();
        if last % 2 == 0 {
            &buf_a[..out]
        } else {
            &buf_b[..out]
        }
    }

    /// Training forward pass: caches pre-activations for [`Mlp::backward`].
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        self.preacts.clear();
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            let pre = self.layers[i].forward_train(&h);
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            h = act.forward(&pre);
            self.preacts.push(pre);
        }
        h
    }

    /// Backward pass from an output gradient; accumulates layer gradients.
    ///
    /// # Panics
    /// Panics if `forward_train` was not called first.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(
            self.preacts.len(),
            self.layers.len(),
            "backward called before forward_train"
        );
        let last = self.layers.len() - 1;
        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            let g_pre = act.backward(&self.preacts[i], &grad);
            grad = self.layers[i].backward(&g_pre);
        }
        grad
    }

    /// Zero every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Flatten all parameters (weights then bias, layer by layer) into one
    /// vector — the payload of the simulated weight allreduce.
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.w.data());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Load parameters from a [`Mlp::flatten_params`] vector.
    ///
    /// # Panics
    /// Panics when the length does not match `num_params`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        self.version = next_weights_version();
        let mut offset = 0;
        for l in &mut self.layers {
            let wlen = l.w.data().len();
            l.w.data_mut()
                .copy_from_slice(&params[offset..offset + wlen]);
            offset += wlen;
            let blen = l.b.len();
            l.b.copy_from_slice(&params[offset..offset + blen]);
            offset += blen;
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f64 {
        let mut acc = 0.0;
        for l in &self.layers {
            acc += l.gw.data().iter().map(|&v| v * v).sum::<f64>();
            acc += l.gb.iter().map(|&v| v * v).sum::<f64>();
        }
        acc.sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for l in &mut self.layers {
                l.gw.scale(s);
                for g in &mut l.gb {
                    *g *= s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use crate::optim::Sgd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dims_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(&[5, 8, 3], Activation::Relu, Activation::Identity, &mut rng);
        assert_eq!(mlp.dims(), vec![5, 8, 3]);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.num_params(), 5 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn forward_equals_forward_train() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, -0.3], &[1.0, -1.0, 0.5]]);
        let a = mlp.forward(&x);
        let b = mlp.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.7], &[0.5, 0.1]]);
        let y = Matrix::from_rows(&[&[1.0], &[-1.0]]);

        let out = mlp.forward_train(&x);
        let (_, grad) = mse_loss(&out, &y);
        mlp.zero_grad();
        mlp.backward(&grad);

        let eps = 1e-6;
        let loss_of = |mlp: &Mlp| -> f64 {
            let out = mlp.forward(&x);
            mse_loss(&out, &y).0
        };
        // Spot-check several parameters in every layer.
        for li in 0..mlp.layers().len() {
            for &(r, c) in &[(0usize, 0usize), (0, 1)] {
                if r >= mlp.layers()[li].out_dim() || c >= mlp.layers()[li].in_dim() {
                    continue;
                }
                let orig = mlp.layers()[li].w[(r, c)];
                mlp.layers_mut()[li].w[(r, c)] = orig + eps;
                let up = loss_of(&mlp);
                mlp.layers_mut()[li].w[(r, c)] = orig - eps;
                let dn = loss_of(&mlp);
                mlp.layers_mut()[li].w[(r, c)] = orig;
                let fd = (up - dn) / (2.0 * eps);
                let got = mlp.layers()[li].gw[(r, c)];
                assert!(
                    (got - fd).abs() < 1e-5,
                    "layer {li} w({r},{c}): fd {fd} vs {got}"
                );
            }
        }
    }

    #[test]
    fn sgd_reduces_loss_on_regression() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 8.0 - 1.0).collect();
        let x = Matrix::from_vec(16, 1, xs.clone());
        let y = Matrix::from_vec(16, 1, xs.iter().map(|&v| v * v).collect());
        let mut sgd = Sgd::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..1000 {
            let out = mlp.forward_train(&x);
            let (loss, grad) = mse_loss(&out, &y);
            mlp.zero_grad();
            mlp.backward(&grad);
            sgd.step(&mut mlp);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.2, "{last} vs {first:?}");
    }

    #[test]
    fn flatten_set_params_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let a = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Identity, &mut rng);
        let mut b = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Identity, &mut rng);
        let params = a.flatten_params();
        assert_eq!(params.len(), a.num_params());
        b.set_params(&params);
        let x = Matrix::from_rows(&[&[0.4, -1.0, 2.0]]);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut a = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, &mut rng);
        a.set_params(&[0.0; 3]);
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut mlp = Mlp::new(&[2, 4, 2], Activation::Relu, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[10.0, -10.0]]);
        let out = mlp.forward_train(&x);
        let big = out.map(|_| 100.0);
        mlp.zero_grad();
        mlp.backward(&big);
        mlp.clip_grad_norm(1.0);
        assert!(mlp.grad_norm() <= 1.0 + 1e-9);
    }
}
