//! # dt-metropolis
//!
//! Canonical-ensemble baselines: single-temperature Metropolis sampling
//! and parallel tempering (replica exchange over a temperature ladder).
//!
//! DeepThermo's claims are validated against these classical methods: a
//! canonical average computed by reweighting the Wang–Landau DOS must
//! agree with a direct Metropolis estimate at the same temperature, and
//! the deep proposal must leave these ensembles invariant too (it carries
//! its own Metropolis–Hastings correction).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimators;
pub mod multihistogram;
pub mod sampler;
pub mod tempering;

pub use estimators::{blocking_error, integrated_autocorrelation_time};
pub use multihistogram::{wham, HistogramRun, WhamResult};
pub use sampler::{MetropolisSampler, RunStats};
pub use tempering::{ParallelTempering, TemperingReport};
