//! Single-temperature Metropolis–Hastings sampling.

use dt_hamiltonian::{DeltaWorkspace, EnergyModel, KB_EV_PER_K};
use dt_lattice::{Configuration, NeighborTable};
use dt_proposal::{apply_move, move_delta, MoveStats, ProposalContext, ProposalKernel};
use dt_telemetry::{Phase, Telemetry};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Summary statistics of a sampling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Mean energy ⟨E⟩ (eV).
    pub mean_energy: f64,
    /// Energy variance ⟨E²⟩ − ⟨E⟩² (eV²).
    pub var_energy: f64,
    /// Heat capacity `C_v/k_B = β² Var(E)`.
    pub cv: f64,
    /// Number of measurements.
    pub samples: usize,
}

/// A canonical-ensemble Metropolis–Hastings sampler at fixed temperature.
///
/// Works with any [`ProposalKernel`]; asymmetric kernels are corrected via
/// their reported log proposal ratio:
/// `A = min(1, exp(−βΔE + ln q_rev − ln q_fwd))`.
pub struct MetropolisSampler {
    config: Configuration,
    energy: f64,
    beta: f64,
    temperature: f64,
    kernel: Box<dyn ProposalKernel>,
    workspace: DeltaWorkspace,
    stats: MoveStats,
    rng: ChaCha8Rng,
    total_moves: u64,
    tel: Telemetry,
}

impl MetropolisSampler {
    /// Build a sampler at `temperature` (K).
    pub fn new<M: EnergyModel>(
        temperature: f64,
        config: Configuration,
        model: &M,
        neighbors: &NeighborTable,
        kernel: Box<dyn ProposalKernel>,
        seed: u64,
    ) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        let energy = model.total_energy(&config, neighbors);
        let n = config.num_sites();
        MetropolisSampler {
            config,
            energy,
            beta: 1.0 / (KB_EV_PER_K * temperature),
            temperature,
            kernel,
            workspace: DeltaWorkspace::new(n),
            stats: MoveStats::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            total_moves: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; subsequent sweeps record
    /// [`Phase::MoveBatch`] and [`Phase::EnergyEval`] spans into it.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// One proposal; returns whether it was accepted.
    pub fn step<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
    ) -> bool {
        self.total_moves += 1;
        let proposal = self.kernel.propose(&self.config, ctx, &mut self.rng);
        let delta = {
            let _span = self.tel.span(Phase::EnergyEval);
            move_delta(
                model,
                &self.config,
                neighbors,
                &proposal.mv,
                &mut self.workspace,
            )
        };
        let ln_a = -self.beta * delta + proposal.log_q_ratio();
        let accepted = ln_a >= 0.0 || self.rng.random::<f64>() < ln_a.exp();
        if accepted {
            apply_move(&mut self.config, &proposal.mv);
            self.energy += delta;
        }
        let name = self.kernel.last_kernel_name().to_string();
        self.stats.record(&name, accepted);
        accepted
    }

    /// One sweep = `num_sites` proposals.
    pub fn sweep<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
    ) {
        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::MoveBatch);
        for _ in 0..self.config.num_sites() {
            self.step(model, neighbors, ctx);
        }
    }

    /// Equilibrate for `sweeps`, then measure every `measure_every` sweeps
    /// for `measure_sweeps`, calling `observe(config, energy)` at each
    /// measurement. Returns run statistics of the energy series.
    #[allow(clippy::too_many_arguments)]
    pub fn run<M: EnergyModel, F: FnMut(&Configuration, f64)>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
        equilibration_sweeps: usize,
        measure_sweeps: usize,
        measure_every: usize,
        mut observe: F,
    ) -> RunStats {
        for _ in 0..equilibration_sweeps {
            self.sweep(model, neighbors, ctx);
        }
        // Guard against accumulated floating-point drift.
        self.energy = model.total_energy(&self.config, neighbors);

        let every = measure_every.max(1);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut n = 0usize;
        for s in 0..measure_sweeps {
            self.sweep(model, neighbors, ctx);
            if s % every == 0 {
                observe(&self.config, self.energy);
                sum += self.energy;
                sum2 += self.energy * self.energy;
                n += 1;
            }
        }
        let mean = sum / n as f64;
        let var = (sum2 / n as f64 - mean * mean).max(0.0);
        RunStats {
            mean_energy: mean,
            var_energy: var,
            cv: self.beta * self.beta * var,
            samples: n,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Current energy (eV).
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Sampling temperature (K).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Inverse temperature (1/eV).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Acceptance statistics.
    pub fn stats(&self) -> &MoveStats {
        &self.stats
    }

    /// Total proposals attempted.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Exchange configurations with another sampler (used by parallel
    /// tempering once an exchange is accepted).
    pub fn swap_state_with(&mut self, other: &mut MetropolisSampler) {
        std::mem::swap(&mut self.config, &mut other.config);
        std::mem::swap(&mut self.energy, &mut other.energy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::{exact::ExactDos, PairHamiltonian};
    use dt_lattice::{Composition, Structure, Supercell};
    use dt_proposal::LocalSwap;

    fn system() -> (Supercell, NeighborTable, Composition, PairHamiltonian) {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        (cell, nt, comp, h)
    }

    #[test]
    fn mean_energy_matches_exact_canonical_average() {
        let (_, nt, comp, h) = system();
        let exact = ExactDos::enumerate(&h, &nt, &comp);
        let t = 800.0;
        let beta = 1.0 / (KB_EV_PER_K * t);
        let exact_u = exact.mean_energy(beta);

        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = Configuration::random(&comp, &mut rng);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut sampler = MetropolisSampler::new(t, config, &h, &nt, Box::new(LocalSwap::new()), 1);
        let stats = sampler.run(&h, &nt, &ctx, 200, 4000, 2, |_, _| {});
        assert!(
            (stats.mean_energy - exact_u).abs() < 0.01,
            "MC {} vs exact {exact_u}",
            stats.mean_energy
        );
        assert!(stats.cv >= 0.0);
    }

    #[test]
    fn low_temperature_finds_ordered_state() {
        let (_, nt, comp, h) = system();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = Configuration::random(&comp, &mut rng);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut sampler =
            MetropolisSampler::new(50.0, config, &h, &nt, Box::new(LocalSwap::new()), 2);
        let stats = sampler.run(&h, &nt, &ctx, 500, 500, 5, |_, _| {});
        // Ground state energy is −0.64; at 50 K the system must be frozen
        // at or very near it.
        assert!(
            stats.mean_energy < -0.6,
            "mean energy {}",
            stats.mean_energy
        );
    }

    #[test]
    fn energy_bookkeeping_is_exact() {
        let (_, nt, comp, h) = system();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = Configuration::random(&comp, &mut rng);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut sampler =
            MetropolisSampler::new(1000.0, config, &h, &nt, Box::new(LocalSwap::new()), 7);
        for _ in 0..50 {
            sampler.sweep(&h, &nt, &ctx);
        }
        assert!((sampler.energy() - h.total_energy(sampler.config(), &nt)).abs() < 1e-9);
    }

    #[test]
    fn acceptance_decreases_with_cooling() {
        let (_, nt, comp, h) = system();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rates = Vec::new();
        for (i, t) in [5000.0, 500.0, 100.0].into_iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(10 + i as u64);
            let config = Configuration::random(&comp, &mut rng);
            let mut s = MetropolisSampler::new(t, config, &h, &nt, Box::new(LocalSwap::new()), 20);
            let _ = s.run(&h, &nt, &ctx, 100, 300, 1, |_, _| {});
            rates.push(s.stats().acceptance("local-swap").unwrap());
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
    }

    #[test]
    fn telemetry_counts_sweeps_and_evals() {
        let (_, nt, comp, h) = system();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = Configuration::random(&comp, &mut rng);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut s = MetropolisSampler::new(500.0, config, &h, &nt, Box::new(LocalSwap::new()), 9);
        let tel = Telemetry::enabled();
        s.set_telemetry(tel.clone());
        s.sweep(&h, &nt, &ctx);
        let snap = tel.snapshot(0);
        assert_eq!(snap.phase_stat(Phase::MoveBatch).unwrap().count, 1);
        assert_eq!(
            snap.phase_stat(Phase::EnergyEval).unwrap().count,
            s.config().num_sites() as u64
        );
    }

    #[test]
    fn swap_state_exchanges_configs() {
        let (_, nt, comp, h) = system();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c1 = Configuration::random(&comp, &mut rng);
        let c2 = Configuration::random(&comp, &mut rng);
        let mut s1 =
            MetropolisSampler::new(100.0, c1.clone(), &h, &nt, Box::new(LocalSwap::new()), 1);
        let mut s2 =
            MetropolisSampler::new(200.0, c2.clone(), &h, &nt, Box::new(LocalSwap::new()), 2);
        s1.swap_state_with(&mut s2);
        assert_eq!(s1.config(), &c2);
        assert_eq!(s2.config(), &c1);
        // Temperatures stay put (configuration exchange convention).
        assert_eq!(s1.temperature(), 100.0);
    }
}
