//! Multiple-histogram reweighting (Ferrenberg–Swendsen / WHAM).
//!
//! Combines energy histograms collected at several temperatures into one
//! density-of-states estimate — the classical (non-flat-histogram) route
//! to g(E) that DeepThermo's Wang–Landau approach is compared against.
//! Everything runs in log space, so the same machinery handles DOS ranges
//! of thousands of ln-units.

/// One canonical run's contribution: inverse temperature and the energy
/// histogram over a shared bin grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRun {
    /// Inverse temperature `1/(k_B T)` in inverse energy units.
    pub beta: f64,
    /// Sample counts per energy bin (aligned with the shared grid).
    pub counts: Vec<u64>,
}

impl HistogramRun {
    /// Total samples in this run.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// WHAM output.
#[derive(Debug, Clone, PartialEq)]
pub struct WhamResult {
    /// `ln g(E)` per bin (up to one additive constant); `-inf` for bins no
    /// run sampled.
    pub ln_g: Vec<f64>,
    /// Per-run dimensionless free energies `f_i = −ln Z_i` (same additive
    /// convention as `ln_g`).
    pub free_energies: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final max |Δf| — convergence measure.
    pub residual: f64,
}

/// Solve the WHAM equations
/// `g(E) = Σ_i H_i(E) / Σ_i n_i e^{f_i − β_i E}` with
/// `e^{−f_i} = Σ_E g(E) e^{−β_i E}` by fixed-point iteration in log space.
///
/// `energies[b]` is the center of bin `b`; every run's histogram must be
/// aligned to it.
///
/// # Panics
/// Panics on shape mismatches or when no samples exist at all.
pub fn wham(
    energies: &[f64],
    runs: &[HistogramRun],
    tol: f64,
    max_iterations: usize,
) -> WhamResult {
    assert!(!runs.is_empty(), "need at least one histogram");
    let bins = energies.len();
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(r.counts.len(), bins, "run {i} histogram size mismatch");
    }
    let total_counts: Vec<f64> = (0..bins)
        .map(|b| runs.iter().map(|r| r.counts[b] as f64).sum())
        .collect();
    assert!(
        total_counts.iter().any(|&c| c > 0.0),
        "no samples in any histogram"
    );
    let ln_n: Vec<f64> = runs.iter().map(|r| (r.total() as f64).ln()).collect();

    let lse = |xs: &mut dyn Iterator<Item = f64>| -> f64 {
        let xs: Vec<f64> = xs.collect();
        let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !m.is_finite() {
            return m;
        }
        m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
    };

    let mut f: Vec<f64> = vec![0.0; runs.len()];
    let mut ln_g = vec![f64::NEG_INFINITY; bins];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_iterations && residual > tol {
        iterations += 1;
        // ln g(E) = ln Σ_i H_i(E) − LSE_i[ln n_i + f_i − β_i E]
        for b in 0..bins {
            if total_counts[b] == 0.0 {
                ln_g[b] = f64::NEG_INFINITY;
                continue;
            }
            let denom = lse(&mut runs
                .iter()
                .enumerate()
                .map(|(i, r)| ln_n[i] + f[i] - r.beta * energies[b]));
            ln_g[b] = total_counts[b].ln() - denom;
        }
        // f_i = −ln Σ_E g(E) e^{−β_i E}
        residual = 0.0;
        for (i, r) in runs.iter().enumerate() {
            let ln_z = lse(&mut energies
                .iter()
                .zip(&ln_g)
                .filter(|&(_, &lg)| lg.is_finite())
                .map(|(&e, &lg)| lg - r.beta * e));
            let new_f = -ln_z;
            residual = residual.max((new_f - f[i]).abs());
            f[i] = new_f;
        }
        // Gauge fix: pin f[0] = 0 so the iteration cannot drift.
        let shift = f[0];
        for fi in &mut f {
            *fi -= shift;
        }
    }
    WhamResult {
        ln_g,
        free_energies: f,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::MetropolisSampler;
    use dt_hamiltonian::{exact::ExactDos, PairHamiltonian, KB_EV_PER_K};
    use dt_lattice::{Composition, Configuration, Structure, Supercell};
    use dt_proposal::{LocalSwap, ProposalContext};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn wham_recovers_exact_dos_of_binary_system() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        let exact = ExactDos::enumerate(&h, &nt, &comp);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };

        // Bin grid aligned to the 5 exact levels.
        let energies: Vec<f64> = exact.energies().to_vec();
        let bin_of = |e: f64| -> usize {
            energies
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 - e).abs().partial_cmp(&(b.1 - e).abs()).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };

        // Histograms at a ladder of temperatures covering order to
        // disorder.
        let temps = [300.0f64, 600.0, 1200.0, 2400.0, 4800.0];
        let mut runs = Vec::new();
        for (k, &t) in temps.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(k as u64);
            let c0 = Configuration::random(&comp, &mut rng);
            let mut sampler =
                MetropolisSampler::new(t, c0, &h, &nt, Box::new(LocalSwap::new()), 7 + k as u64);
            let mut counts = vec![0u64; energies.len()];
            sampler.run(&h, &nt, &ctx, 500, 6000, 1, |_, e| {
                counts[bin_of(e)] += 1;
            });
            runs.push(HistogramRun {
                beta: 1.0 / (KB_EV_PER_K * t),
                counts,
            });
        }

        let result = wham(&energies, &runs, 1e-10, 10_000);
        assert!(result.residual < 1e-8, "WHAM residual {}", result.residual);

        // Compare shapes: Δ ln g between adjacent levels vs exact.
        let exact_ln: Vec<f64> = exact.ln_g();
        let offset = result.ln_g[2] - exact_ln[2]; // anchor mid level
        for (b, &ex) in exact_ln.iter().enumerate() {
            assert!(
                (result.ln_g[b] - ex - offset).abs() < 0.25,
                "level {b}: wham {} vs exact {}",
                result.ln_g[b] - offset,
                ex
            );
        }
    }

    #[test]
    fn single_histogram_reduces_to_boltzmann_inversion() {
        // With one run, WHAM gives ln g = ln H + βE + const.
        let energies = [0.0, 1.0, 2.0];
        let runs = [HistogramRun {
            beta: 0.5,
            counts: vec![100, 50, 10],
        }];
        let r = wham(&energies, &runs, 1e-12, 1000);
        let expect = |h: f64, e: f64| -> f64 { h.ln() + 0.5 * e };
        let off = r.ln_g[0] - expect(100.0, 0.0);
        assert!((r.ln_g[1] - expect(50.0, 1.0) - off).abs() < 1e-9);
        assert!((r.ln_g[2] - expect(10.0, 2.0) - off).abs() < 1e-9);
    }

    #[test]
    fn unsampled_bins_stay_masked() {
        let energies = [0.0, 1.0, 2.0];
        let runs = [HistogramRun {
            beta: 1.0,
            counts: vec![10, 0, 5],
        }];
        let r = wham(&energies, &runs, 1e-10, 100);
        assert_eq!(r.ln_g[1], f64::NEG_INFINITY);
        assert!(r.ln_g[0].is_finite() && r.ln_g[2].is_finite());
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_histograms_panic() {
        let _ = wham(
            &[0.0, 1.0],
            &[HistogramRun {
                beta: 1.0,
                counts: vec![0, 0],
            }],
            1e-8,
            10,
        );
    }
}
