//! Time-series estimators: integrated autocorrelation time and blocking
//! errors.
//!
//! The paper's efficiency claim is that global deep proposals decorrelate
//! the chain in far fewer moves than local swaps; τ_int is the quantity
//! that makes the comparison precise (E6 in the experiment index).

/// Integrated autocorrelation time of a series with Sokal's automatic
/// windowing: `τ = 1 + 2 Σ_{t=1..W} ρ(t)` where `W` is the first window
/// with `W ≥ c·τ(W)` (c = 5, standard).
///
/// Returns 1.0 for constant or too-short series.
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 4 {
        return 1.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return 1.0;
    }
    let rho = |t: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..n - t {
            acc += (series[i] - mean) * (series[i + t] - mean);
        }
        acc / ((n - t) as f64 * var)
    };
    let c = 5.0;
    let mut tau = 1.0;
    for t in 1..n / 2 {
        tau += 2.0 * rho(t);
        if (t as f64) >= c * tau {
            break;
        }
        if tau <= 0.0 {
            // Noise-dominated tail: clamp and stop.
            return 1.0_f64.max(tau);
        }
    }
    tau.max(1.0)
}

/// Standard error of the mean by blocking: split the series into
/// `num_blocks` blocks, use the variance of block means. This is robust to
/// autocorrelation when blocks are longer than τ.
///
/// Returns `None` when the series is too short for the requested blocks.
pub fn blocking_error(series: &[f64], num_blocks: usize) -> Option<f64> {
    if num_blocks < 2 || series.len() < num_blocks * 2 {
        return None;
    }
    let block_len = series.len() / num_blocks;
    let means: Vec<f64> = (0..num_blocks)
        .map(|b| {
            let chunk = &series[b * block_len..(b + 1) * block_len];
            chunk.iter().sum::<f64>() / block_len as f64
        })
        .collect();
    let grand = means.iter().sum::<f64>() / num_blocks as f64;
    let var = means
        .iter()
        .map(|&m| (m - grand) * (m - grand))
        .sum::<f64>()
        / (num_blocks as f64 - 1.0);
    Some((var / num_blocks as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = 0.0f64;
        (0..n)
            .map(|_| {
                let noise: f64 = rng.random::<f64>() - 0.5;
                x = phi * x + noise;
                x
            })
            .collect()
    }

    #[test]
    fn white_noise_has_tau_about_one() {
        let series = ar1(0.0, 20_000, 1);
        let tau = integrated_autocorrelation_time(&series);
        assert!((tau - 1.0).abs() < 0.2, "tau = {tau}");
    }

    #[test]
    fn ar1_tau_matches_theory() {
        // For AR(1), τ_int = (1+φ)/(1−φ).
        let phi = 0.8;
        let series = ar1(phi, 100_000, 2);
        let tau = integrated_autocorrelation_time(&series);
        let expected = (1.0 + phi) / (1.0 - phi); // = 9
        assert!(
            (tau - expected).abs() < 2.0,
            "tau {tau} vs theory {expected}"
        );
    }

    #[test]
    fn more_correlated_series_has_larger_tau() {
        let fast = integrated_autocorrelation_time(&ar1(0.2, 50_000, 3));
        let slow = integrated_autocorrelation_time(&ar1(0.9, 50_000, 3));
        assert!(slow > 2.0 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn constant_series_is_tau_one() {
        assert_eq!(integrated_autocorrelation_time(&[2.0; 100]), 1.0);
        assert_eq!(integrated_autocorrelation_time(&[1.0, 2.0]), 1.0);
    }

    #[test]
    fn blocking_error_of_iid_matches_sem() {
        let series = ar1(0.0, 16_384, 4);
        let n = series.len() as f64;
        let mean = series.iter().sum::<f64>() / n;
        let sd = (series.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt();
        let sem = sd / n.sqrt();
        let be = blocking_error(&series, 32).unwrap();
        assert!((be - sem).abs() < sem, "blocking {be} vs naive sem {sem}");
    }

    #[test]
    fn blocking_error_short_series_none() {
        assert!(blocking_error(&[1.0, 2.0, 3.0], 4).is_none());
    }
}
