//! Parallel tempering (replica exchange Monte Carlo) over a temperature
//! ladder — the classical parallel baseline DeepThermo is compared to.

use dt_hamiltonian::EnergyModel;
use dt_lattice::{Configuration, NeighborTable};
use dt_proposal::{LocalSwap, ProposalContext, ProposalKernel};
use rand::{Rng, RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::sampler::MetropolisSampler;

/// Exchange statistics of a tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingReport {
    /// Exchange attempts per adjacent pair.
    pub attempts: Vec<u64>,
    /// Accepted exchanges per adjacent pair.
    pub accepted: Vec<u64>,
    /// Mean energy per replica (measurement phase).
    pub mean_energy: Vec<f64>,
    /// Heat capacity `C_v/k_B` per replica.
    pub cv: Vec<f64>,
}

impl TemperingReport {
    /// Exchange acceptance rate of adjacent pair `i` (between replicas `i`
    /// and `i+1`).
    pub fn exchange_rate(&self, pair: usize) -> f64 {
        if self.attempts[pair] == 0 {
            0.0
        } else {
            self.accepted[pair] as f64 / self.attempts[pair] as f64
        }
    }
}

/// A ladder of Metropolis replicas with periodic configuration exchange.
pub struct ParallelTempering {
    replicas: Vec<MetropolisSampler>,
    attempts: Vec<u64>,
    accepted: Vec<u64>,
    rng: ChaCha8Rng,
    parity: bool,
}

impl ParallelTempering {
    /// Build a ladder at the given temperatures (ascending recommended)
    /// with local-swap kernels.
    pub fn new<M: EnergyModel, R: Rng + ?Sized>(
        temperatures: &[f64],
        model: &M,
        neighbors: &NeighborTable,
        comp: &dt_lattice::Composition,
        seed: u64,
        init_rng: &mut R,
    ) -> Self {
        assert!(temperatures.len() >= 2, "need at least two replicas");
        let replicas = temperatures
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let config = Configuration::random(comp, init_rng);
                MetropolisSampler::new(
                    t,
                    config,
                    model,
                    neighbors,
                    Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                    seed.wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect::<Vec<_>>();
        let pairs = temperatures.len() - 1;
        ParallelTempering {
            replicas,
            attempts: vec![0; pairs],
            accepted: vec![0; pairs],
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef),
            parity: false,
        }
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Access a replica.
    pub fn replica(&self, i: usize) -> &MetropolisSampler {
        &self.replicas[i]
    }

    /// One exchange round: alternating even/odd adjacent pairs with the
    /// standard acceptance `min(1, exp[(β_i − β_j)(E_i − E_j)])`.
    pub fn exchange_round(&mut self) {
        let start = usize::from(self.parity);
        self.parity = !self.parity;
        let mut i = start;
        while i + 1 < self.replicas.len() {
            self.attempts[i] += 1;
            let (lo, hi) = self.replicas.split_at_mut(i + 1);
            let a = &mut lo[i];
            let b = &mut hi[0];
            let ln_acc = (a.beta() - b.beta()) * (a.energy() - b.energy());
            if ln_acc >= 0.0 || self.rng.random::<f64>() < ln_acc.exp() {
                a.swap_state_with(b);
                self.accepted[i] += 1;
            }
            i += 2;
        }
    }

    /// Run the full schedule: for each of `rounds`, every replica does
    /// `sweeps_per_round` sweeps followed by one exchange round. The final
    /// `measure_rounds` rounds contribute to energy statistics.
    pub fn run<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
        rounds: usize,
        sweeps_per_round: usize,
        measure_rounds: usize,
    ) -> TemperingReport {
        assert!(measure_rounds <= rounds);
        let n = self.replicas.len();
        let mut sum = vec![0.0; n];
        let mut sum2 = vec![0.0; n];
        let mut count = 0usize;
        for round in 0..rounds {
            for r in &mut self.replicas {
                for _ in 0..sweeps_per_round {
                    r.sweep(model, neighbors, ctx);
                }
            }
            self.exchange_round();
            if round + measure_rounds >= rounds {
                for (i, r) in self.replicas.iter().enumerate() {
                    sum[i] += r.energy();
                    sum2[i] += r.energy() * r.energy();
                }
                count += 1;
            }
        }
        let mean_energy: Vec<f64> = sum.iter().map(|&s| s / count as f64).collect();
        let cv = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let var = (sum2[i] / count as f64 - mean_energy[i] * mean_energy[i]).max(0.0);
                r.beta() * r.beta() * var
            })
            .collect();
        TemperingReport {
            attempts: self.attempts.clone(),
            accepted: self.accepted.clone(),
            mean_energy,
            cv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::{exact::ExactDos, PairHamiltonian, KB_EV_PER_K};
    use dt_lattice::{Composition, Structure, Supercell};

    fn system() -> (Supercell, NeighborTable, Composition, PairHamiltonian) {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        (cell, nt, comp, h)
    }

    #[test]
    fn replica_means_match_exact_at_each_temperature() {
        let (_, nt, comp, h) = system();
        let exact = ExactDos::enumerate(&h, &nt, &comp);
        let temps = [400.0, 800.0, 1600.0, 3200.0];
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut init_rng = ChaCha8Rng::seed_from_u64(0);
        let mut pt = ParallelTempering::new(&temps, &h, &nt, &comp, 42, &mut init_rng);
        let report = pt.run(&h, &nt, &ctx, 5000, 2, 4500);
        for (i, &t) in temps.iter().enumerate() {
            let beta = 1.0 / (KB_EV_PER_K * t);
            let exact_u = exact.mean_energy(beta);
            assert!(
                (report.mean_energy[i] - exact_u).abs() < 0.02,
                "T={t}: PT {} vs exact {exact_u}",
                report.mean_energy[i]
            );
        }
    }

    #[test]
    fn exchange_rates_are_recorded_and_positive() {
        let (_, nt, comp, h) = system();
        let temps = [500.0, 700.0, 1000.0];
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut init_rng = ChaCha8Rng::seed_from_u64(1);
        let mut pt = ParallelTempering::new(&temps, &h, &nt, &comp, 7, &mut init_rng);
        let report = pt.run(&h, &nt, &ctx, 200, 1, 100);
        assert_eq!(report.attempts.len(), 2);
        for pair in 0..2 {
            assert!(report.attempts[pair] > 0);
            let rate = report.exchange_rate(pair);
            assert!(
                rate > 0.1,
                "close temperatures must exchange often: pair {pair} rate {rate}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_replica_rejected() {
        let (_, nt, comp, h) = system();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = ParallelTempering::new(&[300.0], &h, &nt, &comp, 0, &mut rng);
    }
}
