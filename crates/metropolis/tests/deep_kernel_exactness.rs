//! Canonical-ensemble exactness of asymmetric (deep) proposals: a
//! Metropolis chain driven by the deep autoregressive kernel must sample
//! the same Boltzmann distribution as local swaps — verified against exact
//! enumeration, with trained AND untrained networks.

use dt_hamiltonian::{exact::ExactDos, PairHamiltonian, KB_EV_PER_K};
use dt_lattice::{Composition, Configuration, Structure, Supercell};
use dt_metropolis::MetropolisSampler;
use dt_proposal::{
    DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel, ProposalMix,
    ProposalTrainer, SampleBuffer, TrainerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

fn run_mean_energy(kernel: Box<dyn ProposalKernel>, t: f64, seed: u64) -> f64 {
    let (_, nt, comp, h) = system();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let c0 = Configuration::random(&comp, &mut rng);
    let mut sampler = MetropolisSampler::new(t, c0, &h, &nt, kernel, seed);
    sampler
        .run(&h, &nt, &ctx, 400, 6000, 2, |_, _| {})
        .mean_energy
}

#[test]
fn untrained_deep_kernel_samples_exact_boltzmann() {
    let (_, nt, comp, h) = system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for &t in &[800.0f64, 2000.0] {
        let deep = DeepProposal::new(
            2,
            1,
            &DeepProposalConfig {
                k: 6,
                hidden: vec![12],
            },
            &mut rng,
        );
        let mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.5),
            (Box::new(deep), 0.5),
        ]);
        let u = run_mean_energy(Box::new(mix), t, 11 + t as u64);
        let exact_u = exact.mean_energy(1.0 / (KB_EV_PER_K * t));
        assert!(
            (u - exact_u).abs() < 0.012,
            "T={t}: deep-mix U {u} vs exact {exact_u}"
        );
    }
    drop(nt);
}

#[test]
fn trained_deep_kernel_still_samples_exact_boltzmann() {
    // Training changes q(x'|x) drastically — the MH correction must keep
    // the stationary distribution identical.
    let (_, nt, comp, h) = system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let t = 700.0;

    // Collect equilibrium samples and train.
    let mut buffer = SampleBuffer::new(128);
    let mut eq = MetropolisSampler::new(
        t,
        Configuration::random(&comp, &mut rng),
        &h,
        &nt,
        Box::new(LocalSwap::new()),
        3,
    );
    eq.run(&h, &nt, &ctx, 300, 500, 4, |c, e| buffer.push(c.clone(), e));
    let mut deep = DeepProposal::new(
        2,
        1,
        &DeepProposalConfig {
            k: 8,
            hidden: vec![16],
        },
        &mut rng,
    );
    let mut trainer = ProposalTrainer::new(
        deep.layout(),
        TrainerConfig {
            k: 8,
            ..TrainerConfig::default()
        },
    );
    for _ in 0..30 {
        trainer.train_epoch(deep.net_mut(), &buffer, &nt, &mut rng);
    }

    let mix = ProposalMix::new(vec![
        (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.5),
        (Box::new(deep), 0.5),
    ]);
    let u = run_mean_energy(Box::new(mix), t, 77);
    let exact_u = exact.mean_energy(1.0 / (KB_EV_PER_K * t));
    assert!(
        (u - exact_u).abs() < 0.012,
        "trained deep-mix U {u} vs exact {exact_u}"
    );
}

#[test]
fn deep_kernel_beats_local_acceptance_after_training_here_too() {
    // Sanity tying E2 to this enumerable system: training lifts the deep
    // kernel's acceptance well above the naive-global floor.
    let (_, nt, comp, h) = system();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let t = 700.0;
    let mut buffer = SampleBuffer::new(64);
    let mut eq = MetropolisSampler::new(
        t,
        Configuration::random(&comp, &mut rng),
        &h,
        &nt,
        Box::new(LocalSwap::new()),
        5,
    );
    eq.run(&h, &nt, &ctx, 300, 400, 4, |c, e| buffer.push(c.clone(), e));

    let acc = |kern: Box<dyn ProposalKernel>| -> f64 {
        let mut s = MetropolisSampler::new(t, eq.config().clone(), &h, &nt, kern, 9);
        for _ in 0..3000 {
            s.step(&h, &nt, &ctx);
        }
        s.stats().total_accepted() as f64 / s.stats().total_proposed() as f64
    };

    let untrained = DeepProposal::new(
        2,
        1,
        &DeepProposalConfig {
            k: 8,
            hidden: vec![16],
        },
        &mut rng,
    );
    let mut trained = untrained.clone();
    let mut trainer = ProposalTrainer::new(
        trained.layout(),
        TrainerConfig {
            k: 8,
            ..TrainerConfig::default()
        },
    );
    for _ in 0..30 {
        trainer.train_epoch(trained.net_mut(), &buffer, &nt, &mut rng);
    }
    let a_untrained = acc(Box::new(untrained));
    let a_trained = acc(Box::new(trained));
    // On this tiny binary system the untrained kernel already lands ~0.4
    // (weak interactions, small k); training should still add a large
    // absolute margin (measured: 0.44 -> 0.82).
    assert!(
        a_trained > a_untrained + 0.2,
        "training must lift acceptance: {a_untrained} -> {a_trained}"
    );
}

#[test]
fn neighbor_swap_kernel_samples_exact_boltzmann() {
    // The vacancy-diffusion-like kernel must leave the Boltzmann ensemble
    // invariant too (its symmetry argument is subtler: see NeighborSwap's
    // docs on why same-species draws must not be resampled away).
    use dt_proposal::NeighborSwap;
    let (_, nt, comp, h) = system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    for &t in &[800.0f64, 2000.0] {
        let u = run_mean_energy(Box::new(NeighborSwap::new()), t, 31 + t as u64);
        let exact_u = exact.mean_energy(1.0 / (KB_EV_PER_K * t));
        assert!(
            (u - exact_u).abs() < 0.012,
            "T={t}: neighbor-swap U {u} vs exact {exact_u}"
        );
    }
    drop((nt, comp));
}
