//! Criterion benches of the surrogate path (supports E1/E10): descriptor
//! evaluation, incremental descriptor deltas, prediction, and a training
//! epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use dt_bench::HeaSystem;
use dt_lattice::{Configuration, Species};
use dt_surrogate::{
    Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel, TrainingOptions,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_surrogate(c: &mut Criterion) {
    let sys = HeaSystem::nbmotaw(4);
    let descriptor = PairCorrelationDescriptor {
        num_species: 4,
        num_shells: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let config = Configuration::random(&sys.comp, &mut rng);

    c.bench_function("descriptor_compute_n128", |b| {
        b.iter(|| black_box(descriptor.compute(black_box(&config), &sys.neighbors)))
    });

    c.bench_function("descriptor_delta_k8", |b| {
        let moves: Vec<(u32, Species)> = (0..8u32).map(|i| (i * 13, Species(1))).collect();
        b.iter(|| black_box(descriptor.delta(&config, &sys.neighbors, &moves)))
    });

    // Train a small surrogate once, bench prediction.
    let ds = Dataset::generate(
        &sys.model,
        &sys.neighbors,
        &sys.comp,
        descriptor,
        128,
        SamplingStrategy::Random,
        &mut rng,
    );
    let (train, test) = ds.split(0.8);
    let (model, _) = SurrogateModel::train(
        descriptor,
        &train,
        &test,
        &TrainingOptions {
            hidden: vec![32, 32],
            lr: 3e-3,
            epochs: 100,
        },
        &mut rng,
    );

    c.bench_function("surrogate_predict", |b| {
        b.iter(|| black_box(model.predict_per_site(&config, &sys.neighbors)))
    });

    c.bench_function("surrogate_train_100_epochs_103cfg", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(4);
            let (m, _) = SurrogateModel::train(
                descriptor,
                &train,
                &test,
                &TrainingOptions {
                    hidden: vec![32, 32],
                    lr: 3e-3,
                    epochs: 100,
                },
                &mut r,
            );
            black_box(m)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_surrogate
}
criterion_main!(benches);
