//! Criterion benches of Wang–Landau sweep throughput per proposal kernel
//! (supports E3/E6: the per-move cost side of the time-to-solution story).

use criterion::{criterion_group, criterion_main, Criterion};
use dt_bench::HeaSystem;
use dt_lattice::Configuration;
use dt_proposal::{
    DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel, ProposalMix,
    RandomReassign,
};
use dt_wanglandau::{explore_energy_range, EnergyGrid, WlParams, WlWalker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn walker_with(sys: &HeaSystem, kernel: Box<dyn ProposalKernel>, range: (f64, f64)) -> WlWalker {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let grid = EnergyGrid::new(range.0, range.1, 64);
    let config = Configuration::random(&sys.comp, &mut rng);
    let mut w = WlWalker::new(
        grid,
        WlParams::fast(),
        config,
        &sys.model,
        &sys.neighbors,
        kernel,
        3,
    );
    assert!(w.drive_into_window(&sys.model, &sys.neighbors, 5_000));
    w
}

fn bench_sweeps(c: &mut Criterion) {
    let sys = HeaSystem::nbmotaw(4);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.05, &mut rng);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };

    let mut group = c.benchmark_group("wl_sweep_n128");
    group.sample_size(20);

    group.bench_function("local_swap", |b| {
        let mut w = walker_with(&sys, Box::new(LocalSwap::new()), range);
        b.iter(|| {
            w.sweep(&sys.model, &sys.neighbors, &ctx);
            black_box(w.energy())
        })
    });

    group.bench_function("random_global_mix", |b| {
        let mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.8),
            (Box::new(RandomReassign::new(32)), 0.2),
        ]);
        let mut w = walker_with(&sys, Box::new(mix), range);
        b.iter(|| {
            w.sweep(&sys.model, &sys.neighbors, &ctx);
            black_box(w.energy())
        })
    });

    group.bench_function("deep_mix", |b| {
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let deep = DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k: 32,
                hidden: vec![64, 64],
            },
            &mut rng2,
        );
        let mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.8),
            (Box::new(deep), 0.2),
        ]);
        let mut w = walker_with(&sys, Box::new(mix), range);
        b.iter(|| {
            w.sweep(&sys.model, &sys.neighbors, &ctx);
            black_box(w.energy())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
