//! Criterion benches of the hot computational kernels (supports E10):
//! energy evaluation, incremental deltas, proposal generation, and the
//! proposal network's forward pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dt_bench::HeaSystem;
use dt_hamiltonian::{DeltaWorkspace, EnergyModel};
use dt_lattice::{Configuration, Species};
use dt_nn::Matrix;
use dt_proposal::{DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let sys = HeaSystem::nbmotaw(4); // 128 sites
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let config = Configuration::random(&sys.comp, &mut rng);
    let n = sys.num_sites();

    c.bench_function("total_energy_n128", |b| {
        b.iter(|| black_box(sys.model.total_energy(black_box(&config), &sys.neighbors)))
    });

    c.bench_function("swap_delta", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| {
            let a = r.random_range(0..n) as u32;
            let bb = r.random_range(0..n) as u32;
            black_box(sys.model.swap_delta(&config, &sys.neighbors, a, bb))
        })
    });

    c.bench_function("reassign_delta_k32", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(2);
        let mut ws = DeltaWorkspace::new(n);
        b.iter_batched(
            || {
                let mut sites: Vec<u32> = (0..n as u32).collect();
                for i in 0..32 {
                    let j = r.random_range(i..n);
                    sites.swap(i, j);
                }
                sites[..32]
                    .iter()
                    .map(|&s| (s, Species(r.random_range(0..4u8))))
                    .collect::<Vec<_>>()
            },
            |moves| {
                black_box(
                    sys.model
                        .reassign_delta(&config, &sys.neighbors, &moves, &mut ws),
                )
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("local_swap_proposal", |b| {
        let ctx = ProposalContext {
            neighbors: &sys.neighbors,
            composition: &sys.comp,
        };
        let mut kernel = LocalSwap::new();
        let mut r = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| black_box(kernel.propose(&config, &ctx, &mut r)))
    });

    c.bench_function("deep_proposal_k32", |b| {
        let ctx = ProposalContext {
            neighbors: &sys.neighbors,
            composition: &sys.comp,
        };
        let mut kernel = DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k: 32,
                hidden: vec![64, 64],
            },
            &mut rng,
        );
        let mut r = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| black_box(kernel.propose(&config, &ctx, &mut r)))
    });

    c.bench_function("mlp_forward_15x64x64x4", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let net = dt_nn::Mlp::new(
            &[15, 64, 64, 4],
            dt_nn::Activation::Relu,
            dt_nn::Activation::Identity,
            &mut r,
        );
        let x = Matrix::from_vec(1, 15, (0..15).map(|i| i as f64 / 15.0).collect());
        b.iter(|| black_box(net.forward(black_box(&x))))
    });

    c.bench_function("mlp_forward_into_batch1_15x64x64x4", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let net = dt_nn::Mlp::new(
            &[15, 64, 64, 4],
            dt_nn::Activation::Relu,
            dt_nn::Activation::Identity,
            &mut r,
        );
        let x: Vec<f64> = (0..15).map(|i| i as f64 / 15.0).collect();
        let mut scratch = dt_nn::ForwardScratch::for_mlp(&net, 1);
        b.iter(|| black_box(net.forward_into(black_box(&x), 1, &mut scratch)[0]))
    });

    c.bench_function("mlp_forward_into_batch32_15x64x64x4", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let net = dt_nn::Mlp::new(
            &[15, 64, 64, 4],
            dt_nn::Activation::Relu,
            dt_nn::Activation::Identity,
            &mut r,
        );
        let x: Vec<f64> = (0..32 * 15).map(|i| (i % 15) as f64 / 15.0).collect();
        let mut scratch = dt_nn::ForwardScratch::for_mlp(&net, 32);
        b.iter(|| black_box(net.forward_into(black_box(&x), 32, &mut scratch)[0]))
    });

    c.bench_function("neighbor_table_build_l8", |b| {
        b.iter(|| {
            let cell = dt_lattice::Supercell::cubic(dt_lattice::Structure::bcc(), 8);
            black_box(cell.neighbor_table(2))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels
}
criterion_main!(benches);
