//! Criterion benches of thread-parallel REWL wall time versus walker
//! count on this machine (supports E7/E8's measured layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_bench::HeaSystem;
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_rewl_threads(c: &mut Criterion) {
    let sys = HeaSystem::nbmotaw(3);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);

    let mut group = c.benchmark_group("rewl_fixed_sweeps");
    group.sample_size(10);
    for &(windows, per_window) in &[(2usize, 1usize), (2, 2), (4, 2)] {
        let walkers = windows * per_window;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{walkers}walkers")),
            &(windows, per_window),
            |b, &(windows, per_window)| {
                let cfg = RewlConfig {
                    num_windows: windows,
                    walkers_per_window: per_window,
                    overlap: 0.75,
                    num_bins: 48,
                    wl: WlParams {
                        ln_f_initial: 1.0,
                        ln_f_final: 1e-10, // never reached: fixed-sweep run
                        schedule: LnfSchedule::OneOverT {
                            flatness: 0.7,
                            reduction: 0.5,
                        },
                        sweeps_per_check: 10,
                    },
                    exchange_every_sweeps: 10,
                    observe_every_sweeps: 10,
                    max_sweeps: 500,
                    seed: 1,
                    kernel: KernelSpec::LocalSwap,
                    ..RewlConfig::default()
                };
                b.iter(|| {
                    black_box(run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewl_threads);
criterion_main!(benches);
