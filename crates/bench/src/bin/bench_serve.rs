//! E12 — serving throughput and latency, cached versus uncached.
//!
//! Starts an in-process `dt-serve` server over the fixture artifact and
//! drives it with keep-alive loopback clients in two phases:
//!
//! * **cached** — every client repeats one identical `/v1/thermo`
//!   request, so after the first miss the whole phase is LRU hits;
//! * **uncached** — every request asks for a unique temperature grid
//!   (`t_max` perturbed per request), so every one re-evaluates
//!   `canonical_curve`.
//!
//! Reports aggregate throughput and client-observed p50/p99 latency for
//! each phase plus the cached-vs-uncached p50 speedup.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_serve \
//!     [-- --connections 8 --requests 2000 --num-t 256 --serve-workers 8]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dt_bench::{arg, print_csv};
use dt_serve::fixture::fixture_artifact;
use dt_serve::{ArtifactRegistry, ServeConfig, Server};

/// Read one HTTP response off a keep-alive stream; returns the status.
fn read_response<R: BufRead>(reader: &mut R) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    status
}

/// Drive `requests` keep-alive requests per connection; `body_of(i)`
/// builds the i-th request body. Returns (latencies ns, wall time).
fn drive(
    addr: SocketAddr,
    connections: usize,
    requests: usize,
    body_of: impl Fn(usize) -> String + Send + Sync + Copy + 'static,
) -> (Vec<u64>, Duration) {
    let started = Instant::now();
    let threads: Vec<_> = (0..connections)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let body = body_of(c * requests + i);
                    let raw = format!(
                        "POST /v1/thermo HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let t0 = Instant::now();
                    writer.write_all(raw.as_bytes()).expect("write");
                    let status = read_response(&mut reader);
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "request {i} on connection {c}");
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::with_capacity(connections * requests);
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    let wall = started.elapsed();
    all.sort_unstable();
    (all, wall)
}

fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    let idx = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e3
}

fn main() {
    let connections: usize = arg("--connections", 8);
    let requests: usize = arg("--requests", 2000);
    let num_t: usize = arg("--num-t", 256);
    let workers: usize = arg("--serve-workers", 8);

    let mut registry = ArtifactRegistry::new();
    registry.insert(fixture_artifact("bench"));
    let handle = Server::start(
        registry,
        ServeConfig {
            workers,
            queue_depth: 4 * connections.max(1),
            cache_capacity: 1024,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.local_addr();
    println!(
        "# E12: serve throughput/latency — {connections} connections x {requests} requests, \
         {num_t}-point curves, {workers} workers"
    );

    // Phase 1: cached. One warmup miss populates the entry, then every
    // request is a pure LRU hit.
    let cached_body = move |_i: usize| {
        format!("{{\"artifact\":\"fixture-bench\",\"t_min\":300,\"t_max\":3000,\"num_t\":{num_t}}}")
    };
    drive(addr, 1, 1, cached_body); // warmup: populate the cache
    let (cached, cached_wall) = drive(addr, connections, requests, cached_body);

    // Phase 2: uncached. A per-request t_max perturbation makes every
    // cache key unique, so each request re-evaluates the curve.
    let uncached_body = move |i: usize| {
        format!(
            "{{\"artifact\":\"fixture-bench\",\"t_min\":300,\"t_max\":{},\"num_t\":{num_t}}}",
            3000.0 + 0.001 * i as f64
        )
    };
    let (uncached, uncached_wall) = drive(addr, connections, requests, uncached_body);

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.handler_panics, 0, "bench must not panic a worker");

    let total = (connections * requests) as f64;
    let rps = |wall: Duration| total / wall.as_secs_f64();
    let rows = vec![
        format!(
            "cached,{:.0},{:.1},{:.1},{:.1}",
            rps(cached_wall),
            quantile_us(&cached, 0.50),
            quantile_us(&cached, 0.99),
            cached_wall.as_secs_f64()
        ),
        format!(
            "uncached,{:.0},{:.1},{:.1},{:.1}",
            rps(uncached_wall),
            quantile_us(&uncached, 0.50),
            quantile_us(&uncached, 0.99),
            uncached_wall.as_secs_f64()
        ),
    ];
    print_csv("phase,req_per_s,p50_us,p99_us,wall_s", &rows);
    println!(
        "# cached p50 speedup over uncached: {:.1}x",
        quantile_us(&uncached, 0.50) / quantile_us(&cached, 0.50)
    );
    println!(
        "# server: {} requests handled, {} rejected, {} deadline-expired",
        stats.requests_handled, stats.queue_rejections, stats.deadline_expired
    );
}
