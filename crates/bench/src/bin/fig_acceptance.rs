//! E2 — Proposal acceptance versus global-update size k.
//!
//! The paper's motivating figure: naive global updates have exponentially
//! vanishing acceptance with update size, while trained deep proposals
//! keep a usable acceptance at large k. Measured here in the canonical
//! ensemble at fixed temperature, starting from an equilibrated
//! configuration.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_acceptance [-- --l 3 --t 900]
//! ```

use dt_bench::{arg, print_csv, HeaSystem};
use dt_lattice::Configuration;
use dt_metropolis::MetropolisSampler;
use dt_proposal::{
    DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel, ProposalTrainer,
    RandomReassign, SampleBuffer, TrainerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let t: f64 = arg("--t", 900.0);
    let sys = HeaSystem::nbmotaw(l);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);

    println!(
        "# E2: acceptance vs update size, NbMoTaW N={}, T={t} K",
        sys.num_sites()
    );

    // Equilibrate a configuration and collect training samples for the
    // deep kernel (the paper's on-the-fly loop, frozen for measurement).
    let mut buffer = SampleBuffer::new(128);
    let start = Configuration::random(&sys.comp, &mut rng);
    let mut equilibrator = MetropolisSampler::new(
        t,
        start,
        &sys.model,
        &sys.neighbors,
        Box::new(LocalSwap::new()),
        1,
    );
    equilibrator.run(&sys.model, &sys.neighbors, &ctx, 600, 600, 5, |c, e| {
        buffer.push(c.clone(), e);
    });
    let equilibrated = equilibrator.config().clone();

    let measure = |kernel: Box<dyn ProposalKernel>, seed: u64| -> f64 {
        let mut sampler = MetropolisSampler::new(
            t,
            equilibrated.clone(),
            &sys.model,
            &sys.neighbors,
            kernel,
            seed,
        );
        for _ in 0..4000 {
            sampler.step(&sys.model, &sys.neighbors, &ctx);
        }
        sampler.stats().total_accepted() as f64 / sampler.stats().total_proposed() as f64
    };

    let mut rows = Vec::new();
    let local = measure(Box::new(LocalSwap::new()), 11);
    for &k in &[4usize, 8, 16, 32, 54] {
        let k = k.min(sys.num_sites());
        // Naive global baseline.
        let naive = measure(Box::new(RandomReassign::new(k)), 20 + k as u64);

        // Untrained deep kernel.
        let untrained = DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k,
                hidden: vec![32, 32],
            },
            &mut rng,
        );
        let acc_untrained = measure(Box::new(untrained.clone()), 40 + k as u64);

        // Trained deep kernel (fit on the equilibrated samples).
        let mut trained = untrained;
        let mut trainer = ProposalTrainer::new(
            trained.layout(),
            TrainerConfig {
                k,
                ..TrainerConfig::default()
            },
        );
        for _ in 0..30 {
            trainer.train_epoch(trained.net_mut(), &buffer, &sys.neighbors, &mut rng);
        }
        let acc_trained = measure(Box::new(trained), 60 + k as u64);

        rows.push(format!(
            "{k},{local:.4},{naive:.6},{acc_untrained:.4},{acc_trained:.4}"
        ));
    }
    print_csv(
        "k,local_swap,random_global,deep_untrained,deep_trained",
        &rows,
    );
    println!("\n# expected shape: random_global collapses with k; deep_trained");
    println!("# stays well above it (the paper's motivation for DL proposals)");
}
