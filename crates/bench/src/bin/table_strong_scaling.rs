//! E8 — Strong scaling: a fixed global sampling workload over more GPUs.
//!
//! Projected from the calibrated performance model (communication is not
//! divided, so efficiency falls faster than weak scaling — the Amdahl
//! shape the paper's strong-scaling table shows), plus a measured
//! fixed-range REWL decomposition study on this machine.
//!
//! ```text
//! cargo run -p dt-bench --release --bin table_strong_scaling
//! ```

use dt_bench::{print_csv, timed, HeaSystem};
use dt_hpc::{strong_scaling_table, GpuSpec, WorkloadShape};
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("# E8: strong scaling (projected, perf model)");
    let shape = WorkloadShape::paper_default();
    let ranks = [1usize, 2, 4, 8, 16, 32, 64];
    for gpu in [GpuSpec::v100(), GpuSpec::mi250x_gcd()] {
        let rows: Vec<String> = strong_scaling_table(&gpu, &shape, &ranks)
            .into_iter()
            .map(|r| {
                format!(
                    "{},{},{:.5},{:.3}",
                    gpu.name, r.ranks, r.time_per_iteration_s, r.efficiency
                )
            })
            .collect();
        print_csv("gpu,ranks,s_per_iter,efficiency", &rows);
        println!();
    }

    println!("# E8b: measured window decomposition at fixed range/accuracy");
    let sys = HeaSystem::nbmotaw(3);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);
    let mut rows = Vec::new();
    for windows in [1usize, 2, 4, 8] {
        let cfg = RewlConfig {
            num_windows: windows,
            walkers_per_window: 1,
            overlap: 0.75,
            num_bins: 48,
            wl: WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-3,
                schedule: LnfSchedule::OneOverT {
                    flatness: 0.7,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            exchange_every_sweeps: 10,
            observe_every_sweeps: 4,
            max_sweeps: 300_000,
            seed: 3,
            kernel: KernelSpec::LocalSwap,
            ..RewlConfig::default()
        };
        let (out, wall) = timed(|| {
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed")
        });
        rows.push(format!(
            "{windows},{},{wall:.2},{}",
            out.sweeps, out.converged
        ));
    }
    print_csv("windows,sweeps_to_converge,wall_s,converged", &rows);
    println!("\n# narrower windows flatten faster: sweeps_to_converge drops");
    println!("# with window count — the REWL strong-scaling win");
}
