//! E6 — Time-to-solution: DeepThermo vs classical Wang–Landau.
//!
//! Three views of the mixing-speed story behind the paper's speedup:
//!
//! 1. **Tunneling time** — sweeps per round trip between the low- and
//!    high-energy ends of the range during flat-histogram sampling (the
//!    standard Wang–Landau efficiency metric);
//! 2. **Stage progress** — `ln f` stages completed in a fixed sweep budget
//!    on a mid-range window (flatness schedule);
//! 3. **Autocorrelation** — integrated autocorrelation time of the energy
//!    at fixed temperature.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_convergence [-- --l 3]
//! ```

use dt_bench::{arg, print_csv, HeaSystem};
use dt_lattice::Configuration;
use dt_metropolis::{integrated_autocorrelation_time, MetropolisSampler};
use dt_proposal::{
    DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel, ProposalMix,
    ProposalTrainer, RandomReassign, SampleBuffer, TrainerConfig,
};
use dt_wanglandau::{explore_energy_range, EnergyGrid, LnfSchedule, WlParams, WlWalker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let sys = HeaSystem::nbmotaw(l);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 40, 0.02, &mut rng);
    println!("# E6: convergence, NbMoTaW N={}", sys.num_sites());

    // Pre-train a deep kernel at a mid-range temperature (stand-in for the
    // on-the-fly loop; isolates proposal quality from training cost).
    let k = (sys.num_sites() / 4).max(4);
    let mut deep = DeepProposal::new(
        4,
        2,
        &DeepProposalConfig {
            k,
            hidden: vec![32, 32],
        },
        &mut rng,
    );
    {
        let mut buffer = SampleBuffer::new(128);
        let mut eq = MetropolisSampler::new(
            900.0,
            Configuration::random(&sys.comp, &mut rng),
            &sys.model,
            &sys.neighbors,
            Box::new(LocalSwap::new()),
            2,
        );
        eq.run(&sys.model, &sys.neighbors, &ctx, 400, 400, 4, |c, e| {
            buffer.push(c.clone(), e)
        });
        let mut trainer = ProposalTrainer::new(
            deep.layout(),
            TrainerConfig {
                k,
                ..TrainerConfig::default()
            },
        );
        for _ in 0..40 {
            trainer.train_epoch(deep.net_mut(), &buffer, &sys.neighbors, &mut rng);
        }
    }

    type KernelFactory = Box<dyn Fn() -> Box<dyn ProposalKernel>>;
    let kernels: Vec<(&str, KernelFactory)> = vec![
        ("local", Box::new(|| Box::new(LocalSwap::new()))),
        (
            "random_global",
            Box::new(move || {
                Box::new(ProposalMix::new(vec![
                    (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.8),
                    (Box::new(RandomReassign::new(k)), 0.2),
                ]))
            }),
        ),
        (
            "deepthermo",
            Box::new(move || {
                Box::new(ProposalMix::new(vec![
                    (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.8),
                    (Box::new(deep.clone()), 0.2),
                ]))
            }),
        ),
    ];

    // --- 1. tunneling time over the full range (1/t schedule keeps the
    // walk progressing regardless of flatness) -------------------------
    println!("\n# tunneling: round trips between the low/high 30% marks");
    let span = range.1 - range.0;
    let (lo_thr, hi_thr) = (range.0 + 0.3 * span, range.1 - 0.3 * span);
    let budget_sweeps = 8_000u64;
    let mut rows = Vec::new();
    for (name, factory) in &kernels {
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let mut walker = WlWalker::new(
            EnergyGrid::new(range.0, range.1, 16 * l),
            WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-12,
                schedule: LnfSchedule::OneOverT {
                    flatness: 0.7,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            Configuration::random(&sys.comp, &mut rng2),
            &sys.model,
            &sys.neighbors,
            factory(),
            9,
        );
        walker.drive_into_window(&sys.model, &sys.neighbors, 5_000);
        // Half-trip state machine: low → high and high → low each count a
        // half; two halves make a round trip.
        let mut half_trips = 0u64;
        let mut at_low = walker.energy() < lo_thr;
        for s in 0..budget_sweeps {
            walker.sweep(&sys.model, &sys.neighbors, &ctx);
            if s % 10 == 9 {
                walker.check_and_advance(&sys.model, &sys.neighbors);
            }
            let e = walker.energy();
            if at_low && e > hi_thr {
                at_low = false;
                half_trips += 1;
            } else if !at_low && e < lo_thr {
                at_low = true;
                half_trips += 1;
            }
        }
        let round_trips = half_trips / 2;
        let per_trip = if round_trips > 0 {
            format!("{:.0}", budget_sweeps as f64 / round_trips as f64)
        } else {
            "inf".to_string()
        };
        rows.push(format!("{name},{round_trips},{per_trip}"));
    }
    print_csv(
        "kernel,round_trips_in_8000_sweeps,sweeps_per_round_trip",
        &rows,
    );

    // --- 2. ln f stage progress on a mid-range window ------------------
    println!("\n# stage progress: ln f stages completed in 5,000 sweeps");
    let window = EnergyGrid::new(range.0 + 0.3 * span, range.1 - 0.2 * span, 8 * l);
    let mut rows = Vec::new();
    for (name, factory) in &kernels {
        let mut rng2 = ChaCha8Rng::seed_from_u64(6);
        let mut walker = WlWalker::new(
            window.clone(),
            WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-12,
                schedule: LnfSchedule::Flatness {
                    flatness: 0.8,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            Configuration::random(&sys.comp, &mut rng2),
            &sys.model,
            &sys.neighbors,
            factory(),
            11,
        );
        assert!(walker.drive_into_window(&sys.model, &sys.neighbors, 5_000));
        for s in 0..5_000u64 {
            walker.sweep(&sys.model, &sys.neighbors, &ctx);
            if s % 10 == 9 {
                walker.check_and_advance(&sys.model, &sys.neighbors);
            }
        }
        rows.push(format!("{name},{},{:.3e}", walker.stages(), walker.ln_f()));
    }
    print_csv("kernel,stages_completed,final_lnf", &rows);

    // --- 3. energy autocorrelation at fixed T --------------------------
    println!("\n# integrated autocorrelation time of E at T = 900 K");
    let mut rows = Vec::new();
    for (name, factory) in &kernels {
        let mut sampler = MetropolisSampler::new(
            900.0,
            Configuration::random(&sys.comp, &mut ChaCha8Rng::seed_from_u64(8)),
            &sys.model,
            &sys.neighbors,
            factory(),
            17,
        );
        let mut energies = Vec::with_capacity(4000);
        sampler.run(&sys.model, &sys.neighbors, &ctx, 300, 4000, 1, |_, e| {
            energies.push(e)
        });
        let tau = integrated_autocorrelation_time(&energies);
        rows.push(format!("{name},{tau:.2}"));
    }
    print_csv("kernel,tau_int_sweeps", &rows);
}
