//! Ablations — design choices called out in DESIGN.md.
//!
//! 1. Deep-kernel mixture weight: acceptance and convergence as the deep
//!    fraction grows.
//! 2. Training cadence: how often retraining pays off.
//! 3. 1/t vs flatness-only schedule: final ln f and sweeps.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_ablation [-- --l 3]
//! ```

use dt_bench::{arg, print_csv, HeaSystem};
use dt_proposal::{DeepProposalConfig, TrainerConfig};
use dt_rewl::{run_rewl, DeepSpec, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn base_cfg(kernel: KernelSpec) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 48,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-3,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 4,
        max_sweeps: 60_000,
        seed: 11,
        kernel,
        ..RewlConfig::default()
    }
}

fn deep_spec(weight: f64, train_every: u64) -> DeepSpec {
    DeepSpec {
        proposal: DeepProposalConfig {
            k: 12,
            hidden: vec![32, 32],
        },
        deep_weight: weight,
        trainer: TrainerConfig {
            k: 12,
            ..TrainerConfig::default()
        },
        train_every_sweeps: train_every,
        epochs_per_round: 2,
        buffer_capacity: 128,
        sample_every_sweeps: 4,
        sync_weights: true,
    }
}

fn main() {
    let l: usize = arg("--l", 3);
    let sys = HeaSystem::nbmotaw(l);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);

    println!("# ablation 1: deep mixture weight");
    let mut rows = Vec::new();
    for weight in [0.05f64, 0.2, 0.5] {
        let cfg = base_cfg(KernelSpec::Deep(Box::new(deep_spec(weight, 50))));
        let out =
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed");
        let mut deep_acc = 0.0;
        for w in &out.windows {
            if let Some(a) = w.stats.acceptance("deep-autoregressive") {
                deep_acc = a;
            }
        }
        rows.push(format!(
            "{weight},{},{deep_acc:.4},{}",
            out.sweeps, out.converged
        ));
    }
    print_csv("deep_weight,sweeps,deep_acceptance,converged", &rows);

    println!("\n# ablation 2: training cadence (sweeps between retrains)");
    let mut rows = Vec::new();
    for cadence in [25u64, 100, 1000] {
        let cfg = base_cfg(KernelSpec::Deep(Box::new(deep_spec(0.2, cadence))));
        let out =
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed");
        let mut deep_acc = 0.0;
        for w in &out.windows {
            if let Some(a) = w.stats.acceptance("deep-autoregressive") {
                deep_acc = a;
            }
        }
        rows.push(format!("{cadence},{},{deep_acc:.4}", out.sweeps));
    }
    print_csv("train_every_sweeps,sweeps,deep_acceptance", &rows);

    println!("\n# ablation 3: ln f schedule");
    let mut rows = Vec::new();
    for (name, schedule) in [
        (
            "one_over_t",
            LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
        ),
        (
            "flatness",
            LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
        ),
    ] {
        let mut cfg = base_cfg(KernelSpec::LocalSwap);
        cfg.wl.schedule = schedule;
        let out =
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed");
        let ln_f_max = out.windows.iter().map(|w| w.ln_f).fold(0.0f64, f64::max);
        rows.push(format!(
            "{name},{},{ln_f_max:.3e},{}",
            out.sweeps, out.converged
        ));
    }
    print_csv("schedule,sweeps,final_lnf_max,converged", &rows);
}
