//! E5 — Warren–Cowley short-range order versus temperature.
//!
//! Regenerates the SRO(T) curves (the "phase transition behaviours" the
//! abstract highlights) from a single Wang–Landau run via microcanonical
//! reweighting, and cross-checks two temperatures against direct
//! Metropolis sampling.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_sro [-- --l 3]
//! ```

use deepthermo::{DeepThermo, DeepThermoConfig, MaterialSpec};
use dt_bench::{arg, print_csv};
use dt_lattice::{Configuration, Species, SroAccumulator};
use dt_metropolis::MetropolisSampler;
use dt_proposal::{LocalSwap, ProposalContext};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let mut cfg = DeepThermoConfig::quick_demo();
    cfg.material = MaterialSpec::nbmotaw(l);
    cfg.rewl.max_sweeps = 150_000;
    cfg.rewl.wl.ln_f_final = 3e-4;
    cfg.temperatures = dt_thermo::temperature_grid(100.0, 3000.0, 60);

    println!("# E5: SRO(T) of NbMoTaW N={}", cfg.material.num_sites());
    let runner = DeepThermo::nbmotaw(cfg).expect("valid config");
    let report = runner.run().expect("sampling failed");

    // Reweighted curves for every unlike pair.
    let temps: Vec<f64> = report.sro_curves[0]
        .points
        .iter()
        .map(|&(t, _)| t)
        .collect();
    let rows: Vec<String> = temps
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let alphas: Vec<String> = report
                .sro_curves
                .iter()
                .map(|c| format!("{:.4}", c.points[i].1))
                .collect();
            format!("{t:.0},{}", alphas.join(","))
        })
        .collect();
    let header = format!(
        "T_K,{}",
        report
            .sro_curves
            .iter()
            .map(|c| c.label.replace('-', "_"))
            .collect::<Vec<_>>()
            .join(",")
    );
    print_csv(&header, &rows);

    // Cross-check: direct Metropolis at two temperatures.
    println!("\n# cross-check vs direct Metropolis (Mo-Ta, first shell)");
    let ctx = ProposalContext {
        neighbors: runner.neighbors(),
        composition: runner.composition(),
    };
    let mo_ta = report
        .sro_curves
        .iter()
        .find(|c| c.label == "Mo-Ta")
        .expect("curve");
    let mut rows = Vec::new();
    for &t in &[800.0f64, 2000.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(t as u64);
        let c0 = Configuration::random(runner.composition(), &mut rng);
        let mut sampler = MetropolisSampler::new(
            t,
            c0,
            runner.model(),
            runner.neighbors(),
            Box::new(LocalSwap::new()),
            3,
        );
        let mut acc = SroAccumulator::new(2, 4);
        sampler.run(
            runner.model(),
            runner.neighbors(),
            &ctx,
            400,
            2000,
            4,
            |c, _| acc.accumulate(c, runner.neighbors()),
        );
        let wc = acc
            .mean_alpha(runner.neighbors(), runner.composition())
            .expect("samples");
        let direct = wc.alpha(0, Species(1), Species(2));
        let reweighted = mo_ta
            .points
            .iter()
            .min_by(|a, b| {
                (a.0 - t)
                    .abs()
                    .partial_cmp(&(b.0 - t).abs())
                    .expect("finite")
            })
            .expect("points")
            .1;
        rows.push(format!("{t:.0},{reweighted:.4},{direct:.4}"));
    }
    print_csv("T_K,alpha_reweighted,alpha_direct_metropolis", &rows);
}
