//! E3 — The density of states of NbMoTaW.
//!
//! Regenerates the headline figure: `ln g(E)` over the reachable energy
//! range, normalized to the exact total configuration count, with the
//! `ln g` range (the paper's `~e^10,000` at N = 8192) reported at the end.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_dos [-- --l 4 --lnf 1e-5]
//! ```

use dt_bench::{arg, print_csv, timed, HeaSystem};
use dt_lattice::Composition;
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let lnf: f64 = arg("--lnf", 1e-4);
    let sys = HeaSystem::nbmotaw(l);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 60, 0.02, &mut rng);

    println!(
        "# E3: DOS of NbMoTaW N={} over [{:.3}, {:.3}] eV",
        sys.num_sites(),
        range.0,
        range.1
    );
    println!(
        "# exact ln(total configurations) = {:.1}  (paper scale N=8192: {:.0})",
        sys.comp.ln_num_configurations(),
        Composition::equiatomic(4, 8192)
            .expect("valid")
            .ln_num_configurations()
    );

    let cfg = RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: (24 * l * l).min(512),
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: lnf,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 4,
        max_sweeps: 2_000_000,
        seed: 7,
        kernel: KernelSpec::Deep(Box::new(dt_rewl::DeepSpec {
            proposal: dt_proposal::DeepProposalConfig {
                k: 12,
                hidden: vec![32, 32],
            },
            deep_weight: 0.15,
            ..dt_rewl::DeepSpec::default()
        })),
        ..RewlConfig::default()
    };
    let (out, secs) = timed(|| {
        run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed")
    });
    let mut dos = out.dos.clone();
    dos.normalize_total(sys.comp.ln_num_configurations(), Some(&out.mask));

    let rows: Vec<String> = out
        .mask
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v)
        .map(|(b, _)| format!("{:.5},{:.4}", dos.grid().center(b), dos.ln_g_bin(b)))
        .collect();
    print_csv("E_eV,ln_g", &rows);

    println!(
        "\n# ln g range over visited bins: {:.1}",
        dos.ln_g_range(Some(&out.mask))
    );
    println!(
        "# converged: {} in {} sweeps/walker, {:.1} s wall, {} total moves",
        out.converged, out.sweeps, secs, out.total_moves
    );
    for w in &out.windows {
        println!(
            "# window {}: final ln f = {:.2e}, exchange rate {:.2}",
            w.window,
            w.ln_f,
            w.exchange_rate()
        );
    }
}
