//! E15 — lockstep proposal-phase throughput versus walker count.
//!
//! Drives the deep kernel's two proposal paths over evolving chains on an
//! NbMoTaW fixture:
//!
//! * **sequential** — one `propose` call per walker per step, the batch-1
//!   path every cluster rank runs today;
//! * **lockstep** — one `propose_batch` call over all W walkers per step,
//!   so each decode step is a single W-row forward and every reverse
//!   replay folds into one (W·k)-row forward.
//!
//! Before timing, the harness replays both paths side by side from
//! identical per-walker RNG streams and asserts **bit-identity**: same
//! moves, same forward/reverse log-q bits, same RNG word positions, same
//! final configurations. The speedup is therefore a pure scheduling win —
//! the Markov chains are unchanged.
//!
//! Each run sweeps two decode nets: the unit-test-sized default
//! (`hidden [64, 64]`, reported for reference) and the paper-scale
//! `--hidden` net (default 128) the `--gate` speedup (default 2x) is
//! enforced at, measured at `--walkers` walkers (default 8). The win
//! scales with net width because the shared per-row scalar work —
//! feature fills, masked softmax, categorical sampling — and the reverse
//! replay (batched per walker since E13 on *both* paths) dilute the
//! batched-matmul advantage on tiny nets. Writes the sweep to `--out`
//! (default `BENCH_proposal_batch.json`) and exits nonzero if identity
//! or the gate fails, so CI can use it as a regression fence.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_proposal_batch \
//!     [-- --l 4 --k 32 --steps 24 --walkers 8 --hidden 128 --gate 2.0 \
//!      --out BENCH_proposal_batch.json]
//! ```

use dt_bench::{arg, print_csv, timed, HeaSystem};
use dt_lattice::Configuration;
use dt_proposal::{
    apply_move, DeepProposal, DeepProposalConfig, Proposal, ProposalContext, ProposalKernel,
    ProposalSlot,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fold a proposal into a cheap order-sensitive fingerprint.
fn fingerprint(acc: u64, p: &Proposal) -> u64 {
    let mut h = acc;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(27);
    };
    mix(p.log_q_forward.to_bits());
    mix(p.log_q_reverse.to_bits());
    if let dt_proposal::ProposedMove::Reassign { moves } = &p.mv {
        for &(s, t) in moves {
            mix(u64::from(s) << 8 | t.index() as u64);
        }
    }
    h
}

/// Per-walker chains: configurations plus their RNG streams.
#[derive(Clone)]
struct Chains {
    configs: Vec<Configuration>,
    rngs: Vec<ChaCha8Rng>,
}

impl Chains {
    fn new(comp: &dt_lattice::Composition, w: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Chains {
            configs: (0..w)
                .map(|_| Configuration::random(comp, &mut rng))
                .collect(),
            rngs: (0..w as u64)
                .map(|i| ChaCha8Rng::seed_from_u64(seed ^ (i + 1)))
                .collect(),
        }
    }
}

/// Advance every chain one step through sequential batch-1 proposals,
/// folding each proposal into the fingerprint. Moves are applied
/// unconditionally: the bench exercises the proposal phase alone.
fn step_sequential(kern: &mut DeepProposal, ctx: &ProposalContext<'_>, ch: &mut Chains) -> u64 {
    let mut fp = 0u64;
    for (config, rng) in ch.configs.iter_mut().zip(&mut ch.rngs) {
        let p = kern.propose(config, ctx, rng);
        fp = fingerprint(fp, &p);
        apply_move(config, &p.mv);
    }
    fp
}

/// Advance every chain one step through one lockstep `propose_batch`.
fn step_lockstep(
    kern: &mut DeepProposal,
    ctx: &ProposalContext<'_>,
    ch: &mut Chains,
    out: &mut Vec<Proposal>,
) -> u64 {
    {
        let mut slots: Vec<ProposalSlot<'_>> = ch
            .configs
            .iter()
            .zip(&mut ch.rngs)
            .map(|(c, r)| ProposalSlot { config: c, rng: r })
            .collect();
        kern.propose_batch(&mut slots, ctx, out);
    }
    let mut fp = 0u64;
    for (config, p) in ch.configs.iter_mut().zip(out.iter()) {
        fp = fingerprint(fp, p);
        apply_move(config, &p.mv);
    }
    fp
}

fn main() {
    let l: usize = arg("--l", 4);
    let k: usize = arg("--k", 32);
    let steps: usize = arg("--steps", 24);
    let passes: usize = arg("--passes", 5);
    let gate_walkers: usize = arg("--walkers", 8);
    let gate_hidden: usize = arg("--hidden", 128);
    let gate: f64 = arg("--gate", 2.0);
    let out_path: String = arg("--out", "BENCH_proposal_batch.json".to_string());

    let sys = HeaSystem::nbmotaw(l);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };

    let mut walker_counts: Vec<usize> = [1usize, 2, 4, 8, gate_walkers]
        .into_iter()
        .filter(|&w| w <= gate_walkers)
        .collect();
    walker_counts.sort_unstable();
    walker_counts.dedup();

    // Two nets per run: the unit-test-sized default ([64, 64], reported
    // for reference) and the paper-scale decode net the ≥2x gate holds
    // at. The lockstep win grows with net width — wider layers push the
    // per-proposal cost toward pure matmul, which batches ~3x, while the
    // shared per-row scalar work (features, masked softmax, sampling)
    // and the already-batched reverse replay dilute it on tiny nets.
    let mut hidden_widths = vec![64usize, gate_hidden];
    hidden_widths.dedup();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut gate_speedup = 0.0f64;
    let mut out = Vec::new();

    for &h in &hidden_widths {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut kern = DeepProposal::new(
            sys.comp.num_species(),
            2,
            &DeepProposalConfig {
                k,
                hidden: vec![h, h],
            },
            &mut rng,
        );
        kern.warm_up_for(sys.num_sites(), gate_walkers);

        for &w in &walker_counts {
            // --- Bit-identity fence: both paths from identical chain
            // state must produce identical proposals, streams, and final
            // configs.
            let mut seq_ch = Chains::new(&sys.comp, w, 29);
            let mut lock_ch = seq_ch.clone();
            for step in 0..steps.min(8) {
                let fp_seq = step_sequential(&mut kern, &ctx, &mut seq_ch);
                let fp_lock = step_lockstep(&mut kern, &ctx, &mut lock_ch, &mut out);
                assert_eq!(
                    fp_seq, fp_lock,
                    "lockstep diverged from sequential at h={h} w={w} step={step}"
                );
            }
            for i in 0..w {
                assert_eq!(
                    seq_ch.rngs[i].get_word_pos(),
                    lock_ch.rngs[i].get_word_pos(),
                    "walker {i} consumed a different number of RNG words"
                );
                assert_eq!(
                    seq_ch.configs[i].species(),
                    lock_ch.configs[i].species(),
                    "walker {i} chains diverged"
                );
            }

            // --- Throughput: best of `passes` per path so scheduler
            // noise on shared runners cannot sink either side.
            let init = Chains::new(&sys.comp, w, 31);
            let total_props = (steps * w) as f64;
            let mut seq_props_s = 0.0f64;
            let mut lock_props_s = 0.0f64;
            let mut sink = 0u64;
            for _ in 0..passes {
                let mut ch = init.clone();
                let (_, sec) = timed(|| {
                    for _ in 0..steps {
                        sink ^= step_sequential(&mut kern, &ctx, &mut ch);
                    }
                });
                seq_props_s = seq_props_s.max(total_props / sec);
                let mut ch = init.clone();
                let (_, sec) = timed(|| {
                    for _ in 0..steps {
                        sink ^= step_lockstep(&mut kern, &ctx, &mut ch, &mut out);
                    }
                });
                lock_props_s = lock_props_s.max(total_props / sec);
            }
            std::hint::black_box(sink);
            let speedup = lock_props_s / seq_props_s;
            if w == gate_walkers && h == gate_hidden {
                gate_speedup = speedup;
            }
            rows.push(format!(
                "{h},{w},{seq_props_s:.1},{lock_props_s:.1},{speedup:.2}"
            ));
            json_rows.push(format!(
                "    {{\"hidden\": [{h}, {h}], \"walkers\": {w}, \
                 \"sequential_props_per_s\": {seq_props_s:.1}, \
                 \"lockstep_props_per_s\": {lock_props_s:.1}, \"speedup\": {speedup:.3}}}"
            ));
        }
    }

    print_csv(
        "hidden,walkers,sequential_props_per_s,lockstep_props_per_s,speedup",
        &rows,
    );

    let avx = cfg!(target_feature = "avx");
    let pass = gate_speedup >= gate;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E15\",\n",
            "  \"fixture\": {{\"l\": {l}, \"k\": {k}, \"steps\": {steps}}},\n",
            "  \"sweep\": [\n{sweep}\n  ],\n",
            "  \"avx\": {avx},\n",
            "  \"bit_identical\": true,\n",
            "  \"gate\": {{\"walkers\": {gw}, \"hidden\": [{gh}, {gh}], ",
            "\"min_speedup\": {gate:.1}, \"speedup\": {gs:.3}}},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        l = l,
        k = k,
        steps = steps,
        sweep = json_rows.join(",\n"),
        avx = avx,
        gw = gate_walkers,
        gh = gate_hidden,
        gate = gate,
        gs = gate_speedup,
        pass = pass,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if !pass {
        eprintln!(
            "FAIL: lockstep speedup gate {gate}x at {gate_walkers} walkers \
             (hidden [{gate_hidden}, {gate_hidden}]) not met ({gate_speedup:.2}x)"
        );
        std::process::exit(1);
    }
}
