//! E10 — Per-iteration cost breakdown.
//!
//! Projected component costs (energy evaluation, proposal-network
//! inference, training, replica exchange, weight allreduce) per GPU on
//! V100 and MI250X from the performance model, plus measured CPU kernel
//! timings of the same components on this machine.
//!
//! ```text
//! cargo run -p dt-bench --release --bin table_cost_breakdown
//! ```

use dt_bench::{print_csv, timed, HeaSystem};
use dt_hamiltonian::EnergyModel;
use dt_hpc::{GpuSpec, PerfModel, WorkloadShape};
use dt_lattice::Configuration;
use dt_proposal::{
    DeepProposal, DeepProposalConfig, ProposalContext, ProposalKernel, ProposalTrainer,
    SampleBuffer, TrainerConfig,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("# E10: projected per-iteration cost breakdown (paper workload)");
    let shape = WorkloadShape::paper_default();
    let ranks = 1024;
    let mut rows = Vec::new();
    for gpu in [GpuSpec::v100(), GpuSpec::mi250x_gcd()] {
        let model = PerfModel::new(gpu.clone(), shape.clone());
        let b = model.iteration(ranks);
        rows.push(format!(
            "{},{ranks},{:.5},{:.5},{:.5},{:.6},{:.6},{:.5}",
            gpu.name,
            b.energy_eval_s,
            b.nn_inference_s,
            b.training_s,
            b.exchange_s,
            b.allreduce_s,
            b.total()
        ));
    }
    print_csv(
        "gpu,ranks,energy_eval_s,nn_inference_s,training_s,exchange_s,allreduce_s,total_s",
        &rows,
    );

    println!("\n# measured CPU kernel timings (this machine, NbMoTaW L=4)");
    let sys = HeaSystem::nbmotaw(4);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let config = Configuration::random(&sys.comp, &mut rng);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };

    let mut rows = Vec::new();
    // Full energy evaluation.
    let (_, t_total) = timed(|| {
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += sys.model.total_energy(&config, &sys.neighbors);
        }
        acc
    });
    rows.push(format!("total_energy_eval,{:.3}", t_total / 1000.0 * 1e6));

    // Incremental swap delta.
    let (_, t_swap) = timed(|| {
        let mut acc = 0.0;
        let n = sys.num_sites();
        let mut r = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100_000 {
            let a = r.random_range(0..n) as u32;
            let b = r.random_range(0..n) as u32;
            acc += sys.model.swap_delta(&config, &sys.neighbors, a, b);
        }
        acc
    });
    rows.push(format!("swap_delta,{:.4}", t_swap / 100_000.0 * 1e6));

    // Deep proposal (inference-dominated).
    let k = 32;
    let mut deep = DeepProposal::new(
        4,
        2,
        &DeepProposalConfig {
            k,
            hidden: vec![64, 64],
        },
        &mut rng,
    );
    let mut prop_rng = ChaCha8Rng::seed_from_u64(2);
    let (_, t_deep) = timed(|| {
        for _ in 0..200 {
            let _ = deep.propose(&config, &ctx, &mut prop_rng);
        }
    });
    rows.push(format!("deep_proposal_k{k},{:.1}", t_deep / 200.0 * 1e6));

    // Training epoch.
    let mut buffer = SampleBuffer::new(32);
    for _ in 0..32 {
        buffer.push(Configuration::random(&sys.comp, &mut rng), 0.0);
    }
    let mut trainer = ProposalTrainer::new(
        deep.layout(),
        TrainerConfig {
            k,
            ..TrainerConfig::default()
        },
    );
    let (_, t_train) = timed(|| {
        for _ in 0..5 {
            trainer.train_epoch(deep.net_mut(), &buffer, &sys.neighbors, &mut prop_rng);
        }
    });
    rows.push(format!("train_epoch_32cfg,{:.1}", t_train / 5.0 * 1e6));

    print_csv("kernel,microseconds", &rows);
}
