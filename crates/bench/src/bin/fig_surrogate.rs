//! E1 — Surrogate energy-model accuracy.
//!
//! Regenerates the paper's model-accuracy figure: MAE/RMSE/R² versus
//! training-set size, plus a parity-plot sample (truth vs prediction).
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_surrogate [-- --l 4]
//! ```

use dt_bench::{arg, print_csv, HeaSystem};
use dt_surrogate::{
    parity_points, Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel,
    TrainingOptions,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let sys = HeaSystem::nbmotaw(l);
    let descriptor = PairCorrelationDescriptor {
        num_species: 4,
        num_shells: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    println!("# E1: surrogate accuracy, NbMoTaW N={}", sys.num_sites());
    let mut rows = Vec::new();
    let mut last_model: Option<(SurrogateModel, Dataset)> = None;
    for &size in &[32usize, 64, 128, 256, 512, 1024] {
        let ds = Dataset::generate(
            &sys.model,
            &sys.neighbors,
            &sys.comp,
            descriptor,
            size + 128,
            SamplingStrategy::Annealed,
            &mut rng,
        );
        let (train, test) = ds.split(size as f64 / (size + 128) as f64);
        let (model, report) = SurrogateModel::train(
            descriptor,
            &train,
            &test,
            &TrainingOptions::default(),
            &mut rng,
        );
        rows.push(format!(
            "{size},{:.4},{:.4},{:.5}",
            report.test_mae * 1e3,
            report.test_rmse * 1e3,
            report.test_r2
        ));
        last_model = Some((model, test));
    }
    print_csv("train_size,mae_mev_site,rmse_mev_site,r2", &rows);

    // Parity sample from the largest model.
    let (model, test) = last_model.expect("trained");
    let pred = model.predict_rows(&test.x);
    let parity = parity_points(&pred, test.y.data());
    let rows: Vec<String> = parity
        .iter()
        .take(24)
        .map(|&(t, p)| format!("{t:.5},{p:.5}"))
        .collect();
    println!();
    print_csv("truth_ev_site,predicted_ev_site", &rows);
}
