//! E16 — adaptive energy windows versus the uniform layout.
//!
//! Runs the same E9-size REWL problem (NbMoTaW `--l 3`, 4 windows × 2
//! walkers, 64 bins, 0.75 overlap) twice per seed:
//!
//! * **uniform** — the static equal-width `WindowLayout::new` baseline;
//! * **adaptive** — `--adaptive-windows` semantics: per-window pilot
//!   round-trip costs refit the boundaries (`equal_diffusion`), plus
//!   dynamic walker reallocation every `--rebalance-every` rounds.
//!
//! Time-to-converged-DOS is measured in sweeps per walker (the
//! deterministic MC clock — machine-independent, so the gate is stable
//! on shared CI runners); wall seconds ride along for reference. The
//! `--gate` speedup (default 1.3x) is enforced on the *aggregate* over
//! all seeds — `Σ uniform sweeps / Σ adaptive sweeps` — and the run also
//! requires the measured per-window round-trip spread (max/min mean
//! moves per round trip) to shrink on every seed.
//!
//! The measured window costs then re-run the E7/E8 weak-scaling
//! projection ([`dt_hpc::reproject_with_imbalance`]): synchronous REWL
//! rounds gate on the slowest window, so the 3,000-GPU efficiency under
//! the uniform layout's cost skew versus the adaptive layout's residual
//! skew quantifies what equal-diffusion windows buy back at scale.
//!
//! Writes `--out` (default `BENCH_rewl_adaptive.json`) and exits
//! nonzero when a run fails to converge, the spread fails to shrink, or
//! the gate fails — a CI regression fence.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_rewl_adaptive \
//!     [-- --l 3 --seeds 3 --gate 1.3 --out BENCH_rewl_adaptive.json]
//! ```

use dt_bench::{arg, print_csv, timed, HeaSystem};
use dt_hpc::{
    reproject_with_imbalance, weak_scaling_table, window_imbalance_factor, GpuSpec, WorkloadShape,
};
use dt_rewl::{run_rewl, KernelSpec, RewlConfig, RewlOutput};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn config(seed: u64, adaptive: bool) -> RewlConfig {
    RewlConfig {
        num_windows: 4,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 64,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-4,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 4,
        max_sweeps: 400_000,
        seed,
        kernel: KernelSpec::LocalSwap,
        adaptive_windows: adaptive,
        rebalance_every: if adaptive { 4 } else { 0 },
        ..RewlConfig::default()
    }
}

/// Mean moves per round trip for every window; windows that never
/// completed a trip (none on this fixture) read as their raw leg moves.
fn window_costs(out: &RewlOutput) -> Vec<f64> {
    out.windows
        .iter()
        .map(|w| w.round_trip_moves as f64 / w.round_trips.max(1) as f64)
        .collect()
}

/// Max/min round-trip cost across windows — 1.0 means perfectly even.
fn spread(costs: &[f64]) -> f64 {
    let max = costs.iter().cloned().fold(f64::MIN, f64::max);
    let min = costs.iter().cloned().fold(f64::MAX, f64::min);
    max / min.max(1.0)
}

fn main() {
    let l: usize = arg("--l", 3);
    let seeds: u64 = arg("--seeds", 3);
    let gate: f64 = arg("--gate", 1.3);
    let out_path: String = arg("--out", "BENCH_rewl_adaptive.json".to_string());

    let sys = HeaSystem::nbmotaw(l);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut uniform_sweeps = 0u64;
    let mut adaptive_sweeps = 0u64;
    let mut uniform_wall = 0.0f64;
    let mut adaptive_wall = 0.0f64;
    let mut all_converged = true;
    let mut spread_shrinks = true;
    // Mean per-window costs across seeds, for the scaling reprojection.
    let mut uniform_cost_sum = vec![0.0f64; 4];
    let mut adaptive_cost_sum = vec![0.0f64; 4];

    for seed in 1..=seeds {
        let (uni, uni_s) = timed(|| {
            run_rewl(
                &sys.model,
                &sys.neighbors,
                &sys.comp,
                range,
                &config(seed, false),
            )
            .expect("uniform run failed")
        });
        let (ada, ada_s) = timed(|| {
            run_rewl(
                &sys.model,
                &sys.neighbors,
                &sys.comp,
                range,
                &config(seed, true),
            )
            .expect("adaptive run failed")
        });
        all_converged &= uni.converged && ada.converged;

        let uni_costs = window_costs(&uni);
        let ada_costs = window_costs(&ada);
        let (uni_spread, ada_spread) = (spread(&uni_costs), spread(&ada_costs));
        spread_shrinks &= ada_spread < uni_spread;
        for w in 0..4 {
            uniform_cost_sum[w] += uni_costs[w];
            adaptive_cost_sum[w] += ada_costs[w];
        }
        uniform_sweeps += uni.sweeps;
        adaptive_sweeps += ada.sweeps;
        uniform_wall += uni_s;
        adaptive_wall += ada_s;

        let speedup = uni.sweeps as f64 / ada.sweeps as f64;
        rows.push(format!(
            "{seed},{},{},{speedup:.2},{uni_spread:.2},{ada_spread:.2},{}",
            uni.sweeps, ada.sweeps, ada.walkers_rebalanced
        ));
        json_rows.push(format!(
            "    {{\"seed\": {seed}, \
             \"uniform\": {{\"sweeps\": {}, \"wall_s\": {uni_s:.2}, \"converged\": {}, \
             \"rt_spread\": {uni_spread:.3}}}, \
             \"adaptive\": {{\"sweeps\": {}, \"wall_s\": {ada_s:.2}, \"converged\": {}, \
             \"rt_spread\": {ada_spread:.3}, \"walkers_rebalanced\": {}}}, \
             \"speedup\": {speedup:.3}}}",
            uni.sweeps, uni.converged, ada.sweeps, ada.converged, ada.walkers_rebalanced
        ));
    }

    print_csv(
        "seed,uniform_sweeps,adaptive_sweeps,speedup,uniform_rt_spread,adaptive_rt_spread,walkers_rebalanced",
        &rows,
    );

    // E7/E8 reprojection: weak-scaling efficiency at the paper's
    // 3,000-GPU deployment under each layout's measured cost skew.
    let mean = |sums: &[f64]| sums.iter().map(|c| c / seeds as f64).collect::<Vec<_>>();
    let (uni_costs, ada_costs) = (mean(&uniform_cost_sum), mean(&adaptive_cost_sum));
    let shape = WorkloadShape::paper_default();
    let base = weak_scaling_table(&GpuSpec::v100(), &shape, &[8, 3000]);
    let uni_eff = reproject_with_imbalance(&base, &uni_costs)[1].efficiency;
    let ada_eff = reproject_with_imbalance(&base, &ada_costs)[1].efficiency;

    let speedup = uniform_sweeps as f64 / adaptive_sweeps as f64;
    let wall_speedup = uniform_wall / adaptive_wall;
    let pass = all_converged && spread_shrinks && speedup >= gate;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E16\",\n",
            "  \"fixture\": {{\"l\": {l}, \"windows\": 4, \"walkers_per_window\": 2, ",
            "\"bins\": 64, \"overlap\": 0.75, \"seeds\": {seeds}}},\n",
            "  \"runs\": [\n{runs}\n  ],\n",
            "  \"aggregate\": {{\"uniform_sweeps\": {us}, \"adaptive_sweeps\": {as_}, ",
            "\"speedup\": {sp:.3}, \"wall_speedup\": {wsp:.3}}},\n",
            "  \"projection_3000_gpus\": {{\"uniform_imbalance\": {uif:.3}, ",
            "\"adaptive_imbalance\": {aif:.3}, \"uniform_efficiency\": {ue:.3}, ",
            "\"adaptive_efficiency\": {ae:.3}}},\n",
            "  \"gate\": {{\"min_speedup\": {gate:.2}, \"speedup\": {sp:.3}, ",
            "\"all_converged\": {conv}, \"spread_shrinks\": {shrink}}},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        l = l,
        seeds = seeds,
        runs = json_rows.join(",\n"),
        us = uniform_sweeps,
        as_ = adaptive_sweeps,
        sp = speedup,
        wsp = wall_speedup,
        uif = window_imbalance_factor(&uni_costs),
        aif = window_imbalance_factor(&ada_costs),
        ue = uni_eff,
        ae = ada_eff,
        gate = gate,
        conv = all_converged,
        shrink = spread_shrinks,
        pass = pass,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if !pass {
        eprintln!(
            "FAIL: adaptive windows gate — speedup {speedup:.2}x (need {gate:.2}x), \
             all_converged={all_converged}, spread_shrinks={spread_shrinks}"
        );
        std::process::exit(1);
    }
}
