//! E7 — Weak scaling to 3,000 GPUs (V100 vs MI250X).
//!
//! Two layers (DESIGN.md, "Substitutions"): the projected table from the
//! calibrated performance model reproduces the paper's scaling shapes at
//! fleet sizes no laptop can host; the measured table runs the real
//! thread-parallel REWL at small walker counts on this machine.
//!
//! ```text
//! cargo run -p dt-bench --release --bin table_weak_scaling
//! ```

use dt_bench::{print_csv, timed, HeaSystem};
use dt_hpc::{weak_scaling_table, GpuSpec, WorkloadShape};
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("# E7: weak scaling (projected, perf model, paper workload)");
    let shape = WorkloadShape::paper_default();
    let ranks = [8usize, 32, 128, 512, 1024, 2048, 3000];
    for gpu in [GpuSpec::v100(), GpuSpec::mi250x_gcd()] {
        let rows: Vec<String> = weak_scaling_table(&gpu, &shape, &ranks)
            .into_iter()
            .map(|r| {
                format!(
                    "{},{},{:.5},{:.4e},{:.3}",
                    gpu.name, r.ranks, r.time_per_iteration_s, r.throughput, r.efficiency
                )
            })
            .collect();
        print_csv("gpu,ranks,s_per_iter,agg_moves_per_s,efficiency", &rows);
        println!();
    }

    println!("# E7b: measured thread-parallel REWL (this machine)");
    let sys = HeaSystem::nbmotaw(3);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);
    let mut rows = Vec::new();
    for (windows, per_window) in [(2usize, 1usize), (2, 2), (4, 2), (4, 4), (8, 4)] {
        let cfg = RewlConfig {
            num_windows: windows,
            walkers_per_window: per_window,
            overlap: 0.75,
            num_bins: 48,
            wl: WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-2,
                schedule: LnfSchedule::OneOverT {
                    flatness: 0.7,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            exchange_every_sweeps: 10,
            observe_every_sweeps: 4,
            max_sweeps: 10_000,
            seed: 1,
            kernel: KernelSpec::LocalSwap,
            ..RewlConfig::default()
        };
        let (out, wall) = timed(|| {
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed")
        });
        rows.push(format!(
            "{},{windows},{wall:.2},{:.4e}",
            windows * per_window,
            out.total_moves as f64 / wall
        ));
    }
    print_csv("walkers,windows,wall_s,agg_moves_per_s", &rows);
}
