//! E9 — Replica-exchange acceptance versus window overlap.
//!
//! Regenerates the overlap ablation: exchange acceptance between adjacent
//! windows as a function of the overlap fraction, per window pair.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_replica_exchange [-- --l 3]
//! ```

use dt_bench::{arg, print_csv, HeaSystem};
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let sys = HeaSystem::nbmotaw(l);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);
    println!(
        "# E9: replica-exchange acceptance vs overlap, NbMoTaW N={}",
        sys.num_sites()
    );

    let mut rows = Vec::new();
    for overlap in [0.5f64, 0.75, 0.9] {
        let cfg = RewlConfig {
            num_windows: 4,
            walkers_per_window: 2,
            overlap,
            num_bins: 64,
            wl: WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-3,
                schedule: LnfSchedule::OneOverT {
                    flatness: 0.7,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            exchange_every_sweeps: 10,
            observe_every_sweeps: 4,
            max_sweeps: 100_000,
            seed: 5,
            kernel: KernelSpec::LocalSwap,
            ..RewlConfig::default()
        };
        let out =
            run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed");
        for w in &out.windows {
            if w.exchange_attempts > 0 {
                rows.push(format!(
                    "{overlap},{},{},{},{:.4}",
                    w.window,
                    w.exchange_attempts,
                    w.exchange_accepted,
                    w.exchange_rate()
                ));
            }
        }
    }
    print_csv("overlap,window_pair,attempts,accepted,acceptance", &rows);
    println!("\n# expected shape: acceptance grows with overlap (more shared");
    println!("# energy support between adjacent windows)");
}
