//! E13 — batched inference engine throughput versus the batch-1 seed path.
//!
//! Reproduces the two hot inference workloads of the deep proposal on an
//! NbMoTaW fixture and times each twice:
//!
//! * **reverse replay** — the teacher-forced `log_prob_of_reassignment`
//!   computed on every Metropolis–Hastings step, as one k-row batched
//!   forward (engine) versus k sequential allocating batch-1 passes
//!   (`Matrix::row_vector` + `Mlp::forward` + per-step mask `Vec` +
//!   allocating `log_softmax_masked` — the seed implementation);
//! * **training forward** — the teacher-forced feature chunk a
//!   `ProposalTrainer` epoch consumes, as one multi-row forward versus
//!   row-by-row batch-1 passes.
//!
//! Asserts the batched log-probabilities are **bit-identical** to the
//! batch-1 references, counts heap allocations per forward on both paths,
//! enforces the `--gate` speedup (default 3x) on both workloads, and
//! writes the measurements to `--out` (default `BENCH_inference.json`).
//! Exits nonzero if identity or the gate fails, so CI can use it as a
//! regression fence.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_inference \
//!     [-- --l 4 --pairs 16 --reps 100 --gate 3.0 --out BENCH_inference.json]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dt_bench::{arg, print_csv, timed, HeaSystem};
use dt_lattice::{Configuration, NeighborTable, SiteId, Species};
use dt_nn::{log_softmax_masked, ForwardScratch, Matrix, Mlp};
use dt_proposal::{
    DeepProposal, DeepProposalConfig, FeatureLayout, ProposalContext, ProposalKernel, ProposedMove,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count heap allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// The seed implementation of teacher-forced replay: one allocating
/// batch-1 forward per site.
fn replay_batch1(
    net: &Mlp,
    layout: FeatureLayout,
    config: &Configuration,
    neighbors: &NeighborTable,
    sites: &[SiteId],
    targets: &[Species],
) -> f64 {
    let m = layout.num_species;
    let n = config.num_sites();
    let mut work = config.species().to_vec();
    let mut decided = vec![true; n];
    for &s in sites {
        decided[s as usize] = false;
    }
    let mut remaining = vec![0usize; m];
    for &s in sites {
        remaining[config.species_at(s).index()] += 1;
    }
    let k = sites.len();
    let mut feat = vec![0.0; layout.dim()];
    let mut total = 0.0;
    for (step, (&site, &target)) in sites.iter().zip(targets).enumerate() {
        layout.fill(
            &mut feat,
            site,
            neighbors,
            &work,
            &decided,
            &remaining,
            k - step,
            step as f64 / k as f64,
        );
        let logits = net.forward(&Matrix::row_vector(&feat));
        let mask: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
        let logp = log_softmax_masked(logits.row(0), Some(&mask));
        total += logp[target.index()];
        remaining[target.index()] -= 1;
        work[site as usize] = target;
        decided[site as usize] = true;
    }
    total
}

fn main() {
    let l: usize = arg("--l", 4);
    let k: usize = arg("--k", 32);
    let pairs: usize = arg("--pairs", 16);
    let reps: usize = arg("--reps", 100);
    let passes: usize = arg("--passes", 5);
    // The packed vector kernel is compiled out below AVX (see
    // dt-nn::infer); without it only the scalar-tile engine runs, so the
    // default gate drops accordingly. CI builds with
    // `-C target-cpu=x86-64-v3` and pins `--gate 3.0`.
    let avx = cfg!(target_feature = "avx");
    let gate: f64 = arg("--gate", if avx { 3.0 } else { 1.5 });
    let out_path: String = arg("--out", "BENCH_inference.json".to_string());
    if !avx {
        eprintln!(
            "note: compiled without AVX; packed kernel inactive \
             (build with RUSTFLAGS=\"-C target-cpu=x86-64-v3\" for full speed)"
        );
    }

    let sys = HeaSystem::nbmotaw(l);
    let ctx = ProposalContext {
        neighbors: &sys.neighbors,
        composition: &sys.comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let config = Configuration::random(&sys.comp, &mut rng);
    let mut kern = DeepProposal::new(
        sys.comp.num_species(),
        2,
        &DeepProposalConfig {
            k,
            hidden: vec![64, 64],
        },
        &mut rng,
    );
    kern.warm_up(sys.num_sites());
    let layout = kern.layout();
    let dim = layout.dim();

    // Fixed (sites, targets) pairs drawn from the kernel itself.
    let moves: Vec<(Vec<SiteId>, Vec<Species>)> = (0..pairs)
        .map(|_| {
            let p = kern.propose(&config, &ctx, &mut rng);
            let ProposedMove::Reassign { moves } = &p.mv else {
                panic!("deep kernel must emit a reassignment")
            };
            (
                moves.iter().map(|&(s, _)| s).collect(),
                moves.iter().map(|&(_, t)| t).collect(),
            )
        })
        .collect();

    // Bit-identity fence: the batched engine must reproduce the seed
    // path exactly or the speedup is meaningless for MH sampling.
    for (sites, targets) in &moves {
        let batched = kern.log_prob_of_reassignment(&config, &sys.neighbors, sites, targets);
        let reference = replay_batch1(kern.net(), layout, &config, &sys.neighbors, sites, targets);
        assert_eq!(
            batched.to_bits(),
            reference.to_bits(),
            "batched replay diverged: {batched} vs {reference}"
        );
    }

    // Allocations per forward pass on each path (steady state).
    let (s0, t0) = &moves[0];
    let allocs_batch1 = allocations_in(|| {
        std::hint::black_box(replay_batch1(
            kern.net(),
            layout,
            &config,
            &sys.neighbors,
            s0,
            t0,
        ));
    }) as f64
        / k as f64;
    let allocs_batched = allocations_in(|| {
        std::hint::black_box(kern.log_prob_of_reassignment(&config, &sys.neighbors, s0, t0));
    }) as f64;

    // Reverse-replay throughput: best of `passes` timing passes per
    // path, so scheduler noise on shared runners cannot sink either side.
    let mut sink = 0.0;
    let total_rows = (reps * pairs * k) as f64;
    let mut replay_b1_rows_s = 0.0f64;
    let mut replay_batched_rows_s = 0.0f64;
    for _ in 0..passes {
        let (_, sec) = timed(|| {
            for _ in 0..reps {
                for (sites, targets) in &moves {
                    sink +=
                        replay_batch1(kern.net(), layout, &config, &sys.neighbors, sites, targets);
                }
            }
        });
        replay_b1_rows_s = replay_b1_rows_s.max(total_rows / sec);
        let (_, sec) = timed(|| {
            for _ in 0..reps {
                for (sites, targets) in &moves {
                    sink += kern.log_prob_of_reassignment(&config, &sys.neighbors, sites, targets);
                }
            }
        });
        replay_batched_rows_s = replay_batched_rows_s.max(total_rows / sec);
    }
    assert!(sink.is_finite());
    let replay_speedup = replay_batched_rows_s / replay_b1_rows_s;

    // Training-forward throughput: the teacher-forced feature chunk of a
    // trainer epoch, batch-1 versus one multi-row forward.
    let train_rows = pairs * k;
    let mut chunk = vec![0.0; train_rows * dim];
    {
        // Teacher-forced features, identical construction to replay.
        let m = layout.num_species;
        for (pair, (sites, targets)) in moves.iter().enumerate() {
            let mut work = config.species().to_vec();
            let mut decided = vec![true; config.num_sites()];
            for &s in sites {
                decided[s as usize] = false;
            }
            let mut remaining = vec![0usize; m];
            for &s in sites {
                remaining[config.species_at(s).index()] += 1;
            }
            for (step, (&site, &target)) in sites.iter().zip(targets).enumerate() {
                let row = pair * k + step;
                layout.fill(
                    &mut chunk[row * dim..(row + 1) * dim],
                    site,
                    &sys.neighbors,
                    &work,
                    &decided,
                    &remaining,
                    k - step,
                    step as f64 / k as f64,
                );
                remaining[target.index()] -= 1;
                work[site as usize] = target;
                decided[site as usize] = true;
            }
        }
    }
    let net = kern.net().clone();
    let mut scratch = ForwardScratch::for_mlp(&net, train_rows);
    let mut sink2 = 0.0;
    let train_total_rows = (reps * train_rows) as f64;
    let mut train_b1_rows_s = 0.0f64;
    let mut train_batched_rows_s = 0.0f64;
    for _ in 0..passes {
        let (_, sec) = timed(|| {
            for _ in 0..reps {
                for row in chunk.chunks_exact(dim) {
                    let out = net.forward(&Matrix::row_vector(row));
                    sink2 += out.data()[0];
                }
            }
        });
        train_b1_rows_s = train_b1_rows_s.max(train_total_rows / sec);
        let (_, sec) = timed(|| {
            for _ in 0..reps {
                let out = net.forward_into(&chunk, train_rows, &mut scratch);
                sink2 += out[0];
            }
        });
        train_batched_rows_s = train_batched_rows_s.max(train_total_rows / sec);
    }
    assert!(sink2.is_finite());
    let train_speedup = train_batched_rows_s / train_b1_rows_s;

    print_csv(
        "workload,batch1_rows_per_s,batched_rows_per_s,speedup,allocs_per_forward_batch1,allocs_per_forward_batched",
        &[
            format!(
                "reverse_replay,{replay_b1_rows_s:.0},{replay_batched_rows_s:.0},{replay_speedup:.2},{allocs_batch1:.1},{allocs_batched:.1}"
            ),
            format!(
                "training_forward,{train_b1_rows_s:.0},{train_batched_rows_s:.0},{train_speedup:.2},,"
            ),
        ],
    );

    let pass = replay_speedup >= gate && train_speedup >= gate;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E13\",\n",
            "  \"fixture\": {{\"l\": {l}, \"k\": {k}, \"hidden\": [64, 64], \"pairs\": {pairs}, \"reps\": {reps}}},\n",
            "  \"reverse_replay\": {{\"batch1_rows_per_s\": {rb1:.1}, \"batched_rows_per_s\": {rb:.1}, \"speedup\": {rs:.3}}},\n",
            "  \"training_forward\": {{\"batch1_rows_per_s\": {tb1:.1}, \"batched_rows_per_s\": {tb:.1}, \"speedup\": {ts:.3}}},\n",
            "  \"allocs_per_forward\": {{\"batch1\": {ab1:.2}, \"batched\": {ab:.2}}},\n",
            "  \"avx\": {avx},\n",
            "  \"bit_identical\": true,\n",
            "  \"gate\": {gate:.1},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        l = l,
        k = k,
        pairs = pairs,
        reps = reps,
        rb1 = replay_b1_rows_s,
        rb = replay_batched_rows_s,
        rs = replay_speedup,
        tb1 = train_b1_rows_s,
        tb = train_batched_rows_s,
        ts = train_speedup,
        ab1 = allocs_batch1,
        ab = allocs_batched,
        avx = avx,
        gate = gate,
        pass = pass,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if !pass {
        eprintln!(
            "FAIL: speedup gate {gate}x not met (replay {replay_speedup:.2}x, training {train_speedup:.2}x)"
        );
        std::process::exit(1);
    }
}
