//! E4 — Thermodynamics of NbMoTaW from the sampled DOS.
//!
//! Regenerates the U(T) / C_v(T) / S(T) / F(T) curves and the
//! order–disorder transition estimate.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_thermo [-- --l 3]
//! ```

use deepthermo::{DeepThermo, DeepThermoConfig, MaterialSpec};
use dt_bench::{arg, print_csv};

fn main() {
    let l: usize = arg("--l", 3);
    let mut cfg = DeepThermoConfig::quick_demo();
    cfg.material = MaterialSpec::nbmotaw(l);
    cfg.rewl.max_sweeps = 150_000;
    cfg.rewl.wl.ln_f_final = 3e-4;
    // Start above the DOS-noise floor: ln g errors in the rarely-visited
    // ground-state bins are exponentially amplified below ~300 K and
    // produce spurious low-T Cv structure (a standard flat-histogram
    // caveat; deeper ln_f_final pushes the floor down).
    cfg.temperatures = dt_thermo::temperature_grid(300.0, 3000.0, 109);
    let n = cfg.material.num_sites();

    println!("# E4: thermodynamics of NbMoTaW N={n}");
    let report = DeepThermo::nbmotaw(cfg)
        .expect("valid config")
        .run()
        .expect("sampling failed");

    let rows: Vec<String> = report
        .thermo
        .iter()
        .map(|p| {
            format!(
                "{:.1},{:.5},{:.5},{:.5},{:.5}",
                p.t,
                p.u / n as f64,
                p.cv / n as f64,
                p.f / n as f64,
                p.s / n as f64
            )
        })
        .collect();
    print_csv("T_K,U_eV_atom,Cv_kB_atom,F_eV_atom,S_kB_atom", &rows);

    println!(
        "\n# order-disorder transition: T_c = {:.0} K, Cv peak {:.3} kB/atom",
        report.transition_temperature,
        report.cv_peak / n as f64
    );
    println!(
        "# S(T_max)/atom = {:.3} kB (ideal mixing ln 4 = {:.3})",
        report.thermo.last().expect("points").s / n as f64,
        4f64.ln()
    );
    println!("# converged: {}", report.converged);
}
