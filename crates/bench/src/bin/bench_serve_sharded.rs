//! E14 — sharded serving fleet: throughput scaling, tail latency, and
//! single-flight stampede suppression.
//!
//! Three measurements against in-process fleets ([`dt_serve::Fleet`]:
//! router + shard threads over real loopback TCP):
//!
//! * **stampede** — 64 concurrent requesters hit one cold key through
//!   the router; the fleet-wide `thermo_evaluations` counter must read
//!   exactly 1 (single-flight collapsed the herd onto one fill). This
//!   gate is always enforced — it is a correctness property, not a
//!   performance one.
//! * **scaling** — a Zipf(1.0) keyed workload over ~32 artifacts,
//!   warmed so every request is a shard-cache hit, driven against a
//!   1-shard and a 4-shard fleet. Gates: cached req/s scales ≥ `--gate`
//!   (default 3x) from 1 to 4 shards, and the 4-shard p99 stays below
//!   5x the single-shard p99.
//!
//! The scaling gates need real parallelism: on fewer than
//! `--min-cores` (default 8) hardware threads a 4-shard fleet cannot
//! beat one shard on wall clock, so the gates are reported but not
//! enforced (`gates_enforced: false` in the JSON).
//!
//! Writes `--out` (default `BENCH_serve_sharded.json`) and exits
//! nonzero if an enforced gate fails.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_serve_sharded \
//!     [-- --keys 32 --connections 8 --requests 400 --gate 3.0]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dt_bench::arg;
use dt_serve::fixture::fixture_artifact;
use dt_serve::{ArtifactRegistry, Fleet, RouterConfig, ServeConfig, ShardConfig};
use dt_telemetry::{parse_json, JsonValue};

/// Read one HTTP response off a keep-alive stream: (status, body).
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(raw.as_bytes()).expect("write");
    read_response(&mut BufReader::new(stream))
}

fn post_thermo_raw(body: &str) -> String {
    format!(
        "POST /v1/thermo HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn thermo_body(key: &str, num_t: usize) -> String {
    format!("{{\"artifact\":\"{key}\",\"t_min\":300,\"t_max\":3000,\"num_t\":{num_t}}}")
}

/// Deterministic splitmix64 stream for Zipf sampling — no RNG crate
/// needed for a key-picking distribution.
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf(1.0) weights over ranks `1..=n`.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 1..=n {
        total += 1.0 / r as f64;
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn zipf_pick(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Drive `connections x requests` keep-alive Zipf-keyed requests.
/// Returns (sorted latencies in ns, wall time).
fn drive_zipf(
    addr: SocketAddr,
    connections: usize,
    requests: usize,
    keys: Arc<Vec<String>>,
    num_t: usize,
) -> (Vec<u64>, Duration) {
    let cdf = Arc::new(zipf_cdf(keys.len()));
    let started = Instant::now();
    let threads: Vec<_> = (0..connections)
        .map(|c| {
            let keys = Arc::clone(&keys);
            let cdf = Arc::clone(&cdf);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut rng = SplitMix(0xe14 + c as u64);
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let key = &keys[zipf_pick(&cdf, rng.next_f64())];
                    let raw = post_thermo_raw(&thermo_body(key, num_t));
                    let t0 = Instant::now();
                    writer.write_all(raw.as_bytes()).expect("write");
                    let (status, body) = read_response(&mut reader);
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "request {i} on connection {c}: {body}");
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::with_capacity(connections * requests);
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    let wall = started.elapsed();
    all.sort_unstable();
    (all, wall)
}

fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    let idx = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e3
}

fn fleet_registry(keys: &[String]) -> ArtifactRegistry {
    let mut registry = ArtifactRegistry::new();
    for key in keys {
        let tag = key.strip_prefix("fixture-").unwrap_or(key);
        registry.insert(fixture_artifact(tag));
    }
    registry
}

fn launch(shards: usize, registry: &ArtifactRegistry, workers: usize) -> Fleet {
    Fleet::launch(
        shards,
        registry,
        RouterConfig {
            serve: ServeConfig {
                workers,
                queue_depth: 1024,
                queue_deadline: Duration::from_secs(30),
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        },
        &ShardConfig::default(),
    )
    .expect("fleet launch")
}

/// The fleet-wide `thermo_evaluations` sum from the router's `/metrics`.
fn fleet_evaluations(addr: SocketAddr) -> u64 {
    let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    parse_json(&body)
        .expect("metrics json")
        .get("fleet_counters")
        .and_then(|c| c.get("thermo_evaluations"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

/// One cached-workload measurement: warm every key, drive Zipf traffic.
fn measure(
    shards: usize,
    keys: &Arc<Vec<String>>,
    registry: &ArtifactRegistry,
    connections: usize,
    requests: usize,
    workers: usize,
    num_t: usize,
) -> (f64, f64, f64) {
    let fleet = launch(shards, registry, workers);
    let addr = fleet.local_addr();
    for key in keys.iter() {
        let (status, body) = request(addr, &post_thermo_raw(&thermo_body(key, num_t)));
        assert_eq!(status, 200, "warmup of {key}: {body}");
    }
    let (latencies, wall) = drive_zipf(addr, connections, requests, Arc::clone(keys), num_t);
    let total = (connections * requests) as f64;
    let (_, shard_stats) = fleet.join();
    for s in shard_stats {
        assert_eq!(s.expect("clean shard exit").handler_panics, 0);
    }
    (
        total / wall.as_secs_f64(),
        quantile_us(&latencies, 0.50),
        quantile_us(&latencies, 0.99),
    )
}

/// 64 requesters release together on one cold key; count evaluations.
fn stampede(requesters: usize, num_t: usize) -> (u64, usize) {
    let keys = vec!["fixture-cold".to_string()];
    let registry = fleet_registry(&keys);
    let fleet = launch(1, &registry, 16);
    let addr = fleet.local_addr();
    let barrier = Arc::new(Barrier::new(requesters));
    let threads: Vec<_> = (0..requesters)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let raw = post_thermo_raw(&thermo_body("fixture-cold", num_t));
                barrier.wait();
                request(addr, &raw).0
            })
        })
        .collect();
    let oks = threads
        .into_iter()
        .map(|t| t.join().expect("requester"))
        .filter(|&s| s == 200)
        .count();
    let evaluations = fleet_evaluations(addr);
    fleet.join();
    (evaluations, oks)
}

fn main() {
    let num_keys: usize = arg("--keys", 32);
    let connections: usize = arg("--connections", 8);
    let requests: usize = arg("--requests", 400);
    let num_t: usize = arg("--num-t", 64);
    let workers: usize = arg("--serve-workers", 8);
    let gate: f64 = arg("--gate", 3.0);
    let min_cores: usize = arg("--min-cores", 8);
    let out_path: String = arg("--out", "BENCH_serve_sharded.json".to_string());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // A 4-shard fleet runs 1 router + 4 shard dispatchers + worker
    // pools; without enough hardware threads the shards time-slice one
    // core and wall-clock scaling is physically impossible.
    let gates_enforced = cores >= min_cores;

    let keys: Arc<Vec<String>> =
        Arc::new((0..num_keys).map(|i| format!("fixture-z{i:02}")).collect());
    let registry = fleet_registry(&keys);
    println!(
        "# E14: sharded serve — {num_keys} Zipf(1.0) keys, {connections} connections x \
         {requests} requests, {cores} cores (scaling gates {})",
        if gates_enforced {
            "enforced"
        } else {
            "reported only"
        }
    );

    // Stampede first: a dedicated cold fleet, so no warmup pollutes the
    // evaluation counter.
    let requesters = 64;
    let (evaluations, oks) = stampede(requesters, 512);
    let stampede_pass = evaluations == 1 && oks == requesters;
    println!("# stampede: {requesters} requesters -> {evaluations} evaluation(s), {oks} x 200");

    let (rps1, p50_1, p99_1) = measure(1, &keys, &registry, connections, requests, workers, num_t);
    let (rps4, p50_4, p99_4) = measure(4, &keys, &registry, connections, requests, workers, num_t);
    let scaling = rps4 / rps1;
    let tail_ratio = p99_4 / p99_1;
    println!("# 1 shard: {rps1:.0} req/s, p50 {p50_1:.1} us, p99 {p99_1:.1} us");
    println!("# 4 shards: {rps4:.0} req/s, p50 {p50_4:.1} us, p99 {p99_4:.1} us");
    println!("# scaling {scaling:.2}x (gate {gate:.1}x), p99 ratio {tail_ratio:.2}x (gate 5x)");

    let scaling_pass = scaling >= gate;
    let tail_pass = tail_ratio < 5.0;
    let pass = stampede_pass && (!gates_enforced || (scaling_pass && tail_pass));
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E14\",\n",
            "  \"fixture\": {{\"keys\": {keys}, \"connections\": {connections}, \"requests\": {requests}, \"num_t\": {num_t}}},\n",
            "  \"stampede\": {{\"requesters\": {requesters}, \"evaluations\": {evaluations}, \"ok_responses\": {oks}, \"pass\": {stampede_pass}}},\n",
            "  \"shards_1\": {{\"req_per_s\": {rps1:.1}, \"p50_us\": {p50_1:.1}, \"p99_us\": {p99_1:.1}}},\n",
            "  \"shards_4\": {{\"req_per_s\": {rps4:.1}, \"p50_us\": {p50_4:.1}, \"p99_us\": {p99_4:.1}}},\n",
            "  \"scaling\": {scaling:.3},\n",
            "  \"p99_ratio\": {tail_ratio:.3},\n",
            "  \"cores\": {cores},\n",
            "  \"gate\": {gate:.1},\n",
            "  \"gates_enforced\": {gates_enforced},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        keys = num_keys,
        connections = connections,
        requests = requests,
        num_t = num_t,
        requesters = requesters,
        evaluations = evaluations,
        oks = oks,
        stampede_pass = stampede_pass,
        rps1 = rps1,
        p50_1 = p50_1,
        p99_1 = p99_1,
        rps4 = rps4,
        p50_4 = p50_4,
        p99_4 = p99_4,
        scaling = scaling,
        tail_ratio = tail_ratio,
        cores = cores,
        gate = gate,
        gates_enforced = gates_enforced,
        pass = pass,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if !pass {
        if !stampede_pass {
            eprintln!(
                "FAIL: stampede gate — expected 1 evaluation and {requesters} x 200, \
                 got {evaluations} and {oks}"
            );
        }
        if gates_enforced && !scaling_pass {
            eprintln!("FAIL: scaling gate — {scaling:.2}x < {gate:.1}x");
        }
        if gates_enforced && !tail_pass {
            eprintln!("FAIL: tail gate — p99 ratio {tail_ratio:.2}x >= 5x");
        }
        std::process::exit(1);
    }
}
