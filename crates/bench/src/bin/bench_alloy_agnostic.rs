//! E17 — the alloy-agnostic material layer, end to end.
//!
//! Runs every built-in material of the registry through the same
//! pipeline the CLI drives — surrogate training on the material's EPI
//! Hamiltonian, REWL to DOS convergence, canonical thermodynamics —
//! and gates that the layer generalizes beyond the paper's NbMoTaW
//! fixture:
//!
//! * **convergence** — each material's REWL run reaches its `ln f`
//!   target within `--max-sweeps`;
//! * **surrogate quality** — a surrogate trained on each material's
//!   descriptor reaches test R² ≥ `--r2-gate` (the pair-correlation
//!   descriptor is a sufficient statistic for any EPI Hamiltonian, so
//!   high R² must hold for *every* material, not just NbMoTaW);
//! * **physicality** — hot entropy per atom approaches (from below) the
//!   ideal-mixing bound of the material's composition, and C_v ≥ 0
//!   everywhere.
//!
//! Writes `--out` (default `BENCH_alloy_agnostic.json`) and exits
//! nonzero when any gate fails — the CI fence for the material layer.
//!
//! ```text
//! cargo run -p dt-bench --release --bin bench_alloy_agnostic \
//!     [-- --l 2 --r2-gate 0.9 --out BENCH_alloy_agnostic.json]
//! ```

use dt_bench::{arg, print_csv, timed, HeaSystem};
use dt_hamiltonian::Material;
use dt_rewl::{run_rewl, KernelSpec, RewlConfig};
use dt_surrogate::{Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel};
use dt_thermo::{canonical_curve, temperature_grid, KB_EV_PER_K};
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rewl_config(seed: u64, max_sweeps: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 40,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-3,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 4,
        max_sweeps,
        seed,
        kernel: KernelSpec::LocalSwap,
        ..RewlConfig::default()
    }
}

struct MaterialResult {
    key: String,
    converged: bool,
    sweeps: u64,
    wall_s: f64,
    r2: f64,
    s_hot_frac: f64,
    cv_ok: bool,
}

fn run_material(mat: &Material, l: usize, max_sweeps: u64, train_count: usize) -> MaterialResult {
    let sys = HeaSystem::from_material(mat, l);
    let mut rng = ChaCha8Rng::seed_from_u64(17);

    // Surrogate quality on this material's energy surface.
    let descriptor = PairCorrelationDescriptor {
        num_species: mat.num_species(),
        num_shells: mat.num_shells(),
    };
    let data = Dataset::generate(
        &sys.model,
        &sys.neighbors,
        &sys.comp,
        descriptor,
        train_count,
        SamplingStrategy::Annealed,
        &mut rng,
    );
    let (train, test) = data.split(0.8);
    let opts = dt_surrogate::TrainingOptions {
        hidden: vec![32],
        epochs: 250,
        ..Default::default()
    };
    let (_, train_report) = SurrogateModel::train(descriptor, &train, &test, &opts, &mut rng);

    // REWL to convergence on the true Hamiltonian.
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);
    let (out, wall_s) = timed(|| {
        run_rewl(
            &sys.model,
            &sys.neighbors,
            &sys.comp,
            range,
            &rewl_config(5, max_sweeps),
        )
        .expect("REWL run failed")
    });

    // Canonical thermodynamics from the sampled DOS.
    let mut dos = out.dos.clone();
    dos.normalize_total(sys.comp.ln_num_configurations(), Some(&out.mask));
    let (mut energies, mut ln_g) = (Vec::new(), Vec::new());
    for (b, &vis) in out.mask.iter().enumerate() {
        if vis {
            energies.push(dos.grid().center(b));
            ln_g.push(dos.ln_g_bin(b));
        }
    }
    let temps = temperature_grid(200.0, 3000.0, 40);
    let curve = canonical_curve(&energies, &ln_g, &temps, KB_EV_PER_K);
    let n = sys.comp.num_sites() as f64;
    let s_max = sys.comp.ln_num_configurations() / n;
    let s_hot = curve.last().expect("curve").s / n;

    MaterialResult {
        key: mat.key().to_string(),
        converged: out.converged,
        sweeps: out.sweeps,
        wall_s,
        r2: train_report.test_r2,
        s_hot_frac: s_hot / s_max,
        cv_ok: curve.iter().all(|p| p.cv >= -1e-9 && p.cv.is_finite()),
    }
}

fn main() {
    let l: usize = arg("--l", 2);
    let max_sweeps: u64 = arg("--max-sweeps", 200_000);
    let r2_gate: f64 = arg("--r2-gate", 0.9);
    let train_count: usize = arg("--train-count", 240);
    let out_path: String = arg("--out", "BENCH_alloy_agnostic.json".to_string());

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut pass = true;
    for name in Material::builtin_names() {
        let mat = Material::builtin(name).expect("registry name");
        let r = run_material(&mat, l, max_sweeps, train_count);
        // Hot entropy must close in on ideal mixing without exceeding it.
        let s_ok = r.s_hot_frac > 0.6 && r.s_hot_frac < 1.02;
        let mat_pass = r.converged && r.r2 >= r2_gate && s_ok && r.cv_ok;
        pass &= mat_pass;
        rows.push(format!(
            "{},{},{},{:.1},{:.4},{:.3},{},{}",
            r.key, r.converged, r.sweeps, r.wall_s, r.r2, r.s_hot_frac, r.cv_ok, mat_pass
        ));
        json_rows.push(format!(
            "    {{\"material\": \"{}\", \"structure\": \"{}\", \"species\": {}, \
             \"shells\": {}, \"converged\": {}, \"sweeps\": {}, \"wall_s\": {:.2}, \
             \"surrogate_r2\": {:.4}, \"s_hot_over_s_max\": {:.4}, \"cv_nonnegative\": {}, \
             \"pass\": {}}}",
            r.key,
            mat.structure().name(),
            mat.num_species(),
            mat.num_shells(),
            r.converged,
            r.sweeps,
            r.wall_s,
            r.r2,
            r.s_hot_frac,
            r.cv_ok,
            mat_pass
        ));
    }

    print_csv(
        "material,converged,sweeps,wall_s,surrogate_r2,s_hot_frac,cv_ok,pass",
        &rows,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E17\",\n",
            "  \"fixture\": {{\"l\": {l}, \"windows\": 2, \"walkers_per_window\": 2, ",
            "\"bins\": 40, \"train_count\": {tc}}},\n",
            "  \"materials\": [\n{rows}\n  ],\n",
            "  \"gate\": {{\"min_surrogate_r2\": {r2:.2}, ",
            "\"s_hot_frac_range\": [0.6, 1.02], \"all_converged\": true}},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        l = l,
        tc = train_count,
        rows = json_rows.join(",\n"),
        r2 = r2_gate,
        pass = pass,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");

    if !pass {
        eprintln!("FAIL: alloy-agnostic gate — see {out_path}");
        std::process::exit(1);
    }
}
