//! E11 — Measured phase breakdown vs the roofline cost model.
//!
//! Runs a small telemetry-instrumented REWL sampling of NbMoTaW with the
//! deep proposal kernel, prints the per-rank phase-timing table, and then
//! compares the measured cross-rank phase *shares* (energy evaluation,
//! proposal-network inference, training, replica exchange, weight
//! allreduce) against the analytic performance model's projected cost
//! breakdown for the paper workload.
//!
//! ```text
//! cargo run -p dt-bench --release --bin fig_phase_breakdown [-- --l 3]
//! ```

use dt_bench::{arg, timed, HeaSystem};
use dt_hpc::{comparison_table, measured_vs_modeled, GpuSpec, PerfModel, WorkloadShape};
use dt_proposal::DeepProposalConfig;
use dt_rewl::{run_rewl, DeepSpec, KernelSpec, RewlConfig};
use dt_telemetry::PhaseBreakdown;
use dt_wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let l: usize = arg("--l", 3);
    let sys = HeaSystem::nbmotaw(l);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&sys.model, &sys.neighbors, &sys.comp, 30, 0.02, &mut rng);

    let cfg = RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: (16 * l * l).min(512),
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-2,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 4,
        max_sweeps: arg("--max-sweeps", 30_000u64),
        seed: arg("--seed", 1),
        kernel: KernelSpec::Deep(Box::new(DeepSpec {
            proposal: DeepProposalConfig {
                k: 8,
                hidden: vec![24],
            },
            deep_weight: 0.2,
            ..DeepSpec::default()
        })),
        telemetry: true,
        ..RewlConfig::default()
    };

    println!(
        "# E11: measured phase breakdown, NbMoTaW N={}, {} windows x {} walkers, deep proposals",
        sys.num_sites(),
        cfg.num_windows,
        cfg.walkers_per_window
    );
    let (out, wall) = timed(|| {
        run_rewl(&sys.model, &sys.neighbors, &sys.comp, range, &cfg).expect("sampling failed")
    });
    println!(
        "# wall {wall:.2} s, {} total moves, converged: {}\n",
        out.total_moves, out.converged
    );

    println!("{}", dt_telemetry::phase_table(&out.telemetry));

    let measured = PhaseBreakdown::aggregate(&out.telemetry);
    let modeled = PerfModel::new(GpuSpec::v100(), WorkloadShape::paper_default())
        .iteration(cfg.num_windows * cfg.walkers_per_window);
    println!("# measured shares (this machine) vs modeled shares (V100 roofline, paper workload)");
    print!(
        "{}",
        comparison_table(&measured_vs_modeled(&measured, &modeled))
    );
    println!(
        "\n# accounted phase time: {:.2} s of {:.2} s aggregate wall across {} ranks",
        measured.accounted_s(),
        wall * out.telemetry.len() as f64,
        out.telemetry.len()
    );
}
