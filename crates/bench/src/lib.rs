//! # dt-bench
//!
//! The benchmark harness: regenerates every table and figure of the
//! reconstructed DeepThermo evaluation (see DESIGN.md, "Reconstructed
//! experiment index", and EXPERIMENTS.md for measured results).
//!
//! Two kinds of targets:
//!
//! * **figure/table binaries** (`src/bin/fig_*.rs`, `table_*.rs`) — print
//!   the rows/series of each experiment to stdout in CSV-ish form:
//!   `cargo run -p dt-bench --release --bin fig_dos`
//! * **criterion benches** (`benches/*.rs`) — micro/meso benchmarks of the
//!   computational kernels: `cargo bench -p dt-bench`
//!
//! This library holds the fixtures and helpers they share.

#![forbid(unsafe_code)]

use dt_hamiltonian::{nbmotaw, Material, PairHamiltonian};
use dt_lattice::{Composition, NeighborTable, Structure, Supercell};

/// A ready-to-sample alloy system.
pub struct HeaSystem {
    /// The supercell.
    pub cell: Supercell,
    /// Shell-resolved neighbor lists.
    pub neighbors: NeighborTable,
    /// The site composition.
    pub comp: Composition,
    /// The EPI Hamiltonian.
    pub model: PairHamiltonian,
}

impl HeaSystem {
    /// Equiatomic NbMoTaW on a BCC `L³` supercell.
    pub fn nbmotaw(l: usize) -> Self {
        let cell = Supercell::cubic(Structure::bcc(), l);
        let neighbors = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).expect("composition");
        HeaSystem {
            cell,
            neighbors,
            comp,
            model: nbmotaw(),
        }
    }

    /// Any registered or file-defined material on an `L³` supercell.
    pub fn from_material(material: &Material, l: usize) -> Self {
        let cell = Supercell::cubic(material.structure().clone(), l);
        let neighbors = cell
            .try_neighbor_table(material.num_shells())
            .expect("material shells");
        let comp = material
            .composition(cell.num_sites())
            .expect("material composition");
        HeaSystem {
            cell,
            neighbors,
            comp,
            model: material.hamiltonian().clone(),
        }
    }

    /// Number of lattice sites.
    pub fn num_sites(&self) -> usize {
        self.cell.num_sites()
    }
}

/// The enumerable binary reference system used by correctness-flavored
/// experiments (BCC L=2, antiferromagnetic coupling, 5 energy levels).
pub fn binary_reference() -> (Supercell, NeighborTable, Composition, PairHamiltonian) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).expect("composition");
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

/// Parse `--flag value` from the process arguments.
pub fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a CSV header + rows through one lock for clean output.
pub fn print_csv(header: &str, rows: &[String]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "{header}").expect("stdout");
    for r in rows {
        writeln!(lock, "{r}").expect("stdout");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let sys = HeaSystem::nbmotaw(2);
        assert_eq!(sys.num_sites(), 16);
        let (_, nt, comp, _) = binary_reference();
        assert_eq!(nt.num_sites(), comp.num_sites());
    }

    #[test]
    fn arg_parses_default() {
        assert_eq!(arg("--definitely-not-passed", 7usize), 7);
    }

    #[test]
    fn timed_returns_result() {
        let (v, s) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
