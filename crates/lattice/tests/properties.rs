//! Property-based tests of the lattice substrate.

use dt_lattice::{Composition, Configuration, Species, Structure, Supercell};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn structures() -> impl Strategy<Value = Structure> {
    prop_oneof![
        Just(Structure::bcc()),
        Just(Structure::fcc()),
        Just(Structure::simple_cubic()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every site's neighbor list in every shell has exactly the shell
    /// coordination, and the relation is symmetric with multiplicity.
    #[test]
    fn neighbor_tables_are_consistent(
        structure in structures(),
        lx in 2usize..5,
        ly in 2usize..5,
        lz in 2usize..5,
    ) {
        let cell = Supercell::new(structure, [lx, ly, lz]);
        let t = cell.neighbor_table(2);
        for shell in 0..2 {
            let z = t.coordination(shell);
            for i in 0..cell.num_sites() as u32 {
                prop_assert_eq!(t.neighbors(i, shell).len(), z);
                for &j in t.neighbors(i, shell) {
                    let ij = t.neighbors(i, shell).iter().filter(|&&n| n == j).count();
                    let ji = t.neighbors(j, shell).iter().filter(|&&n| n == i).count();
                    prop_assert_eq!(ij, ji);
                }
            }
        }
    }

    /// Random configurations always match their composition exactly, for
    /// arbitrary (possibly non-equiatomic) compositions.
    #[test]
    fn random_configurations_match_composition(
        counts in proptest::collection::vec(0usize..40, 2..6),
        seed in any::<u64>(),
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let comp = Composition::from_counts(counts).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = Configuration::random(&comp, &mut rng);
        prop_assert!(c.composition_matches(&comp));
        prop_assert_eq!(c.recount(), comp.counts().to_vec());
    }

    /// Any sequence of swaps preserves composition; matched set/unset pairs
    /// restore it.
    #[test]
    fn swaps_preserve_composition(
        seed in any::<u64>(),
        swaps in proptest::collection::vec((0u32..54, 0u32..54), 1..30),
    ) {
        let comp = Composition::equiatomic(3, 54).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Configuration::random(&comp, &mut rng);
        for (a, b) in swaps {
            c.swap(a, b);
        }
        prop_assert!(c.composition_matches(&comp));
    }

    /// set() keeps incremental counts in sync with a full recount.
    #[test]
    fn set_keeps_counts_in_sync(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u32..24, 0u8..3), 1..40),
    ) {
        let comp = Composition::equiatomic(3, 24).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Configuration::random(&comp, &mut rng);
        for (site, s) in ops {
            c.set(site, Species(s));
            prop_assert_eq!(c.recount(), c.species_counts().to_vec());
        }
    }

    /// ln(multinomial) is monotone under moving an atom from the largest
    /// to the smallest class (entropy increases toward equipartition).
    #[test]
    fn ln_configurations_peaks_at_equipartition(n_quarter in 2usize..40) {
        let n = 4 * n_quarter;
        let balanced = Composition::equiatomic(4, n).unwrap();
        let skewed = Composition::from_counts(
            vec![n_quarter + 1, n_quarter - 1, n_quarter, n_quarter]).unwrap();
        prop_assert!(balanced.ln_num_configurations() > skewed.ln_num_configurations());
    }
}
