//! Chemical species labels.
//!
//! A [`Species`] is a compact `u8` index into a [`SpeciesSet`], which carries
//! the human-readable element names (e.g. the refractory high-entropy alloy
//! NbMoTaW used throughout DeepThermo's evaluation).

use crate::error::LatticeError;

/// Maximum number of distinct species supported by the compact encodings
/// used in neighbor-pair keys and descriptor layouts.
pub const MAX_SPECIES: usize = 16;

/// A chemical species, stored as a compact index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Species(pub u8);

impl Species {
    /// The species index as a `usize`, for table lookups.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for Species {
    #[inline]
    fn from(v: u8) -> Self {
        Species(v)
    }
}

/// A named, ordered set of chemical species.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeciesSet {
    names: Vec<String>,
}

impl SpeciesSet {
    /// Build a species set from element names.
    ///
    /// # Errors
    /// Fails if more than [`MAX_SPECIES`] names are given or the list is
    /// empty.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Result<Self, LatticeError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(LatticeError::EmptyComposition);
        }
        if names.len() > MAX_SPECIES {
            return Err(LatticeError::TooManySpecies(names.len()));
        }
        Ok(SpeciesSet { names })
    }

    /// The NbMoTaW refractory high-entropy alloy studied in the paper.
    pub fn nb_mo_ta_w() -> Self {
        SpeciesSet::new(vec!["Nb", "Mo", "Ta", "W"]).expect("static set is valid")
    }

    /// Number of species.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of species `s`, or `"?"` if out of range.
    pub fn name(&self, s: Species) -> &str {
        self.names.get(s.index()).map(String::as_str).unwrap_or("?")
    }

    /// Look up a species by name.
    pub fn by_name(&self, name: &str) -> Option<Species> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Species(i as u8))
    }

    /// Iterate over `(Species, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Species, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Species(i as u8), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nbmotaw_has_four_named_species() {
        let set = SpeciesSet::nb_mo_ta_w();
        assert_eq!(set.len(), 4);
        assert_eq!(set.name(Species(0)), "Nb");
        assert_eq!(set.name(Species(3)), "W");
        assert_eq!(set.by_name("Ta"), Some(Species(2)));
        assert_eq!(set.by_name("Xx"), None);
    }

    #[test]
    fn species_set_rejects_too_many() {
        let names: Vec<String> = (0..MAX_SPECIES + 1).map(|i| format!("E{i}")).collect();
        assert_eq!(
            SpeciesSet::new(names),
            Err(LatticeError::TooManySpecies(MAX_SPECIES + 1))
        );
    }

    #[test]
    fn species_set_rejects_empty() {
        assert_eq!(
            SpeciesSet::new(Vec::<String>::new()),
            Err(LatticeError::EmptyComposition)
        );
    }

    #[test]
    fn out_of_range_name_is_question_mark() {
        let set = SpeciesSet::nb_mo_ta_w();
        assert_eq!(set.name(Species(9)), "?");
    }

    #[test]
    fn iter_yields_in_order() {
        let set = SpeciesSet::nb_mo_ta_w();
        let collected: Vec<_> = set.iter().map(|(s, n)| (s.0, n.to_string())).collect();
        assert_eq!(collected[1], (1, "Mo".to_string()));
    }
}
