//! Reciprocal-space order diagnostics: concentration waves and diffuse
//! scattering intensity.
//!
//! Chemical order shows up in k-space as superstructure peaks of the
//! concentration-wave amplitudes
//! `W_a(q) = N^{-1/2} Σ_i (δ_{σ_i,a} − c_a) e^{2πi q·r_i}`.
//! For B2 order on BCC the star of `q = (1,0,0)` (conventional units)
//! separates the two sublattices, so `|W(q₁₀₀)|²` is the k-space twin of
//! the real-space long-range-order parameter — and the full `S_ab(q)` map
//! is what diffuse-scattering experiments measure for short-range order.

use crate::composition::Composition;
use crate::config::Configuration;
use crate::species::Species;
use crate::supercell::Supercell;
use crate::SiteId;

/// Complex concentration-wave amplitude `W_a(q)` (returns `(Re, Im)`).
///
/// `q_frac` is in conventional reciprocal-lattice units: the phase of site
/// `i` at Cartesian position `r_i` (lattice-parameter units) is
/// `2π q_frac · r_i`.
pub fn concentration_wave(
    config: &Configuration,
    cell: &Supercell,
    species: Species,
    q_frac: [f64; 3],
) -> (f64, f64) {
    let n = config.num_sites() as f64;
    let c = config.species_counts()[species.index()] as f64 / n;
    let mut re = 0.0;
    let mut im = 0.0;
    for site in 0..config.num_sites() as SiteId {
        let occ = f64::from(u8::from(config.species_at(site) == species)) - c;
        if occ == 0.0 {
            continue;
        }
        let r = cell.position(site);
        let phase =
            2.0 * std::f64::consts::PI * (q_frac[0] * r[0] + q_frac[1] * r[1] + q_frac[2] * r[2]);
        re += occ * phase.cos();
        im += occ * phase.sin();
    }
    (re / n.sqrt(), im / n.sqrt())
}

/// Partial diffuse intensity `S_ab(q) = Re[W_a(q)* W_b(q)]`.
pub fn diffuse_intensity(
    config: &Configuration,
    cell: &Supercell,
    a: Species,
    b: Species,
    q_frac: [f64; 3],
) -> f64 {
    let (ra, ia) = concentration_wave(config, cell, a, q_frac);
    let (rb, ib) = concentration_wave(config, cell, b, q_frac);
    ra * rb + ia * ib
}

/// The B2 superstructure intensity `|W_a(q₁₀₀)|²` — the k-space long-range
/// order parameter for species `a` on a BCC supercell. For perfect B2
/// order of a species confined to one sublattice this equals
/// `N c_a² (1/c_a − 1)²·c_a`... in practice: `N·c_a²` for a fully
/// segregated-to-sublattice species at `c_a = 1/2` per sublattice; use it
/// comparatively (ordered ≫ random).
pub fn b2_intensity(config: &Configuration, cell: &Supercell, a: Species) -> f64 {
    diffuse_intensity(config, cell, a, a, [1.0, 0.0, 0.0])
}

/// Scan `S_ab` along a reciprocal path (list of `q_frac` points).
pub fn intensity_along_path(
    config: &Configuration,
    cell: &Supercell,
    a: Species,
    b: Species,
    path: &[[f64; 3]],
) -> Vec<f64> {
    path.iter()
        .map(|&q| diffuse_intensity(config, cell, a, b, q))
        .collect()
}

/// Sum rule helper: the Γ-point amplitude vanishes identically because
/// occupations are measured relative to the mean concentration.
pub fn gamma_point_is_zero(config: &Configuration, cell: &Supercell, comp: &Composition) -> bool {
    (0..comp.num_species()).all(|s| {
        let (re, im) = concentration_wave(config, cell, Species(s as u8), [0.0; 3]);
        re.abs() < 1e-9 && im.abs() < 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Supercell, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, comp)
    }

    #[test]
    fn gamma_point_vanishes_for_any_configuration() {
        let (cell, comp) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let random = Configuration::random(&comp, &mut rng);
        assert!(gamma_point_is_zero(&random, &cell, &comp));
        let ordered = Configuration::b2_ordered(&cell, 4);
        assert!(gamma_point_is_zero(&ordered, &cell, &comp));
    }

    #[test]
    fn b2_order_peaks_at_q100() {
        let (cell, comp) = fixture();
        let ordered = Configuration::b2_ordered(&cell, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Average random intensity over several draws.
        let mut random_mean = 0.0;
        let draws = 20;
        for _ in 0..draws {
            let r = Configuration::random(&comp, &mut rng);
            random_mean += b2_intensity(&r, &cell, Species(0));
        }
        random_mean /= draws as f64;
        let ordered_peak = b2_intensity(&ordered, &cell, Species(0));
        assert!(
            ordered_peak > 20.0 * random_mean.max(1e-6),
            "B2 peak {ordered_peak} vs random {random_mean}"
        );
    }

    #[test]
    fn b2_intensity_matches_sublattice_imbalance() {
        // For B2 order, |W(q100)|² = N·(c_a^(0) − c_a^(1))²/4 where the
        // superscripts are per-sublattice concentrations. With species 0
        // entirely on sublattice 0 at density 1/2 there: imbalance 1/2,
        // intensity = N/16... compute directly and compare to the analytic
        // reconstruction.
        let (cell, _) = fixture();
        let ordered = Configuration::b2_ordered(&cell, 4);
        let n = cell.num_sites() as f64;
        // Reconstruct: W = N^{-1/2} Σ (δ − c)(±1) = N^{-1/2}[N0_a − N1_a
        // − c_a(N0 − N1)] with N0 = N1 ⇒ W = (N0_a − N1_a)/√N.
        let mut n0 = 0.0;
        let mut n1 = 0.0;
        for s in 0..cell.num_sites() as SiteId {
            if ordered.species_at(s) == Species(0) {
                if cell.sublattice(s) == 0 {
                    n0 += 1.0;
                } else {
                    n1 += 1.0;
                }
            }
        }
        let analytic = (n0 - n1) * (n0 - n1) / n;
        let measured = b2_intensity(&ordered, &cell, Species(0));
        assert!(
            (measured - analytic).abs() < 1e-9,
            "{measured} vs {analytic}"
        );
    }

    #[test]
    fn path_scan_has_expected_shape() {
        let (cell, _) = fixture();
        let ordered = Configuration::b2_ordered(&cell, 4);
        // Γ → H path: intensity must rise from 0 to the superstructure
        // peak.
        let path: Vec<[f64; 3]> = (0..=8).map(|i| [i as f64 / 8.0, 0.0, 0.0]).collect();
        let scan = intensity_along_path(&ordered, &cell, Species(0), Species(0), &path);
        assert!(scan[0].abs() < 1e-9, "Γ must vanish");
        assert!(scan[8] > 1.0, "H-point peak expected, got {}", scan[8]);
        // (Intermediate q points may also peak: `b2_ordered` additionally
        // orders Nb/Mo within each sublattice along the site-index sweep,
        // which produces its own superstructure intensity — so only the Γ
        // and H points have universal expectations here.)
    }

    #[test]
    fn cross_intensity_is_negative_for_anti_correlated_species() {
        // In B2 order species 0 and 2 occupy opposite sublattices: their
        // (100) concentration waves are anti-phased, so S_02 < 0.
        let (cell, _) = fixture();
        let ordered = Configuration::b2_ordered(&cell, 4);
        let s02 = diffuse_intensity(&ordered, &cell, Species(0), Species(2), [1.0, 0.0, 0.0]);
        assert!(s02 < -1.0, "S_02(100) = {s02}");
    }
}
