//! Error type for lattice construction and configuration handling.

use std::fmt;

/// Errors produced while building supercells or configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// A supercell dimension was zero.
    ZeroDimension,
    /// The composition counts do not sum to the number of sites.
    CompositionMismatch {
        /// Sum of the per-species counts supplied.
        total: usize,
        /// Number of lattice sites the composition must fill.
        sites: usize,
    },
    /// More species were requested than [`crate::species::MAX_SPECIES`].
    TooManySpecies(usize),
    /// A species index was out of range for the composition.
    SpeciesOutOfRange {
        /// The offending species index.
        species: u8,
        /// Number of species in the composition.
        num_species: usize,
    },
    /// Composition with zero species or zero sites.
    EmptyComposition,
    /// A composition ratio list was empty or all zero.
    BadRatios,
    /// The structure exposes fewer coordination shells than requested
    /// within the neighbor search range.
    ShellsUnavailable {
        /// Shells the structure exposes.
        available: usize,
        /// Shells the caller requested.
        requested: usize,
    },
    /// Basis sites of the structure are not shell-equivalent, so a
    /// single per-shell coordination number does not exist.
    InequivalentBasis {
        /// The shell where the coordination numbers first disagreed.
        shell: usize,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::ZeroDimension => {
                write!(f, "supercell dimensions must be nonzero")
            }
            LatticeError::CompositionMismatch { total, sites } => write!(
                f,
                "composition counts sum to {total} but the supercell has {sites} sites"
            ),
            LatticeError::TooManySpecies(n) => write!(
                f,
                "{n} species requested, maximum is {}",
                crate::species::MAX_SPECIES
            ),
            LatticeError::SpeciesOutOfRange {
                species,
                num_species,
            } => write!(
                f,
                "species index {species} out of range for {num_species} species"
            ),
            LatticeError::EmptyComposition => {
                write!(f, "composition must have at least one species and one site")
            }
            LatticeError::BadRatios => {
                write!(f, "composition ratios must be nonempty with a nonzero sum")
            }
            LatticeError::ShellsUnavailable {
                available,
                requested,
            } => write!(
                f,
                "structure exposes only {available} coordination shells within the \
                 neighbor search range, {requested} requested"
            ),
            LatticeError::InequivalentBasis { shell } => write!(
                f,
                "basis sites are not shell-equivalent at shell {shell}; \
                 per-shell coordination numbers are undefined"
            ),
        }
    }
}

impl std::error::Error for LatticeError {}
