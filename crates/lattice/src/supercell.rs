//! Periodic supercells with O(1) site indexing.

use crate::neighbors::NeighborTable;
use crate::structure::Structure;
use crate::SiteId;

/// An `Lx × Ly × Lz` periodic repetition of a [`Structure`].
///
/// Sites are indexed `site = (((z * Ly + y) * Lx) + x) * B + b` where `B` is
/// the number of basis atoms, so iteration over sites is cache-friendly and
/// the cell/basis decomposition is O(1) arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct Supercell {
    structure: Structure,
    dims: [usize; 3],
    num_sites: usize,
}

impl Supercell {
    /// Build a supercell of `dims` conventional cells.
    ///
    /// # Panics
    /// Panics if any dimension is zero — a zero-sized supercell is a
    /// programming error, not a runtime condition.
    pub fn new(structure: Structure, dims: [usize; 3]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "supercell dimensions must be nonzero, got {dims:?}"
        );
        let num_sites = dims[0] * dims[1] * dims[2] * structure.atoms_per_cell();
        assert!(
            num_sites <= u32::MAX as usize,
            "supercell too large for u32 site ids"
        );
        Supercell {
            structure,
            dims,
            num_sites,
        }
    }

    /// Cubic `L × L × L` supercell.
    pub fn cubic(structure: Structure, l: usize) -> Self {
        Supercell::new(structure, [l, l, l])
    }

    /// The underlying crystal structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Supercell dimensions in conventional cells.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of lattice sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of basis atoms per conventional cell.
    pub fn atoms_per_cell(&self) -> usize {
        self.structure.atoms_per_cell()
    }

    /// Site id from (cell x, cell y, cell z, basis index), wrapping
    /// coordinates periodically.
    #[inline]
    pub fn site_at(&self, x: isize, y: isize, z: isize, b: usize) -> SiteId {
        let [lx, ly, lz] = self.dims;
        let xm = x.rem_euclid(lx as isize) as usize;
        let ym = y.rem_euclid(ly as isize) as usize;
        let zm = z.rem_euclid(lz as isize) as usize;
        ((((zm * ly + ym) * lx + xm) * self.atoms_per_cell()) + b) as SiteId
    }

    /// Decompose a site id into (cell x, cell y, cell z, basis index).
    #[inline]
    pub fn decompose(&self, site: SiteId) -> (usize, usize, usize, usize) {
        let b_count = self.atoms_per_cell();
        let s = site as usize;
        let b = s % b_count;
        let cell = s / b_count;
        let [lx, ly, _lz] = self.dims;
        let x = cell % lx;
        let y = (cell / lx) % ly;
        let z = cell / (lx * ly);
        (x, y, z, b)
    }

    /// The sublattice (basis index) of a site — used for B2 long-range
    /// order on BCC.
    #[inline]
    pub fn sublattice(&self, site: SiteId) -> usize {
        site as usize % self.atoms_per_cell()
    }

    /// Cartesian position of a site in units of the conventional lattice
    /// parameter.
    pub fn position(&self, site: SiteId) -> [f64; 3] {
        let (x, y, z, b) = self.decompose(site);
        let base = self.structure.basis()[b];
        [x as f64 + base[0], y as f64 + base[1], z as f64 + base[2]]
    }

    /// Build a shell-resolved neighbor table with `num_shells` coordination
    /// shells. The table is immutable and shared by all walkers.
    pub fn neighbor_table(&self, num_shells: usize) -> NeighborTable {
        NeighborTable::build(self, num_shells)
    }

    /// Fallible variant of [`Supercell::neighbor_table`]: returns a typed
    /// error when the structure exposes fewer shells than requested, so a
    /// bad material definition surfaces as an error chain, not a panic.
    pub fn try_neighbor_table(
        &self,
        num_shells: usize,
    ) -> Result<NeighborTable, crate::error::LatticeError> {
        NeighborTable::try_build(self, num_shells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_count() {
        assert_eq!(Supercell::cubic(Structure::bcc(), 4).num_sites(), 128);
        assert_eq!(Supercell::cubic(Structure::fcc(), 3).num_sites(), 108);
        assert_eq!(
            Supercell::new(Structure::simple_cubic(), [2, 3, 4]).num_sites(),
            24
        );
    }

    #[test]
    fn site_at_roundtrips_with_decompose() {
        let cell = Supercell::new(Structure::bcc(), [3, 4, 5]);
        for site in 0..cell.num_sites() as SiteId {
            let (x, y, z, b) = cell.decompose(site);
            assert_eq!(cell.site_at(x as isize, y as isize, z as isize, b), site);
        }
    }

    #[test]
    fn site_at_wraps_periodically() {
        let cell = Supercell::cubic(Structure::bcc(), 4);
        assert_eq!(cell.site_at(-1, 0, 0, 0), cell.site_at(3, 0, 0, 0));
        assert_eq!(cell.site_at(4, 5, 6, 1), cell.site_at(0, 1, 2, 1));
    }

    #[test]
    fn positions_include_basis_offset() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let corner = cell.site_at(1, 0, 0, 0);
        assert_eq!(cell.position(corner), [1.0, 0.0, 0.0]);
        let center = cell.site_at(1, 0, 0, 1);
        assert_eq!(cell.position(center), [1.5, 0.5, 0.5]);
    }

    #[test]
    fn sublattice_alternates_with_basis() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        assert_eq!(cell.sublattice(0), 0);
        assert_eq!(cell.sublattice(1), 1);
        assert_eq!(cell.sublattice(2), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = Supercell::new(Structure::bcc(), [0, 2, 2]);
    }
}
