//! Order parameters: Warren–Cowley short-range order and B2 long-range
//! order.
//!
//! These are the observables DeepThermo uses to characterize the
//! order–disorder phase transition of NbMoTaW: the Warren–Cowley parameter
//! `α_s(a,b)` measures chemical short-range order in coordination shell `s`
//! (negative = a–b attraction/ordering, positive = repulsion/clustering),
//! and the B2 long-range-order parameter measures sublattice segregation on
//! the BCC lattice.

use crate::composition::Composition;
use crate::config::Configuration;
use crate::neighbors::NeighborTable;
use crate::species::Species;
use crate::supercell::Supercell;
use crate::SiteId;

/// Warren–Cowley short-range-order parameters for every shell and ordered
/// species pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WarrenCowley {
    num_species: usize,
    /// `alpha[shell][a * num_species + b]`.
    alpha: Vec<Vec<f64>>,
}

impl WarrenCowley {
    /// Compute all Warren–Cowley parameters of a configuration.
    pub fn compute(config: &Configuration, neighbors: &NeighborTable, comp: &Composition) -> Self {
        let m = comp.num_species();
        let fracs = comp.fractions();
        let mut alpha = Vec::with_capacity(neighbors.num_shells());
        for shell in 0..neighbors.num_shells() {
            let counts = ordered_pair_counts(config, neighbors, shell, m);
            let total = neighbors.directed_pair_count(shell) as f64;
            let mut a = vec![0.0f64; m * m];
            for sa in 0..m {
                for sb in 0..m {
                    let p = counts[sa * m + sb] as f64 / total;
                    let ca_cb = fracs[sa] * fracs[sb];
                    a[sa * m + sb] = if ca_cb > 0.0 { 1.0 - p / ca_cb } else { 0.0 };
                }
            }
            alpha.push(a);
        }
        WarrenCowley {
            num_species: m,
            alpha,
        }
    }

    /// `α_s(a, b)` for shell `s` and ordered pair `(a, b)`.
    pub fn alpha(&self, shell: usize, a: Species, b: Species) -> f64 {
        self.alpha[shell][a.index() * self.num_species + b.index()]
    }

    /// Number of shells covered.
    pub fn num_shells(&self) -> usize {
        self.alpha.len()
    }

    /// Flat `[a*m+b]` view of one shell's parameters.
    pub fn shell(&self, shell: usize) -> &[f64] {
        &self.alpha[shell]
    }

    /// Root-mean-square of the off-diagonal parameters of one shell — a
    /// scalar "amount of chemical order" summary.
    pub fn rms_off_diagonal(&self, shell: usize) -> f64 {
        let m = self.num_species;
        let mut acc = 0.0;
        let mut n = 0usize;
        for a in 0..m {
            for b in 0..m {
                if a != b {
                    let v = self.alpha[shell][a * m + b];
                    acc += v * v;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            (acc / n as f64).sqrt()
        }
    }
}

/// Ordered pair counts `n_s[a][b]` over the directed pairs of one shell.
pub fn ordered_pair_counts(
    config: &Configuration,
    neighbors: &NeighborTable,
    shell: usize,
    num_species: usize,
) -> Vec<u64> {
    let mut counts = vec![0u64; num_species * num_species];
    let species = config.species();
    for i in 0..neighbors.num_sites() as SiteId {
        let a = species[i as usize].index();
        for &j in neighbors.neighbors(i, shell) {
            let b = species[j as usize].index();
            counts[a * num_species + b] += 1;
        }
    }
    counts
}

/// A mergeable accumulator of Warren–Cowley-style pair statistics, used to
/// average SRO over Monte Carlo samples (and, binned by energy, to reweight
/// SRO(T) from Wang–Landau runs).
#[derive(Debug, Clone, PartialEq)]
pub struct SroAccumulator {
    num_species: usize,
    num_shells: usize,
    /// Accumulated directed pair counts per shell.
    pair_counts: Vec<Vec<f64>>,
    /// Number of configurations accumulated.
    samples: u64,
}

impl SroAccumulator {
    /// Fresh accumulator for `num_shells` shells and `num_species` species.
    pub fn new(num_shells: usize, num_species: usize) -> Self {
        SroAccumulator {
            num_species,
            num_shells,
            pair_counts: vec![vec![0.0; num_species * num_species]; num_shells],
            samples: 0,
        }
    }

    /// Add one configuration's pair statistics.
    pub fn accumulate(&mut self, config: &Configuration, neighbors: &NeighborTable) {
        for shell in 0..self.num_shells {
            let counts = ordered_pair_counts(config, neighbors, shell, self.num_species);
            for (acc, c) in self.pair_counts[shell].iter_mut().zip(counts) {
                *acc += c as f64;
            }
        }
        self.samples += 1;
    }

    /// Merge another accumulator (e.g. from a different walker).
    pub fn merge(&mut self, other: &SroAccumulator) {
        assert_eq!(self.num_species, other.num_species);
        assert_eq!(self.num_shells, other.num_shells);
        for (mine, theirs) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        self.samples += other.samples;
    }

    /// Number of configurations accumulated so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean Warren–Cowley parameters over the accumulated samples.
    ///
    /// Returns `None` when no samples were accumulated.
    pub fn mean_alpha(
        &self,
        neighbors: &NeighborTable,
        comp: &Composition,
    ) -> Option<WarrenCowley> {
        if self.samples == 0 {
            return None;
        }
        let m = self.num_species;
        let fracs = comp.fractions();
        let mut alpha = Vec::with_capacity(self.num_shells);
        for shell in 0..self.num_shells {
            let total = neighbors.directed_pair_count(shell) as f64 * self.samples as f64;
            let mut a = vec![0.0f64; m * m];
            for sa in 0..m {
                for sb in 0..m {
                    let p = self.pair_counts[shell][sa * m + sb] / total;
                    let ca_cb = fracs[sa] * fracs[sb];
                    a[sa * m + sb] = if ca_cb > 0.0 { 1.0 - p / ca_cb } else { 0.0 };
                }
            }
            alpha.push(a);
        }
        Some(WarrenCowley {
            num_species: m,
            alpha,
        })
    }
}

/// B2 long-range order: per-species sublattice imbalance on a 2-sublattice
/// (BCC) supercell.
#[derive(Debug, Clone, PartialEq)]
pub struct LongRangeOrder {
    /// `η_a = (N_a^{(0)} - N_a^{(1)}) / N_a` per species.
    pub eta: Vec<f64>,
}

impl LongRangeOrder {
    /// Compute the B2 LRO parameters of a configuration.
    ///
    /// # Panics
    /// Panics unless the supercell has exactly two sublattices.
    pub fn compute(config: &Configuration, cell: &Supercell) -> Self {
        assert_eq!(cell.atoms_per_cell(), 2, "B2 LRO needs 2 sublattices");
        let m = config.num_species();
        let mut per_sub = vec![[0i64; 2]; m];
        for site in 0..cell.num_sites() as SiteId {
            let s = config.species_at(site).index();
            per_sub[s][cell.sublattice(site)] += 1;
        }
        let eta = per_sub
            .iter()
            .map(|&[n0, n1]| {
                let total = n0 + n1;
                if total == 0 {
                    0.0
                } else {
                    (n0 - n1) as f64 / total as f64
                }
            })
            .collect();
        LongRangeOrder { eta }
    }

    /// Composition-weighted RMS of the per-species parameters — a scalar
    /// order parameter in `[0, 1]`.
    pub fn scalar(&self, comp: &Composition) -> f64 {
        let mut acc = 0.0;
        for (i, &e) in self.eta.iter().enumerate() {
            acc += comp.fraction(Species(i as u8)) * e * e;
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(l: usize) -> (Supercell, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), l);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    #[test]
    fn random_alloy_has_near_zero_sro() {
        let (_, nt, comp) = setup(6);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Average over several random configurations to suppress noise.
        let mut acc = SroAccumulator::new(2, 4);
        for _ in 0..20 {
            let c = Configuration::random(&comp, &mut rng);
            acc.accumulate(&c, &nt);
        }
        let wc = acc.mean_alpha(&nt, &comp).unwrap();
        for shell in 0..2 {
            for a in 0..4u8 {
                for b in 0..4u8 {
                    let v = wc.alpha(shell, Species(a), Species(b));
                    assert!(v.abs() < 0.05, "alpha[{shell}]({a},{b}) = {v}");
                }
            }
        }
    }

    #[test]
    fn b2_config_has_strong_cross_sublattice_order() {
        let (cell, nt, comp) = setup(4);
        let c = Configuration::b2_ordered(&cell, 4);
        let wc = WarrenCowley::compute(&c, &nt, &comp);
        // First shell of BCC connects the two sublattices: same-sublattice
        // pairs (e.g. 0-1) never appear, cross pairs (0-2) are enhanced.
        assert!(wc.alpha(0, Species(0), Species(1)) > 0.5);
        assert!(wc.alpha(0, Species(0), Species(2)) < -0.5);
    }

    #[test]
    fn alpha_diagonal_identity_holds() {
        // Row sums of p(a,b) over b equal c_a ⇒ Σ_b c_b α(a,b) = 0.
        let (_, nt, comp) = setup(4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let c = Configuration::random(&comp, &mut rng);
        let wc = WarrenCowley::compute(&c, &nt, &comp);
        for a in 0..4u8 {
            let s: f64 = (0..4u8)
                .map(|b| comp.fraction(Species(b)) * wc.alpha(0, Species(a), Species(b)))
                .sum();
            assert!(s.abs() < 1e-9, "sum rule violated: {s}");
        }
    }

    #[test]
    fn lro_of_b2_is_one_and_of_segregated_random_small() {
        let (cell, _, comp) = setup(4);
        let b2 = Configuration::b2_ordered(&cell, 4);
        let lro = LongRangeOrder::compute(&b2, &cell);
        assert!((lro.scalar(&comp) - 1.0).abs() < 1e-12);

        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let rand_cfg = Configuration::random(&comp, &mut rng);
        let lro_r = LongRangeOrder::compute(&rand_cfg, &cell);
        assert!(lro_r.scalar(&comp) < 0.3);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let (_, nt, comp) = setup(3);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let configs: Vec<_> = (0..6)
            .map(|_| Configuration::random(&comp, &mut rng))
            .collect();

        let mut all = SroAccumulator::new(2, 4);
        for c in &configs {
            all.accumulate(c, &nt);
        }
        let mut left = SroAccumulator::new(2, 4);
        let mut right = SroAccumulator::new(2, 4);
        for c in &configs[..3] {
            left.accumulate(c, &nt);
        }
        for c in &configs[3..] {
            right.accumulate(c, &nt);
        }
        left.merge(&right);
        assert_eq!(left, all);
        assert_eq!(left.samples(), 6);
    }

    #[test]
    fn empty_accumulator_yields_none() {
        let (_, nt, comp) = setup(2);
        let acc = SroAccumulator::new(2, 4);
        assert!(acc.mean_alpha(&nt, &comp).is_none());
    }
}
