//! Shell-resolved neighbor tables.
//!
//! The table is built once per supercell and shared (immutably) by every
//! Monte Carlo walker. Periodic images are counted with multiplicity, so
//! pair sums over the table are exact under periodic boundary conditions
//! even for very small cells.

use crate::error::LatticeError;
use crate::supercell::Supercell;
use crate::SiteId;

/// A candidate neighbor: cell offset, basis index, squared distance.
type Candidate = (isize, isize, isize, usize, f64);

/// Relative squared-distance tolerance when grouping neighbors into
/// shells. Two candidates at squared distances `d²` and `e²` belong to
/// the same shell when `|d² − e²| ≤ SHELL_REL_TOL · max(1, d²)` — the
/// scale factor keeps grouping robust for far shells, where absolute
/// floating-point error grows with the distance itself, while remaining
/// bit-identical to the historical absolute `1e-9` cutoff for the
/// near shells (`d ≤ a`) every legacy material uses.
const SHELL_REL_TOL: f64 = 1e-9;

/// Squared-distance tolerance at squared distance `d2` (relative,
/// clamped so it never collapses below the historical absolute cutoff).
#[inline]
fn shell_tol(d2: f64) -> f64 {
    SHELL_REL_TOL * d2.max(1.0)
}

/// Smallest cell-offset search range guaranteed to enumerate every
/// periodic image out to distance `d` (lattice-parameter units): basis
/// fractions lie in `[0, 1)`, so a vector of length `d` has every cell
/// offset component bounded by `d + 1`.
fn offset_range_for(d: f64) -> isize {
    (d + 1.0).ceil() as isize
}

/// Hard cap on the candidate search range. `±8` conventional cells
/// covers dozens of shells for every cubic structure — a request that
/// still fails here is malformed, not under-searched.
const MAX_OFFSET_RANGE: isize = 8;

/// A flat, shell-resolved neighbor list for every site of a supercell.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    /// Flat neighbor ids: `[site][shell][k]` with per-shell strides.
    data: Vec<SiteId>,
    /// Coordination number of each shell (same for every site).
    coordination: Vec<usize>,
    /// Prefix offsets of each shell within one site's block.
    shell_offsets: Vec<usize>,
    /// Geometric distance of each shell in lattice-parameter units.
    distances: Vec<f64>,
    /// Stride of one site's block (= total neighbors across shells).
    site_stride: usize,
    num_sites: usize,
}

impl NeighborTable {
    /// Build a table with the `num_shells` nearest coordination shells.
    ///
    /// # Panics
    /// Panics if the structure exposes fewer than `num_shells` shells within
    /// the search range, or if sites are not all shell-equivalent (true for
    /// BCC/FCC/SC). Use [`NeighborTable::try_build`] for a fallible variant
    /// suitable for user-supplied material definitions.
    pub fn build(cell: &Supercell, num_shells: usize) -> Self {
        match Self::try_build(cell, num_shells) {
            Ok(table) => table,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`NeighborTable::build`]: returns a typed
    /// [`LatticeError`] instead of panicking when the structure exposes
    /// fewer shells than requested or its basis sites are not
    /// shell-equivalent.
    ///
    /// The candidate search range is derived from the requested shell
    /// count: starting from the legacy `±2` cells, the range grows until
    /// every requested shell is *provably complete* — a shell at distance
    /// `d` is complete once `d ≤ range − 1`, because every periodic image
    /// at that distance then lies inside the enumerated offsets (see
    /// `offset_range_for`). This fixes the silent image truncation a
    /// fixed range caused for far shells (e.g. 6-shell BCC at `d = 2a`).
    pub fn try_build(cell: &Supercell, num_shells: usize) -> Result<Self, LatticeError> {
        assert!(num_shells > 0, "need at least one shell");
        let b_count = cell.atoms_per_cell();
        let basis = cell.structure().basis().to_vec();

        // Candidate offsets: (dcell, basis) pairs with their squared
        // geometric distance from a reference basis atom. All sites with
        // the same basis index share candidates. Enumerated at a given
        // range, re-enumerated at a wider one if the requested shells are
        // not all complete within it.
        let enumerate = |range: isize| -> Vec<Vec<Candidate>> {
            let mut per_basis: Vec<Vec<Candidate>> = Vec::with_capacity(b_count);
            for (b0, base0) in basis.iter().enumerate() {
                let mut cands = Vec::new();
                for dz in -range..=range {
                    for dy in -range..=range {
                        for dx in -range..=range {
                            for (b, base) in basis.iter().enumerate() {
                                if dx == 0 && dy == 0 && dz == 0 && b == b0 {
                                    continue;
                                }
                                let v = [
                                    dx as f64 + base[0] - base0[0],
                                    dy as f64 + base[1] - base0[1],
                                    dz as f64 + base[2] - base0[2],
                                ];
                                let d2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                                cands.push((dx, dy, dz, b, d2));
                            }
                        }
                    }
                }
                per_basis.push(cands);
            }
            per_basis
        };

        // Shell distances: unique squared distances, sorted ascending.
        let group_shells = |per_basis: &[Vec<Candidate>]| -> Vec<f64> {
            let mut d2s: Vec<f64> = per_basis
                .iter()
                .flat_map(|c| c.iter().map(|&(_, _, _, _, d2)| d2))
                .collect();
            d2s.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            let mut shells_d2: Vec<f64> = Vec::new();
            for d2 in d2s {
                if shells_d2
                    .last()
                    .is_none_or(|&last| d2 > last + shell_tol(last))
                {
                    shells_d2.push(d2);
                }
            }
            shells_d2
        };

        let mut range = 2isize;
        let (per_basis, mut shells_d2) = loop {
            let per_basis = enumerate(range);
            let shells_d2 = group_shells(&per_basis);
            // A shell is complete when every periodic image at its
            // distance is guaranteed enumerated within `range`.
            let complete_limit = (range - 1) as f64;
            let complete = shells_d2
                .iter()
                .take_while(|&&d2| d2.sqrt() <= complete_limit + 1e-9)
                .count();
            if complete >= num_shells {
                break (per_basis, shells_d2);
            }
            if range >= MAX_OFFSET_RANGE {
                return Err(LatticeError::ShellsUnavailable {
                    available: complete,
                    requested: num_shells,
                });
            }
            range = (range + 1).max(offset_range_for(
                shells_d2.get(num_shells - 1).map_or(0.0, |&d2| d2.sqrt()),
            ));
            range = range.min(MAX_OFFSET_RANGE);
        };
        shells_d2.truncate(num_shells);

        // Coordination per shell, checked identical across basis sites.
        let shell_of = |d2: f64| -> Option<usize> {
            shells_d2
                .iter()
                .position(|&sd2| (d2 - sd2).abs() <= shell_tol(sd2))
        };
        let mut coordination = vec![0usize; num_shells];
        for (s, _) in shells_d2.iter().enumerate() {
            let z0 = per_basis[0]
                .iter()
                .filter(|&&(_, _, _, _, d2)| shell_of(d2) == Some(s))
                .count();
            for cands in &per_basis {
                let z = cands
                    .iter()
                    .filter(|&&(_, _, _, _, d2)| shell_of(d2) == Some(s))
                    .count();
                if z != z0 {
                    return Err(LatticeError::InequivalentBasis { shell: s });
                }
            }
            coordination[s] = z0;
        }

        let site_stride: usize = coordination.iter().sum();
        let mut shell_offsets = Vec::with_capacity(num_shells);
        let mut acc = 0usize;
        for &z in &coordination {
            shell_offsets.push(acc);
            acc += z;
        }

        let num_sites = cell.num_sites();
        let mut data = vec![0 as SiteId; num_sites * site_stride];
        for site in 0..num_sites as SiteId {
            let (x, y, z, b0) = cell.decompose(site);
            let block = site as usize * site_stride;
            let mut cursor = shell_offsets.clone();
            for &(dx, dy, dz, b, d2) in &per_basis[b0] {
                if let Some(s) = shell_of(d2) {
                    let nb = cell.site_at(x as isize + dx, y as isize + dy, z as isize + dz, b);
                    data[block + cursor[s]] = nb;
                    cursor[s] += 1;
                }
            }
            for (s, &c) in cursor.iter().enumerate() {
                debug_assert_eq!(
                    c,
                    shell_offsets[s] + coordination[s],
                    "shell {s} of site {site} underfilled"
                );
            }
        }

        Ok(NeighborTable {
            data,
            coordination,
            shell_offsets,
            distances: shells_d2.iter().map(|d2| d2.sqrt()).collect(),
            site_stride,
            num_sites,
        })
    }

    /// Number of shells stored.
    pub fn num_shells(&self) -> usize {
        self.coordination.len()
    }

    /// Number of sites covered.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Coordination number `z_s` of shell `s`.
    pub fn coordination(&self, shell: usize) -> usize {
        self.coordination[shell]
    }

    /// Geometric distance of shell `s` in lattice-parameter units.
    pub fn shell_distance(&self, shell: usize) -> f64 {
        self.distances[shell]
    }

    /// Neighbors of `site` in `shell` (periodic images appear with
    /// multiplicity).
    #[inline]
    pub fn neighbors(&self, site: SiteId, shell: usize) -> &[SiteId] {
        let block = site as usize * self.site_stride;
        let start = block + self.shell_offsets[shell];
        &self.data[start..start + self.coordination[shell]]
    }

    /// All neighbors of `site` across every stored shell, shell-major.
    #[inline]
    pub fn all_neighbors(&self, site: SiteId) -> &[SiteId] {
        let block = site as usize * self.site_stride;
        &self.data[block..block + self.site_stride]
    }

    /// Total directed pair count in `shell` (= `N · z_s`).
    pub fn directed_pair_count(&self, shell: usize) -> usize {
        self.num_sites * self.coordination[shell]
    }

    /// Iterate over all directed pairs `(i, j)` of `shell`.
    pub fn pairs(&self, shell: usize) -> impl Iterator<Item = (SiteId, SiteId)> + '_ {
        (0..self.num_sites as SiteId)
            .flat_map(move |i| self.neighbors(i, shell).iter().map(move |&j| (i, j)))
    }

    /// Approximate heap size in bytes (used by the HPC performance model to
    /// cost memory traffic).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<SiteId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;

    #[test]
    fn bcc_coordination_and_distances() {
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let t = cell.neighbor_table(2);
        assert_eq!(t.coordination(0), 8);
        assert_eq!(t.coordination(1), 6);
        assert!((t.shell_distance(0) - 0.75f64.sqrt()).abs() < 1e-12);
        assert!((t.shell_distance(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fcc_coordination() {
        let cell = Supercell::cubic(Structure::fcc(), 3);
        let t = cell.neighbor_table(2);
        assert_eq!(t.coordination(0), 12);
        assert_eq!(t.coordination(1), 6);
    }

    #[test]
    fn sc_coordination() {
        let cell = Supercell::cubic(Structure::simple_cubic(), 4);
        let t = cell.neighbor_table(2);
        assert_eq!(t.coordination(0), 6);
        assert_eq!(t.coordination(1), 12);
    }

    #[test]
    fn neighbor_relation_is_symmetric_with_multiplicity() {
        // j appears in i's list exactly as many times as i appears in j's.
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let t = cell.neighbor_table(2);
        for shell in 0..2 {
            for i in 0..cell.num_sites() as SiteId {
                for &j in t.neighbors(i, shell) {
                    let ij = t.neighbors(i, shell).iter().filter(|&&n| n == j).count();
                    let ji = t.neighbors(j, shell).iter().filter(|&&n| n == i).count();
                    assert_eq!(ij, ji, "asymmetry between {i} and {j} in shell {shell}");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_at_shell_distance() {
        let cell = Supercell::new(Structure::bcc(), [4, 5, 6]);
        let t = cell.neighbor_table(2);
        let dims = [4.0, 5.0, 6.0];
        for shell in 0..2 {
            let d = t.shell_distance(shell);
            for i in 0..cell.num_sites() as SiteId {
                let pi = cell.position(i);
                for &j in t.neighbors(i, shell) {
                    let pj = cell.position(j);
                    // Minimum-image distance must equal the shell distance.
                    let mut d2 = 0.0;
                    for k in 0..3 {
                        let mut dd = (pj[k] - pi[k]).abs() % dims[k];
                        if dd > dims[k] / 2.0 {
                            dd = dims[k] - dd;
                        }
                        d2 += dd * dd;
                    }
                    assert!(
                        (d2.sqrt() - d).abs() < 1e-9,
                        "site {i}->{j}: {} != {d}",
                        d2.sqrt()
                    );
                }
            }
        }
    }

    #[test]
    fn small_cell_images_counted_with_multiplicity() {
        // L=2 BCC: each first-shell neighbor direction is distinct, but the
        // coordination must still be exactly 8 per site.
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let t = cell.neighbor_table(1);
        for i in 0..cell.num_sites() as SiteId {
            assert_eq!(t.neighbors(i, 0).len(), 8);
        }
    }

    #[test]
    fn pairs_iterator_counts_directed_pairs() {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let t = cell.neighbor_table(2);
        assert_eq!(t.pairs(0).count(), t.directed_pair_count(0));
        assert_eq!(t.pairs(0).count(), cell.num_sites() * 8);
        assert_eq!(t.pairs(1).count(), cell.num_sites() * 6);
    }

    #[test]
    fn heap_bytes_positive() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let t = cell.neighbor_table(2);
        assert_eq!(t.heap_bytes(), cell.num_sites() * 14 * 4);
    }

    #[test]
    fn bcc_golden_coordination_shells_1_to_6() {
        // z = 8, 6, 12, 24, 8, 6 at d = √3/2, 1, √2, √11/2, √3, 2.
        // Shell 6 sits at exactly 2a — beyond the legacy fixed ±2 search
        // completeness boundary, so this exercises the derived range.
        let cell = Supercell::cubic(Structure::bcc(), 6);
        let t = cell.neighbor_table(6);
        let golden_z = [8, 6, 12, 24, 8, 6];
        let golden_d = [
            0.75f64.sqrt(),
            1.0,
            2.0f64.sqrt(),
            2.75f64.sqrt(),
            3.0f64.sqrt(),
            2.0,
        ];
        for s in 0..6 {
            assert_eq!(t.coordination(s), golden_z[s], "BCC shell {}", s + 1);
            assert!(
                (t.shell_distance(s) - golden_d[s]).abs() < 1e-12,
                "BCC shell {} distance {} != {}",
                s + 1,
                t.shell_distance(s),
                golden_d[s]
            );
        }
    }

    #[test]
    fn fcc_golden_coordination_shells_1_to_6() {
        // z = 12, 6, 24, 12, 24, 8 at d = √½, 1, √1.5, √2, √2.5, √3.
        let cell = Supercell::cubic(Structure::fcc(), 5);
        let t = cell.neighbor_table(6);
        let golden_z = [12, 6, 24, 12, 24, 8];
        let golden_d = [
            0.5f64.sqrt(),
            1.0,
            1.5f64.sqrt(),
            2.0f64.sqrt(),
            2.5f64.sqrt(),
            3.0f64.sqrt(),
        ];
        for s in 0..6 {
            assert_eq!(t.coordination(s), golden_z[s], "FCC shell {}", s + 1);
            assert!(
                (t.shell_distance(s) - golden_d[s]).abs() < 1e-12,
                "FCC shell {} distance {} != {}",
                s + 1,
                t.shell_distance(s),
                golden_d[s]
            );
        }
    }

    #[test]
    fn far_shells_symmetric_with_multiplicity() {
        // The derived search range must keep image multiplicity exact for
        // far shells on a small cell, just as it is for near shells.
        let cell = Supercell::cubic(Structure::fcc(), 2);
        let t = cell.neighbor_table(5);
        for shell in 0..5 {
            for i in 0..cell.num_sites() as SiteId {
                for &j in t.neighbors(i, shell) {
                    let ij = t.neighbors(i, shell).iter().filter(|&&n| n == j).count();
                    let ji = t.neighbors(j, shell).iter().filter(|&&n| n == i).count();
                    assert_eq!(ij, ji, "asymmetry between {i} and {j} in shell {shell}");
                }
            }
        }
    }

    #[test]
    fn try_build_reports_unavailable_shells() {
        let cell = Supercell::cubic(Structure::simple_cubic(), 3);
        let err = NeighborTable::try_build(&cell, 200).unwrap_err();
        match err {
            LatticeError::ShellsUnavailable {
                available,
                requested,
            } => {
                assert!(available < 200);
                assert_eq!(requested, 200);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn try_build_matches_build_for_legacy_range() {
        // The fallible path with the derived range must be bit-identical
        // to the legacy fixed-range table for the NbMoTaW golden case.
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let a = NeighborTable::build(&cell, 2);
        let b = NeighborTable::try_build(&cell, 2).unwrap();
        assert_eq!(a.data, b.data);
        assert_eq!(a.coordination, b.coordination);
        assert_eq!(a.shell_offsets, b.shell_offsets);
        assert_eq!(a.distances, b.distances);
    }
}
