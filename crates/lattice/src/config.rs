//! Alloy configurations: a species assignment over supercell sites.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::composition::Composition;
use crate::species::Species;
use crate::supercell::Supercell;
use crate::SiteId;

/// A species assignment over lattice sites with canonical composition
/// tracking.
///
/// The struct maintains the per-species counts incrementally so canonical
/// (fixed-composition) invariants can be asserted cheaply after any Monte
/// Carlo move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    species: Vec<Species>,
    counts: Vec<usize>,
}

impl Configuration {
    /// A uniformly random configuration with exactly the given composition.
    pub fn random<R: Rng + ?Sized>(comp: &Composition, rng: &mut R) -> Self {
        let mut species = Vec::with_capacity(comp.num_sites());
        for (s, &count) in comp.counts().iter().enumerate() {
            species.extend(std::iter::repeat_n(Species(s as u8), count));
        }
        species.shuffle(rng);
        Configuration {
            species,
            counts: comp.counts().to_vec(),
        }
    }

    /// A fully segregated configuration: sites filled with species blocks in
    /// index order. This is a low-entropy starting point far from
    /// equilibrium, useful for testing equilibration.
    pub fn segregated(comp: &Composition) -> Self {
        let mut species = Vec::with_capacity(comp.num_sites());
        for (s, &count) in comp.counts().iter().enumerate() {
            species.extend(std::iter::repeat_n(Species(s as u8), count));
        }
        Configuration {
            species,
            counts: comp.counts().to_vec(),
        }
    }

    /// A B2-like ordered configuration on a 2-basis (BCC) supercell with an
    /// even number of species: species are split between the two
    /// sublattices, alternating within each. For equiatomic NbMoTaW this
    /// puts {Nb, Mo} on sublattice 0 and {Ta, W} on sublattice 1.
    ///
    /// # Panics
    /// Panics unless the structure has exactly 2 basis atoms and the number
    /// of species is even and divides the sublattice size.
    pub fn b2_ordered(cell: &Supercell, num_species: usize) -> Self {
        assert_eq!(
            cell.atoms_per_cell(),
            2,
            "B2 order requires a 2-basis (BCC) structure"
        );
        assert!(num_species >= 2 && num_species % 2 == 0);
        let n = cell.num_sites();
        let half = num_species / 2;
        let mut species = vec![Species(0); n];
        let mut counts = vec![0usize; num_species];
        let mut idx_per_sub = [0usize; 2];
        for site in 0..n as SiteId {
            let sub = cell.sublattice(site);
            let k = idx_per_sub[sub];
            idx_per_sub[sub] += 1;
            let s = if sub == 0 {
                Species((k % half) as u8)
            } else {
                Species((half + k % half) as u8)
            };
            species[site as usize] = s;
            counts[s.index()] += 1;
        }
        Configuration { species, counts }
    }

    /// Build directly from a species vector.
    pub fn from_species(species: Vec<Species>, num_species: usize) -> Self {
        let mut counts = vec![0usize; num_species];
        for s in &species {
            counts[s.index()] += 1;
        }
        Configuration { species, counts }
    }

    /// Number of sites.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.species.len()
    }

    /// Number of species tracked.
    #[inline]
    pub fn num_species(&self) -> usize {
        self.counts.len()
    }

    /// Species at `site`.
    #[inline(always)]
    pub fn species_at(&self, site: SiteId) -> Species {
        self.species[site as usize]
    }

    /// The raw species slice (hot loops index this directly).
    #[inline]
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// Current per-species counts.
    pub fn species_counts(&self) -> &[usize] {
        &self.counts
    }

    /// Swap the species on two sites (the canonical local MC move).
    #[inline]
    pub fn swap(&mut self, a: SiteId, b: SiteId) {
        self.species.swap(a as usize, b as usize);
    }

    /// Set the species of one site, updating composition counts.
    /// Composition is *not* conserved by a single `set`; callers doing
    /// k-site reassignments must restore the overall counts themselves
    /// (checked by [`Configuration::composition_matches`] in debug builds).
    #[inline]
    pub fn set(&mut self, site: SiteId, s: Species) {
        let old = self.species[site as usize];
        self.counts[old.index()] -= 1;
        self.counts[s.index()] += 1;
        self.species[site as usize] = s;
    }

    /// Check the incremental counts against the composition.
    pub fn composition_matches(&self, comp: &Composition) -> bool {
        self.counts == comp.counts()
    }

    /// Recount species from scratch (validation utility).
    pub fn recount(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.counts.len()];
        for s in &self.species {
            counts[s.index()] += 1;
        }
        counts
    }

    /// A stable 64-bit fingerprint of the configuration (FNV-1a). Used for
    /// determinism tests and sample deduplication.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for s in &self.species {
            h ^= u64::from(s.0);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn comp4(n: usize) -> Composition {
        Composition::equiatomic(4, n).unwrap()
    }

    #[test]
    fn random_respects_composition() {
        let comp = comp4(128);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = Configuration::random(&comp, &mut rng);
        assert!(c.composition_matches(&comp));
        assert_eq!(c.recount(), comp.counts());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let comp = comp4(64);
        let a = Configuration::random(&comp, &mut ChaCha8Rng::seed_from_u64(9));
        let b = Configuration::random(&comp, &mut ChaCha8Rng::seed_from_u64(9));
        let c = Configuration::random(&comp, &mut ChaCha8Rng::seed_from_u64(10));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn swap_preserves_counts() {
        let comp = comp4(64);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut c = Configuration::random(&comp, &mut rng);
        let before = c.species_counts().to_vec();
        c.swap(0, 17);
        assert_eq!(c.species_counts(), &before[..]);
        assert_eq!(c.recount(), before);
    }

    #[test]
    fn set_updates_counts() {
        let comp = Composition::from_counts(vec![2, 2]).unwrap();
        let mut c = Configuration::segregated(&comp);
        assert_eq!(c.species_counts(), &[2, 2]);
        c.set(0, Species(1));
        assert_eq!(c.species_counts(), &[1, 3]);
        assert_eq!(c.recount(), vec![1, 3]);
    }

    #[test]
    fn b2_ordered_splits_sublattices() {
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let c = Configuration::b2_ordered(&cell, 4);
        assert_eq!(c.species_counts(), &[32, 32, 32, 32]);
        for site in 0..cell.num_sites() as SiteId {
            let s = c.species_at(site);
            if cell.sublattice(site) == 0 {
                assert!(s.0 < 2, "sublattice 0 must hold species 0/1");
            } else {
                assert!(s.0 >= 2, "sublattice 1 must hold species 2/3");
            }
        }
    }

    #[test]
    fn fingerprint_changes_on_swap_of_distinct_species() {
        let comp = comp4(16);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut c = Configuration::random(&comp, &mut rng);
        let f0 = c.fingerprint();
        // Find two sites with different species.
        let b = (1..16)
            .find(|&i| c.species_at(i) != c.species_at(0))
            .unwrap();
        c.swap(0, b);
        assert_ne!(c.fingerprint(), f0);
    }

    #[test]
    fn segregated_is_blockwise() {
        let comp = Composition::from_counts(vec![3, 2]).unwrap();
        let c = Configuration::segregated(&comp);
        assert_eq!(
            c.species(),
            &[Species(0), Species(0), Species(0), Species(1), Species(1)]
        );
    }
}
