//! Crystal structures: Bravais lattice plus basis.
//!
//! The refractory high-entropy alloys DeepThermo targets (NbMoTaW) are
//! body-centered cubic; FCC and simple cubic are provided for generality and
//! for cheap exactly-solvable test systems.

/// A crystal structure described by a cubic conventional cell and a basis of
/// fractional atom positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    name: &'static str,
    /// Fractional coordinates of the basis atoms within the conventional
    /// cubic cell (lattice parameter = 1).
    basis: Vec<[f64; 3]>,
}

impl Structure {
    /// Body-centered cubic: 2 atoms per conventional cell.
    /// First shell: 8 neighbors at `√3/2·a`; second shell: 6 at `a`.
    pub fn bcc() -> Self {
        Structure {
            name: "bcc",
            basis: vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
        }
    }

    /// Face-centered cubic: 4 atoms per conventional cell.
    /// First shell: 12 neighbors at `a/√2`; second shell: 6 at `a`.
    pub fn fcc() -> Self {
        Structure {
            name: "fcc",
            basis: vec![
                [0.0, 0.0, 0.0],
                [0.5, 0.5, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.5, 0.5],
            ],
        }
    }

    /// Simple cubic: 1 atom per conventional cell.
    /// First shell: 6 neighbors at `a`; second shell: 12 at `√2·a`.
    pub fn simple_cubic() -> Self {
        Structure {
            name: "sc",
            basis: vec![[0.0, 0.0, 0.0]],
        }
    }

    /// Human-readable structure name (`"bcc"`, `"fcc"`, `"sc"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of atoms per conventional cell.
    pub fn atoms_per_cell(&self) -> usize {
        self.basis.len()
    }

    /// Fractional basis positions within the conventional cell.
    pub fn basis(&self) -> &[[f64; 3]] {
        &self.basis
    }

    /// For BCC, basis index 0 / 1 are the two interpenetrating simple-cubic
    /// sublattices used to define B2 long-range order. For other structures
    /// the basis index plays the same role.
    pub fn num_sublattices(&self) -> usize {
        self.basis.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_per_cell() {
        assert_eq!(Structure::bcc().atoms_per_cell(), 2);
        assert_eq!(Structure::fcc().atoms_per_cell(), 4);
        assert_eq!(Structure::simple_cubic().atoms_per_cell(), 1);
    }

    #[test]
    fn names() {
        assert_eq!(Structure::bcc().name(), "bcc");
        assert_eq!(Structure::fcc().name(), "fcc");
        assert_eq!(Structure::simple_cubic().name(), "sc");
    }

    #[test]
    fn basis_positions_are_fractional() {
        for s in [
            Structure::bcc(),
            Structure::fcc(),
            Structure::simple_cubic(),
        ] {
            for p in s.basis() {
                for &x in p {
                    assert!((0.0..1.0).contains(&x));
                }
            }
        }
    }
}
