//! # dt-lattice
//!
//! Periodic alloy supercells for on-lattice Monte Carlo sampling of
//! high-entropy alloys.
//!
//! This crate provides the geometric substrate of DeepThermo:
//!
//! * [`Structure`] — the Bravais lattice + basis (BCC, FCC, simple cubic),
//! * [`Supercell`] — an `Lx × Ly × Lz` periodic repetition of the structure
//!   with O(1) site indexing,
//! * [`NeighborTable`] — flat, shell-resolved neighbor lists built once and
//!   shared by every Monte Carlo walker,
//! * [`Configuration`] — a species assignment with fixed (canonical)
//!   composition and cheap swap/reassign updates,
//! * [`sro`] — Warren–Cowley short-range-order and B2 long-range-order
//!   parameters used to characterize the order–disorder transition.
//!
//! Everything is deterministic and `Send + Sync` so walkers can share the
//! immutable geometry across threads (one walker per simulated GPU).
//!
//! ```
//! use dt_lattice::{Structure, Supercell, Composition, Configuration};
//! use rand::SeedableRng;
//!
//! let cell = Supercell::new(Structure::bcc(), [4, 4, 4]);
//! assert_eq!(cell.num_sites(), 128);
//! let neighbors = cell.neighbor_table(2); // first and second shells
//! assert_eq!(neighbors.coordination(0), 8); // BCC first shell
//! assert_eq!(neighbors.coordination(1), 6); // BCC second shell
//!
//! let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let config = Configuration::random(&comp, &mut rng);
//! assert_eq!(config.species_counts(), comp.counts());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod composition;
pub mod config;
pub mod error;
pub mod kspace;
pub mod neighbors;
pub mod species;
pub mod sro;
pub mod structure;
pub mod supercell;

pub use composition::Composition;
pub use config::Configuration;
pub use error::LatticeError;
pub use neighbors::NeighborTable;
pub use species::{Species, SpeciesSet};
pub use sro::{LongRangeOrder, SroAccumulator, WarrenCowley};
pub use structure::Structure;
pub use supercell::Supercell;

/// Convenient site index alias. `u32` keeps neighbor tables compact; 4 G
/// sites is far beyond any supercell this crate targets.
pub type SiteId = u32;
