//! Fixed (canonical-ensemble) alloy compositions.
//!
//! DeepThermo samples the canonical configuration space of an alloy: the
//! number of atoms of each species is fixed and every Monte Carlo move must
//! conserve it. [`Composition`] is the single source of truth for those
//! counts.

use crate::error::LatticeError;
use crate::species::{Species, MAX_SPECIES};

/// Fixed per-species atom counts for a supercell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Composition {
    counts: Vec<usize>,
    total: usize,
}

impl Composition {
    /// Build a composition from explicit per-species counts.
    ///
    /// # Errors
    /// Fails when the list is empty, all counts are zero, or there are more
    /// than [`MAX_SPECIES`] species.
    pub fn from_counts(counts: Vec<usize>) -> Result<Self, LatticeError> {
        if counts.is_empty() {
            return Err(LatticeError::EmptyComposition);
        }
        if counts.len() > MAX_SPECIES {
            return Err(LatticeError::TooManySpecies(counts.len()));
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Err(LatticeError::EmptyComposition);
        }
        Ok(Composition { counts, total })
    }

    /// An equiatomic composition of `num_species` species over `num_sites`
    /// sites. When `num_sites` is not divisible by `num_species` the
    /// remainder is distributed to the lowest-index species so the counts
    /// still sum to `num_sites`.
    ///
    /// # Errors
    /// Fails for zero species, zero sites, or too many species.
    pub fn equiatomic(num_species: usize, num_sites: usize) -> Result<Self, LatticeError> {
        if num_species == 0 || num_sites == 0 {
            return Err(LatticeError::EmptyComposition);
        }
        if num_species > MAX_SPECIES {
            return Err(LatticeError::TooManySpecies(num_species));
        }
        let base = num_sites / num_species;
        let rem = num_sites % num_species;
        let counts = (0..num_species)
            .map(|i| base + usize::from(i < rem))
            .collect();
        Composition::from_counts(counts)
    }

    /// Apportion `num_sites` sites to species according to relative
    /// `ratios` (they need not sum to one), using largest-remainder
    /// rounding with ties broken toward the lowest-index species.
    ///
    /// Equal ratios reproduce [`Composition::equiatomic`] exactly, so a
    /// material declared with `ratios = [1, 1, 1, 1]` is bit-identical to
    /// the historical equiatomic path.
    ///
    /// # Errors
    /// Fails when `ratios` is empty, contains a negative or non-finite
    /// entry, or sums to zero ([`LatticeError::BadRatios`]); when there
    /// are too many species; or when `num_sites` is zero.
    pub fn from_ratios(ratios: &[f64], num_sites: usize) -> Result<Self, LatticeError> {
        if ratios.is_empty() {
            return Err(LatticeError::BadRatios);
        }
        if ratios.len() > MAX_SPECIES {
            return Err(LatticeError::TooManySpecies(ratios.len()));
        }
        if num_sites == 0 {
            return Err(LatticeError::EmptyComposition);
        }
        if ratios.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(LatticeError::BadRatios);
        }
        let sum: f64 = ratios.iter().sum();
        if sum <= 0.0 {
            return Err(LatticeError::BadRatios);
        }
        let mut counts = vec![0usize; ratios.len()];
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(ratios.len());
        let mut assigned = 0usize;
        for (i, &r) in ratios.iter().enumerate() {
            let ideal = r / sum * num_sites as f64;
            let base = ideal.floor() as usize;
            counts[i] = base;
            assigned += base;
            fracs.push((i, ideal - base as f64));
        }
        // Largest remainder first; equal remainders favor lower indices.
        fracs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite remainders")
                .then(a.0.cmp(&b.0))
        });
        let mut left = num_sites - assigned;
        let mut k = 0usize;
        while left > 0 {
            counts[fracs[k % fracs.len()].0] += 1;
            left -= 1;
            k += 1;
        }
        Composition::from_counts(counts)
    }

    /// Number of species.
    pub fn num_species(&self) -> usize {
        self.counts.len()
    }

    /// Total number of atoms (= number of lattice sites it fills).
    pub fn num_sites(&self) -> usize {
        self.total
    }

    /// Per-species counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Count of one species.
    ///
    /// # Errors
    /// Fails when `s` is out of range.
    pub fn count(&self, s: Species) -> Result<usize, LatticeError> {
        self.counts
            .get(s.index())
            .copied()
            .ok_or(LatticeError::SpeciesOutOfRange {
                species: s.0,
                num_species: self.counts.len(),
            })
    }

    /// Mole fraction `c_a` of species `a` (0 for out-of-range species).
    pub fn fraction(&self, s: Species) -> f64 {
        self.counts
            .get(s.index())
            .map(|&c| c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// All mole fractions in species order.
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The ideal (infinite-temperature) configurational entropy per atom in
    /// units of `k_B`: `-Σ c_a ln c_a`. For an equiatomic quaternary alloy
    /// this is `ln 4 ≈ 1.386`, which sets the `~e^{10,000}` scale of the
    /// density of states the paper evaluates.
    pub fn ideal_entropy_per_atom(&self) -> f64 {
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let x = c as f64 / self.total as f64;
                -x * x.ln()
            })
            .sum()
    }

    /// Natural log of the multinomial number of configurations,
    /// `ln [ N! / Π_a N_a! ]`, computed with `ln Γ` so it is exact in
    /// floating point even for thousands of sites. This is the exact value
    /// of `ln Σ_E g(E)` that Wang–Landau normalization must reproduce.
    pub fn ln_num_configurations(&self) -> f64 {
        let mut v = ln_factorial(self.total);
        for &c in &self.counts {
            v -= ln_factorial(c);
        }
        v
    }
}

/// `ln n!` via `ln Γ(n+1)` (Stirling series with exact small-n table).
pub fn ln_factorial(n: usize) -> f64 {
    // Exact for small n; Stirling's series beyond the table. The series with
    // three correction terms is accurate to ~1e-12 for n >= 32.
    const TABLE_LEN: usize = 32;
    if n < TABLE_LEN {
        let mut acc = 0.0f64;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        return acc;
    }
    let x = (n + 1) as f64;
    let inv = 1.0 / x;
    (x - 0.5) * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI).ln()
        + inv * (1.0 / 12.0 - inv * inv * (1.0 / 360.0 - inv * inv / 1260.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equiatomic_divides_evenly() {
        let c = Composition::equiatomic(4, 128).unwrap();
        assert_eq!(c.counts(), &[32, 32, 32, 32]);
        assert_eq!(c.num_sites(), 128);
    }

    #[test]
    fn equiatomic_distributes_remainder() {
        let c = Composition::equiatomic(4, 10).unwrap();
        assert_eq!(c.counts(), &[3, 3, 2, 2]);
        assert_eq!(c.num_sites(), 10);
    }

    #[test]
    fn from_ratios_equal_matches_equiatomic() {
        for m in 1..=6usize {
            for sites in [7usize, 10, 54, 128, 500] {
                let eq = Composition::equiatomic(m, sites).unwrap();
                let fr = Composition::from_ratios(&vec![1.0; m], sites).unwrap();
                assert_eq!(eq, fr, "m={m} sites={sites}");
                let fr2 = Composition::from_ratios(&vec![0.25; m], sites).unwrap();
                assert_eq!(eq, fr2, "m={m} sites={sites} scaled ratios");
            }
        }
    }

    #[test]
    fn from_ratios_largest_remainder() {
        // 50/25/25 over 10 sites: ideals 5.0/2.5/2.5 — the odd site goes
        // to the lower-index species of the tied pair.
        let c = Composition::from_ratios(&[2.0, 1.0, 1.0], 10).unwrap();
        assert_eq!(c.counts(), &[5, 3, 2]);
        // Non-equiatomic ternary: 60/30/10 over 10 sites is exact.
        let c = Composition::from_ratios(&[6.0, 3.0, 1.0], 10).unwrap();
        assert_eq!(c.counts(), &[6, 3, 1]);
    }

    #[test]
    fn from_ratios_rejects_bad_input() {
        assert_eq!(
            Composition::from_ratios(&[], 10).unwrap_err(),
            LatticeError::BadRatios
        );
        assert_eq!(
            Composition::from_ratios(&[0.0, 0.0], 10).unwrap_err(),
            LatticeError::BadRatios
        );
        assert_eq!(
            Composition::from_ratios(&[1.0, -0.5], 10).unwrap_err(),
            LatticeError::BadRatios
        );
        assert_eq!(
            Composition::from_ratios(&[1.0, f64::NAN], 10).unwrap_err(),
            LatticeError::BadRatios
        );
        assert!(Composition::from_ratios(&[1.0], 0).is_err());
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert!(Composition::from_counts(vec![]).is_err());
        assert!(Composition::from_counts(vec![0, 0]).is_err());
        assert!(Composition::equiatomic(0, 10).is_err());
        assert!(Composition::equiatomic(4, 0).is_err());
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = Composition::from_counts(vec![3, 5, 8]).unwrap();
        let s: f64 = c.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((c.fraction(Species(2)) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction(Species(7)), 0.0);
    }

    #[test]
    fn ideal_entropy_equiatomic_is_ln_n() {
        let c = Composition::equiatomic(4, 400).unwrap();
        assert!((c.ideal_entropy_per_atom() - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_matches_direct_sum() {
        for n in [0usize, 1, 5, 31, 32, 50, 100, 1000] {
            let direct: f64 = (2..=n).map(|k| (k as f64).ln()).sum();
            let approx = ln_factorial(n);
            assert!(
                (direct - approx).abs() < 1e-8 * direct.max(1.0),
                "n={n}: {direct} vs {approx}"
            );
        }
    }

    #[test]
    fn ln_num_configurations_binary_matches_binomial() {
        // 10 choose 4 = 210.
        let c = Composition::from_counts(vec![4, 6]).unwrap();
        assert!((c.ln_num_configurations() - 210.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_num_configurations_scales_like_entropy() {
        // For large N, ln(multinomial) ≈ N * ideal entropy per atom.
        let c = Composition::equiatomic(4, 8192).unwrap();
        let per_atom = c.ln_num_configurations() / 8192.0;
        assert!((per_atom - 4.0f64.ln()).abs() < 0.01);
        // This is the paper's e^10,000 scale:
        assert!(c.ln_num_configurations() > 10_000.0);
    }

    #[test]
    fn count_checks_range() {
        let c = Composition::equiatomic(2, 8).unwrap();
        assert_eq!(c.count(Species(1)).unwrap(), 4);
        assert!(c.count(Species(2)).is_err());
    }
}
