//! Property tests of the simulated cluster: collectives behave like their
//! MPI counterparts under arbitrary payloads and rank counts, and the
//! performance model respects its structural invariants.

use dt_hpc::{
    rank_rng, strong_scaling_table, weak_scaling_table, GpuSpec, ThreadCluster, WorkloadShape,
};
use proptest::prelude::*;

proptest! {
    // Thread clusters are comparatively slow to spin up; keep cases modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// allreduce_sum equals the serial sum for arbitrary payloads.
    #[test]
    fn allreduce_matches_serial_sum(
        size in 1usize..6,
        payload in proptest::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        let expected: Vec<f64> = payload.iter().map(|&v| v * size as f64).collect();
        let results = ThreadCluster::run(size, |comm| {
            let mut v = payload.clone();
            comm.allreduce_sum(&mut v).unwrap();
            v
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
            }
        }
    }

    /// Every rank receives exactly the messages addressed to it, in
    /// per-(peer, tag) FIFO order.
    #[test]
    fn point_to_point_is_fifo_per_tag(size in 2usize..5, rounds in 1usize..6) {
        let results = ThreadCluster::run(size, move |comm| {
            let me = comm.rank();
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            for r in 0..rounds {
                comm.send(next, 7, vec![me as u8, r as u8]);
            }
            let mut got = Vec::new();
            for _ in 0..rounds {
                got.push(
                    comm.recv_timeout(prev, 7, std::time::Duration::from_secs(30))
                        .unwrap(),
                );
            }
            (prev, got)
        });
        for (prev, got) in results {
            for (r, msg) in got.iter().enumerate() {
                prop_assert_eq!(msg[0] as usize, prev);
                prop_assert_eq!(msg[1] as usize, r);
            }
        }
    }

    /// Broadcast delivers the root's payload everywhere for any root.
    #[test]
    fn broadcast_from_any_root(size in 1usize..6, root_pick in any::<usize>(), byte in any::<u8>()) {
        let root = root_pick % size;
        let results = ThreadCluster::run(size, move |comm| {
            let mine = if comm.rank() == root { vec![byte] } else { vec![] };
            comm.broadcast_checked(root, mine).unwrap()
        });
        for r in results {
            prop_assert_eq!(&r, &vec![byte]);
        }
    }

    /// Per-rank RNG streams are deterministic and pairwise distinct.
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), a in 0u64..64, b in 0u64..64) {
        use rand::RngExt;
        prop_assume!(a != b);
        let mut ra = rank_rng(seed, a);
        let mut rb = rank_rng(seed, b);
        let va: Vec<u64> = (0..8).map(|_| ra.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| rb.random()).collect();
        prop_assert_ne!(va.clone(), vb);
        let mut ra2 = rank_rng(seed, a);
        let va2: Vec<u64> = (0..8).map(|_| ra2.random()).collect();
        prop_assert_eq!(va, va2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weak-scaling efficiency is in (0, 1], monotone non-increasing, and
    /// aggregate throughput is monotone increasing for any GPU.
    #[test]
    fn weak_scaling_invariants(pick in 0u8..2, base in 1usize..16) {
        let gpu = if pick == 0 { GpuSpec::v100() } else { GpuSpec::mi250x_gcd() };
        let ranks: Vec<usize> = (0..5).map(|i| base << i).collect();
        let rows = weak_scaling_table(&gpu, &WorkloadShape::paper_default(), &ranks);
        for w in rows.windows(2) {
            prop_assert!(w[1].efficiency <= w[0].efficiency + 1e-12);
            prop_assert!(w[1].throughput >= w[0].throughput);
        }
        for r in &rows {
            prop_assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-12);
            prop_assert!(r.time_per_iteration_s > 0.0);
        }
    }

    /// Strong scaling: time per iteration decreases with ranks.
    #[test]
    fn strong_scaling_time_decreases(pick in 0u8..2) {
        let gpu = if pick == 0 { GpuSpec::v100() } else { GpuSpec::mi250x_gcd() };
        let ranks = [1usize, 2, 4, 8, 16];
        let rows = strong_scaling_table(&gpu, &WorkloadShape::paper_default(), &ranks);
        for w in rows.windows(2) {
            prop_assert!(w[1].time_per_iteration_s < w[0].time_per_iteration_s);
        }
    }
}
