//! Integration tests of the TCP transport: the same cluster semantics as
//! the thread fabric, exercised over real loopback sockets (rendezvous,
//! framing, reader threads, death by disconnect).

use std::time::{Duration, Instant};

use dt_hpc::{CommError, FaultPlan, RankOutcome, TcpCluster};

/// Receive deadline for paths where the message is known to be coming.
const PATIENCE: Duration = Duration::from_secs(30);

#[test]
fn single_rank_cluster_bootstraps() {
    let results = TcpCluster::run_loopback(1, FaultPlan::none(), |comm| {
        comm.barrier().unwrap();
        let mut v = vec![2.5];
        comm.allreduce_sum(&mut v).unwrap();
        (comm.rank(), comm.size(), v[0])
    });
    match &results[0] {
        RankOutcome::Completed(r) => assert_eq!(r, &(0, 1, 2.5)),
        dead => panic!("rank died: {dead:?}"),
    }
}

#[test]
fn ring_ping_pong_over_sockets() {
    let size = 4;
    let results = TcpCluster::run_loopback(size, FaultPlan::none(), |comm| {
        let me = comm.rank();
        let next = (me + 1) % comm.size();
        let prev = (me + comm.size() - 1) % comm.size();
        for round in 0..5u8 {
            comm.send(next, 7, vec![me as u8, round]);
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(comm.recv_timeout(prev, 7, PATIENCE).unwrap());
        }
        (prev, got)
    });
    for outcome in results {
        let (prev, got) = outcome.completed().expect("rank completed");
        for (round, msg) in got.iter().enumerate() {
            assert_eq!(msg[0] as usize, prev, "messages must arrive from prev");
            assert_eq!(msg[1] as usize, round, "per-(peer, tag) FIFO order");
        }
    }
}

#[test]
fn collectives_match_thread_semantics() {
    let size = 4;
    let results = TcpCluster::run_loopback(size, FaultPlan::none(), |comm| {
        let mut acc = 0.0;
        for round in 0..6 {
            comm.barrier().unwrap();
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v).unwrap();
            acc += v[0] + v[1];
            let payload = if comm.rank() == round % 4 {
                vec![round as u8; 3]
            } else {
                vec![]
            };
            let b = comm.broadcast_checked(round % 4, payload).unwrap();
            assert_eq!(b, vec![round as u8; 3]);
        }
        acc
    });
    let expected = 6.0 * ((1 + 2 + 3) as f64 + 4.0);
    for outcome in results {
        assert_eq!(outcome.completed().expect("completed"), expected);
    }
}

#[test]
fn messages_sent_before_exit_survive_the_disconnect() {
    // Rank 1 sends its payload and returns immediately; its transport is
    // dropped and the socket closed. Rank 0 must still receive the
    // buffered frame (orderly shutdown delivers data before EOF), and
    // only then see the death.
    let results = TcpCluster::run_loopback(2, FaultPlan::none(), |comm| {
        if comm.rank() == 0 {
            std::thread::sleep(Duration::from_millis(100));
            let first = comm.recv_timeout(1, 3, PATIENCE);
            let second = comm.recv_timeout(1, 3, PATIENCE);
            (first, second)
        } else {
            comm.send(0, 3, vec![42]);
            (Ok(vec![]), Ok(vec![]))
        }
    });
    match &results[0] {
        RankOutcome::Completed((first, second)) => {
            assert_eq!(first, &Ok(vec![42]), "buffered frame must be drained");
            assert_eq!(second, &Err(CommError::RankDead(1)));
        }
        dead => panic!("rank 0 died: {dead:?}"),
    }
}

#[test]
fn killed_rank_surfaces_as_rank_dead_and_collectives_survive() {
    // Rank 2 (non-coordinator) dies at round 0; the others must see
    // RankDead on receives and still complete a barrier + allreduce over
    // the survivors.
    let plan = FaultPlan::none().kill_at_round(2, 0);
    let results = TcpCluster::run_loopback(3, plan, |comm| {
        if comm.rank() == 2 {
            comm.poll_faults(0);
            unreachable!("rank 2 must die at poll");
        }
        let r = comm.recv_timeout(2, 9, PATIENCE);
        assert_eq!(r, Err(CommError::RankDead(2)));
        // Sample live_count before the barrier: the other survivor cannot
        // have exited yet (it is blocked in the same barrier), so exactly
        // rank 2's death is visible here.
        let live = comm.live_count();
        comm.barrier().unwrap();
        let mut v = vec![1.0];
        comm.allreduce_sum(&mut v).unwrap();
        (v[0], live)
    });
    assert!(results[2].is_dead());
    for (rank, outcome) in results.into_iter().enumerate() {
        if rank == 2 {
            continue;
        }
        let (sum, live) = outcome.completed().expect("survivor completed");
        assert_eq!(sum, 2.0, "allreduce must cover exactly the survivors");
        assert_eq!(live, 2);
    }
}

#[test]
fn dead_coordinator_fails_collectives_cleanly() {
    let plan = FaultPlan::none().kill_at_round(0, 0);
    let results = TcpCluster::run_loopback(2, plan, |comm| {
        if comm.rank() == 0 {
            comm.poll_faults(0);
            unreachable!();
        }
        comm.barrier()
    });
    assert!(results[0].is_dead());
    match &results[1] {
        RankOutcome::Completed(r) => assert_eq!(r, &Err(CommError::RankDead(0))),
        dead => panic!("rank 1 died: {dead:?}"),
    }
}

#[test]
fn fault_plan_drops_and_delays_apply_on_the_wire() {
    let plan =
        FaultPlan::none()
            .drop_message(1, 0, 0)
            .delay_message(1, 0, 1, Duration::from_millis(80));
    let results = TcpCluster::run_loopback(2, plan, |comm| {
        if comm.rank() == 0 {
            let dropped = comm.recv_timeout(1, 5, Duration::from_millis(60));
            let started = Instant::now();
            let delayed = comm.recv_timeout(1, 5, PATIENCE);
            (dropped, delayed, started.elapsed())
        } else {
            comm.send(0, 5, vec![1]); // dropped by the plan
            comm.send(0, 5, vec![2]); // delayed by the plan
            std::thread::sleep(Duration::from_millis(300)); // stay alive
            (Ok(vec![]), Ok(vec![]), Duration::ZERO)
        }
    });
    match &results[0] {
        RankOutcome::Completed((dropped, delayed, _)) => {
            assert_eq!(dropped, &Err(CommError::Timeout { from: 1, tag: 5 }));
            assert_eq!(delayed, &Ok(vec![2]), "delayed frame must still arrive");
        }
        dead => panic!("rank 0 died: {dead:?}"),
    }
}

#[test]
fn traffic_counters_work_over_tcp() {
    let results = TcpCluster::run_loopback(2, FaultPlan::none(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![0; 10]);
            comm.barrier().unwrap();
            comm.traffic()
        } else {
            let got = comm.recv_timeout(0, 1, PATIENCE).unwrap();
            assert_eq!(got.len(), 10);
            comm.barrier().unwrap();
            comm.traffic()
        }
    });
    let mut it = results.into_iter();
    let t0 = it.next().unwrap().completed().expect("rank 0");
    let t1 = it.next().unwrap().completed().expect("rank 1");
    // Collective traffic is not counted, matching the thread backend.
    assert_eq!((t0.sends, t0.send_bytes), (1, 10));
    assert_eq!((t1.recvs, t1.recv_bytes), (1, 10));
}

#[test]
fn killed_worker_is_replaced_and_rejoins_collectives() {
    // Rank 1 is killed at round 1, respawned by the recovering harness,
    // and rejoins the allreduce generation it missed. Survivors wait for
    // the replacement (recovery-mode coordinator), so every round's sum
    // covers all three ranks — exactly the fault-free result.
    let plan = FaultPlan::none().kill_at_round(1, 1);
    let results = TcpCluster::run_loopback_recovering(3, plan, 2, |comm, respawns| {
        // Emulate checkpoint rejoin: a respawned life resumes at the
        // round it died in, with its collective counters restored.
        let start = if respawns > 0 { 1 } else { 0 };
        comm.set_collective_generations([0, start, 0]);
        let mut acc = 0.0;
        for round in start..3u64 {
            comm.poll_faults(round);
            let mut v = vec![1.0];
            comm.allreduce_sum(&mut v).unwrap();
            acc += v[0];
        }
        (comm.rank(), respawns, acc)
    });
    for outcome in results {
        let (rank, respawns, acc) = outcome.completed().expect("every rank completes");
        if rank == 1 {
            assert_eq!(respawns, 1, "the victim must have been respawned once");
            assert_eq!(acc, 2.0 * 3.0, "replacement replays rounds 1..3");
        } else {
            assert_eq!(respawns, 0);
            assert_eq!(acc, 3.0 * 3.0, "no round may degrade to survivors-only");
        }
    }
}

#[test]
fn heartbeats_keep_idle_peers_alive() {
    let results = TcpCluster::run_loopback(2, FaultPlan::none(), |comm| {
        comm.start_heartbeats(Duration::from_millis(15), Duration::from_millis(250));
        // Several deadlines' worth of silence on the data path: only the
        // heartbeats keep the liveness clocks fresh.
        std::thread::sleep(Duration::from_millis(600));
        let snapshot = (comm.live_count(), comm.heartbeat_misses());
        // Hold both ranks until both have sampled; otherwise the first to
        // exit tears the connection down under the other's feet.
        comm.barrier().unwrap();
        snapshot
    });
    for outcome in results {
        let (live, misses) = outcome.completed().expect("completed");
        assert_eq!(live, 2, "pinged peers must stay alive");
        assert_eq!(misses, 0);
    }
}

#[test]
fn heartbeat_monitor_declares_silent_peers_dead() {
    let results = TcpCluster::run_loopback(2, FaultPlan::none(), |comm| {
        if comm.rank() == 0 {
            comm.start_heartbeats(Duration::from_millis(10), Duration::from_millis(60));
            let deadline = Instant::now() + PATIENCE;
            while comm.is_alive(1) {
                assert!(Instant::now() < deadline, "heartbeat monitor never fired");
                std::thread::sleep(Duration::from_millis(10));
            }
            comm.heartbeat_misses()
        } else {
            // Stay connected but silent: no heartbeats, no data. Only the
            // monitor (not an EOF) can declare us dead.
            std::thread::sleep(Duration::from_millis(500));
            0
        }
    });
    match &results[0] {
        RankOutcome::Completed(misses) => {
            assert!(
                *misses >= 1,
                "the death must be attributed to a missed deadline"
            );
        }
        dead => panic!("rank 0 died: {dead:?}"),
    }
}
