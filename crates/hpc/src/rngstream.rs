//! Deterministic, independent per-rank RNG streams.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An independent ChaCha8 stream for `(seed, rank)`.
///
/// ChaCha exposes a 64-bit stream id orthogonal to the seed, so every rank
/// gets a statistically independent stream while the whole fleet remains
/// reproducible from one master seed — the property the determinism tests
/// (same seed ⇒ same DOS at any thread count) rely on.
pub fn rank_rng(master_seed: u64, rank: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(master_seed);
    rng.set_stream(rank.wrapping_add(1));
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_rank_is_deterministic() {
        let mut a = rank_rng(42, 3);
        let mut b = rank_rng(42, 3);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_ranks_are_different_streams() {
        let mut a = rank_rng(42, 0);
        let mut b = rank_rng(42, 1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rank_rng(1, 0);
        let mut b = rank_rng(2, 0);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn streams_pass_a_crude_uniformity_check() {
        let mut rng = rank_rng(7, 11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
