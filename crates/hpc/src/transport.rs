//! The pluggable message-passing backend of the simulated cluster.
//!
//! [`Transport`] is the seam between the REWL protocol logic (which lives
//! in [`crate::Communicator`] and above) and the machinery that actually
//! moves bytes between ranks. Two implementations ship:
//!
//! * [`crate::ThreadTransport`] — the in-memory thread fabric: a rank is
//!   a thread, a message is a `Vec<u8>` moved between mailboxes, and the
//!   collectives are condvar-coordinated shared state;
//! * [`crate::TcpTransport`] — real `std::net` loopback sockets with
//!   length-prefixed frames, one connection per peer pair, enabling true
//!   multi-process runs (`deepthermo run --cluster tcp:<n>`).
//!
//! Everything *above* the trait — fault injection, traffic accounting,
//! retry schedules, the exchange protocol — is backend-agnostic.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::comm::CommError;

/// Upper bound applied to blocking collective waits so that no wait —
/// even one reached through an unexpected interleaving — is unbounded.
/// Generous enough that it only trips on genuine deadlocks.
pub(crate) const WATCHDOG: Duration = Duration::from_secs(300);

/// A message-passing backend connecting `size` ranks.
///
/// Implementations must provide tagged point-to-point messaging with
/// per-`(peer, tag)` FIFO order, dead-peer detection, and the three
/// collectives the REWL driver uses. All collective calls are SPMD: every
/// live rank must invoke the same collectives in the same order.
///
/// Sends are non-blocking and buffered (MPI eager protocol); sends to
/// dead ranks are silently discarded. `delay` (injected by the fault
/// layer) holds a message for the given duration before it becomes
/// receivable.
pub trait Transport: Send {
    /// This rank's id.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster (including dead ones).
    fn size(&self) -> usize;

    /// Whether `rank` is still alive.
    fn is_alive(&self, rank: usize) -> bool;

    /// Number of ranks currently alive.
    fn live_count(&self) -> usize;

    /// Send `data` to rank `to` under `tag`, optionally held for `delay`
    /// before delivery.
    fn send(&self, to: usize, tag: u64, data: Vec<u8>, delay: Option<Duration>);

    /// Non-blocking receive: `Ok(Some(..))` if a deliverable message is
    /// queued, `Ok(None)` if not, `Err(RankDead)` if `from` is dead with
    /// nothing in flight.
    ///
    /// # Errors
    /// [`CommError::RankDead`] when `from` is dead and no matching
    /// message remains buffered or in flight.
    fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError>;

    /// Blocking receive with a deadline. Already-buffered messages from a
    /// dead sender are still delivered first.
    ///
    /// # Errors
    /// [`CommError::Timeout`] when `timeout` elapses,
    /// [`CommError::RankDead`] as soon as `from` is known dead with no
    /// matching message in flight.
    fn recv_timeout(&self, from: usize, tag: u64, timeout: Duration) -> Result<Vec<u8>, CommError>;

    /// Block until every *live* rank has entered the barrier.
    ///
    /// # Errors
    /// [`CommError::RankDead`] when the barrier cannot complete because
    /// its coordinator died (TCP backend; the thread fabric is
    /// coordinator-free and completes over survivors).
    fn barrier(&self) -> Result<(), CommError>;

    /// Element-wise sum allreduce over the *live* ranks: on return every
    /// surviving rank's `data` holds the sum of all survivors'
    /// contributions. All ranks must pass equal lengths.
    ///
    /// # Errors
    /// [`CommError::RankDead`] when the reduction's coordinator died
    /// (TCP backend only); `data` is left untouched in that case.
    fn allreduce_sum(&self, data: &mut [f64]) -> Result<(), CommError>;

    /// Broadcast from `root`: returns the root's payload on every rank
    /// (`data` is ignored on non-roots).
    ///
    /// # Errors
    /// [`CommError::RankDead`] on every waiter when the root died before
    /// providing its payload.
    fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError>;

    /// Start heartbeat-based liveness: ping every live peer each
    /// `interval` and declare a peer dead when nothing (heartbeat or
    /// data) has arrived from it for `deadline`. Backends without an
    /// active failure detector (the thread fabric, where death is
    /// announced synchronously) ignore this.
    fn start_heartbeats(&self, _interval: Duration, _deadline: Duration) {}

    /// Number of heartbeat deadlines missed so far (peers declared dead
    /// by the heartbeat monitor rather than by connection teardown).
    fn heartbeat_misses(&self) -> u64 {
        0
    }

    /// Put the transport in recovery mode: a dead peer is treated as
    /// *temporarily* absent — coordinator-side collective receives keep
    /// waiting for it (up to a recovery deadline) instead of skipping it,
    /// so a respawned replacement can contribute to the generation it
    /// missed. Backends without re-admission ignore this.
    fn set_recovery(&self, _enabled: bool) {}

    /// This rank's collective-protocol generation counters
    /// `[barrier, reduce, broadcast]`. A replacement rank restores these
    /// from its checkpoint so its collective traffic lands in the same
    /// generation namespace as the survivors'. Coordinator-free backends
    /// return zeros.
    fn collective_generations(&self) -> [u64; 3] {
        [0; 3]
    }

    /// Restore the collective generation counters (see
    /// [`Transport::collective_generations`]). A no-op on backends
    /// without generation-tagged collectives.
    fn set_collective_generations(&self, _gens: [u64; 3]) {}
}

/// Key of a pending message: (source rank, tag).
pub(crate) type MsgKey = (usize, u64);

/// A buffered message; `deliver_at` is in the future for delayed sends.
pub(crate) struct Envelope {
    pub(crate) deliver_at: Instant,
    pub(crate) payload: Vec<u8>,
}

/// One rank's mailbox: per-`(peer, tag)` FIFO queues plus a wakeup
/// signal. Shared by both backends — the thread fabric holds one per rank
/// in the shared fabric, the TCP transport holds its own fed by per-peer
/// reader threads.
#[derive(Default)]
pub(crate) struct Inbox {
    queues: Mutex<HashMap<MsgKey, VecDeque<Envelope>>>,
    signal: Condvar,
}

impl Inbox {
    /// Enqueue a message and wake any waiter.
    pub(crate) fn push(&self, from: usize, tag: u64, payload: Vec<u8>, deliver_at: Instant) {
        self.queues
            .lock()
            .entry((from, tag))
            .or_default()
            .push_back(Envelope {
                deliver_at,
                payload,
            });
        self.signal.notify_all();
    }

    /// Wake every waiter (used to announce peer deaths).
    pub(crate) fn notify_all(&self) {
        self.signal.notify_all();
    }

    /// Non-blocking take; `sender_dead` is consulted only when nothing is
    /// buffered or in flight from `from`.
    pub(crate) fn try_take(
        &self,
        from: usize,
        tag: u64,
        sender_dead: &dyn Fn() -> bool,
    ) -> Result<Option<Vec<u8>>, CommError> {
        let mut queues = self.queues.lock();
        let now = Instant::now();
        if let Some(q) = queues.get_mut(&(from, tag)) {
            if let Some(pos) = q.iter().position(|m| m.deliver_at <= now) {
                let payload = q.remove(pos).expect("position just found").payload;
                return Ok(Some(payload));
            }
            if !q.is_empty() {
                // Delayed messages still in flight; the sender's death
                // does not recall them.
                return Ok(None);
            }
        }
        if sender_dead() {
            return Err(CommError::RankDead(from));
        }
        Ok(None)
    }

    /// Blocking take with a deadline; semantics mirror
    /// [`Transport::recv_timeout`].
    pub(crate) fn take_deadline(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
        sender_dead: &dyn Fn() -> bool,
    ) -> Result<Vec<u8>, CommError> {
        let deadline = Instant::now() + timeout;
        let mut queues = self.queues.lock();
        loop {
            let now = Instant::now();
            let mut earliest_delayed: Option<Instant> = None;
            if let Some(q) = queues.get_mut(&(from, tag)) {
                if let Some(pos) = q.iter().position(|m| m.deliver_at <= now) {
                    let payload = q.remove(pos).expect("position just found").payload;
                    return Ok(payload);
                }
                earliest_delayed = q.iter().map(|m| m.deliver_at).min();
            }
            if earliest_delayed.is_none() && sender_dead() {
                return Err(CommError::RankDead(from));
            }
            if now >= deadline {
                return Err(CommError::Timeout { from, tag });
            }
            // Sleep until whichever comes first: the deadline or the
            // moment a delayed message matures. Death notifications wake
            // every mailbox waiter, so re-check on every wakeup.
            let mut wake = deadline;
            if let Some(t) = earliest_delayed {
                wake = wake.min(t);
            }
            let nap = wake
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            self.signal.wait_for(&mut queues, nap);
        }
    }
}
