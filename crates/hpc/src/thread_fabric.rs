//! The in-memory thread backend: ranks are threads, messages are moved
//! `Vec<u8>`s, collectives are condvar-coordinated shared state.
//!
//! This is the original DeepThermo fabric, now packaged as a
//! [`Transport`] implementation. Its semantics are unchanged: tagged
//! point-to-point messages with per-`(peer, tag)` FIFO order,
//! generation-counted collectives that count *live* ranks (a rank death
//! settles any collective the survivors have fully entered), and
//! [`ThreadCluster::run_with_faults`] converting rank panics into
//! [`RankOutcome::Died`] while survivors keep running.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::comm::{CommError, Communicator, SimulatedCrash};
use crate::fault::FaultPlan;
use crate::transport::{Inbox, Transport, WATCHDOG};

/// Shared collective state (barrier / allreduce / broadcast), generation
/// counted so it can be reused round after round.
struct Collectives {
    lock: Mutex<CollectiveState>,
    signal: Condvar,
}

struct CollectiveState {
    /// Ranks still alive; collectives complete when `*_arrived` reaches
    /// this count.
    live: usize,
    barrier_arrived: usize,
    barrier_generation: u64,
    reduce_arrived: usize,
    reduce_generation: u64,
    reduce_accum: Vec<f64>,
    reduce_result: Vec<f64>,
    bcast_arrived: usize,
    bcast_generation: u64,
    bcast_payload: Option<Vec<u8>>,
    /// Generation the current `bcast_payload` was provided for; lets
    /// waiters distinguish a fresh payload from a stale one left by a
    /// previous round after the root died.
    bcast_provided_generation: Option<u64>,
}

impl CollectiveState {
    /// Complete any collective that the survivors have now fully entered.
    /// Called after a death shrinks `live`.
    fn settle_after_death(&mut self) {
        if self.live == 0 {
            return;
        }
        if self.barrier_arrived >= self.live {
            self.barrier_arrived = 0;
            self.barrier_generation += 1;
        }
        if self.reduce_arrived >= self.live {
            self.reduce_arrived = 0;
            self.reduce_result = std::mem::take(&mut self.reduce_accum);
            self.reduce_generation += 1;
        }
        if self.bcast_arrived >= self.live {
            self.bcast_arrived = 0;
            self.bcast_generation += 1;
        }
    }
}

/// The shared fabric of a [`ThreadCluster`].
struct Fabric {
    size: usize,
    inboxes: Vec<Inbox>,
    collectives: Collectives,
    dead: Vec<AtomicBool>,
}

impl Fabric {
    fn new(size: usize) -> Self {
        Fabric {
            size,
            inboxes: (0..size).map(|_| Inbox::default()).collect(),
            collectives: Collectives {
                lock: Mutex::new(CollectiveState {
                    live: size,
                    barrier_arrived: 0,
                    barrier_generation: 0,
                    reduce_arrived: 0,
                    reduce_generation: 0,
                    reduce_accum: Vec::new(),
                    reduce_result: Vec::new(),
                    bcast_arrived: 0,
                    bcast_generation: 0,
                    bcast_payload: None,
                    bcast_provided_generation: None,
                }),
                signal: Condvar::new(),
            },
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Record a rank death and wake everyone who may be waiting on it:
    /// collective waiters (a now-complete round is settled first) and all
    /// mailbox waiters (so receives from the corpse fail fast).
    fn mark_dead(&self, rank: usize) {
        if self.dead[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.collectives.lock.lock();
            st.live -= 1;
            st.settle_after_death();
            self.collectives.signal.notify_all();
        }
        for mb in &self.inboxes {
            mb.notify_all();
        }
    }
}

/// A rank's handle to the shared in-memory fabric — the thread backend of
/// [`Transport`].
pub struct ThreadTransport {
    rank: usize,
    fabric: Arc<Fabric>,
}

impl Transport for ThreadTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.fabric.size
    }

    fn is_alive(&self, rank: usize) -> bool {
        !self.fabric.is_dead(rank)
    }

    fn live_count(&self) -> usize {
        self.fabric.collectives.lock.lock().live
    }

    fn send(&self, to: usize, tag: u64, data: Vec<u8>, delay: Option<Duration>) {
        assert!(to < self.fabric.size, "send to invalid rank {to}");
        if self.fabric.is_dead(to) {
            return;
        }
        let deliver_at = match delay {
            Some(d) => Instant::now() + d,
            None => Instant::now(),
        };
        self.fabric.inboxes[to].push(self.rank, tag, data, deliver_at);
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        self.fabric.inboxes[self.rank].try_take(from, tag, &|| self.fabric.is_dead(from))
    }

    fn recv_timeout(&self, from: usize, tag: u64, timeout: Duration) -> Result<Vec<u8>, CommError> {
        self.fabric.inboxes[self.rank]
            .take_deadline(from, tag, timeout, &|| self.fabric.is_dead(from))
    }

    fn barrier(&self) -> Result<(), CommError> {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.barrier_generation;
        st.barrier_arrived += 1;
        if st.barrier_arrived >= st.live {
            st.barrier_arrived = 0;
            st.barrier_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.barrier_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.barrier_generation == generation {
                    panic!("rank {}: barrier watchdog expired", self.rank);
                }
            }
        }
        Ok(())
    }

    fn allreduce_sum(&self, data: &mut [f64]) -> Result<(), CommError> {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.reduce_generation;
        if st.reduce_arrived == 0 {
            st.reduce_accum = vec![0.0; data.len()];
        }
        assert_eq!(
            st.reduce_accum.len(),
            data.len(),
            "allreduce length mismatch across ranks"
        );
        for (a, &d) in st.reduce_accum.iter_mut().zip(data.iter()) {
            *a += d;
        }
        st.reduce_arrived += 1;
        if st.reduce_arrived >= st.live {
            st.reduce_arrived = 0;
            st.reduce_result = std::mem::take(&mut st.reduce_accum);
            st.reduce_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.reduce_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.reduce_generation == generation {
                    panic!("rank {}: allreduce watchdog expired", self.rank);
                }
            }
        }
        data.copy_from_slice(&st.reduce_result);
        Ok(())
    }

    fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError> {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.bcast_generation;
        if self.rank == root {
            st.bcast_payload = Some(data);
            st.bcast_provided_generation = Some(generation);
        }
        st.bcast_arrived += 1;
        if st.bcast_arrived >= st.live {
            st.bcast_arrived = 0;
            st.bcast_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.bcast_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.bcast_generation == generation {
                    panic!("rank {}: broadcast watchdog expired", self.rank);
                }
            }
        }
        // A payload left over from an earlier round must not masquerade
        // as this round's: only accept one provided for `generation`.
        if st.bcast_provided_generation == Some(generation) {
            Ok(st
                .bcast_payload
                .clone()
                .expect("payload present when provided"))
        } else {
            Err(CommError::RankDead(root))
        }
    }
}

/// How one rank's program ended under [`ThreadCluster::run_with_faults`].
#[derive(Debug)]
pub enum RankOutcome<T> {
    /// The rank ran to completion.
    Completed(T),
    /// The rank died (injected kill or genuine panic) before finishing.
    Died {
        /// Human-readable cause extracted from the panic payload.
        cause: String,
    },
}

impl<T> RankOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Died { .. } => None,
        }
    }

    /// Whether the rank died.
    pub fn is_dead(&self) -> bool {
        matches!(self, RankOutcome::Died { .. })
    }
}

pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(crash) = payload.downcast_ref::<SimulatedCrash>() {
        format!(
            "simulated crash of rank {} at round {}",
            crash.rank, crash.round
        )
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked".to_string()
    }
}

/// Install the process-wide panic hook that silences the default "thread
/// panicked" stderr noise for injected [`SimulatedCrash`] unwinds only.
/// Installed once: hook swapping per call would race when multiple
/// clusters run concurrently (e.g. parallel tests). Multi-process
/// drivers call this in each worker before `catch_unwind`ing the rank
/// program, so a scheduled kill dies quietly there too.
pub fn install_crash_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Launches `size` ranks on threads and runs `f(comm)` on each; returns
/// the per-rank results in rank order.
pub struct ThreadCluster;

impl ThreadCluster {
    /// Run a cluster program. Panics in any rank propagate.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator<ThreadTransport>) -> T + Sync,
    {
        Self::run_with_faults(size, FaultPlan::none(), f)
            .into_iter()
            .map(|outcome| match outcome {
                RankOutcome::Completed(v) => v,
                RankOutcome::Died { cause } => panic!("rank panicked: {cause}"),
            })
            .collect()
    }

    /// Run a cluster program under a fault plan. A rank that panics —
    /// from an injected [`FaultEvent::KillAtRound`](crate::FaultEvent)
    /// via [`Communicator::poll_faults`], or from a genuine bug — is
    /// caught at the fabric boundary, announced to the survivors (its
    /// death unblocks their receives and collectives), and reported as
    /// [`RankOutcome::Died`] instead of tearing the cluster down.
    pub fn run_with_faults<T, F>(size: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(Communicator<ThreadTransport>) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let fabric = Arc::new(Fabric::new(size));
        install_crash_hook();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let transport = ThreadTransport {
                        rank,
                        fabric: Arc::clone(&fabric),
                    };
                    let comm = Communicator::new(transport, plan.clone());
                    let f = &f;
                    let fabric = Arc::clone(&fabric);
                    scope.spawn(move || match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(v) => RankOutcome::Completed(v),
                        Err(payload) => {
                            // Announce the death *before* returning so
                            // peers blocked on this rank unblock promptly.
                            fabric.mark_dead(rank);
                            RankOutcome::Died {
                                cause: describe_panic(payload.as_ref()),
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        })
    }
}
