//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a declarative list of failures — kill a rank at a
//! given round, drop or delay the n-th matching message between two
//! ranks — that the [`crate::ThreadCluster`] fabric applies while a
//! program runs. Plans contain no randomness of their own: the same plan
//! against the same program produces the same failure interleaving, which
//! is what makes failure *tests* possible. The seeded constructors derive
//! their choices from a caller-provided seed via a splitmix step, so
//! randomized fault campaigns are reproducible too.

use std::time::Duration;

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash `rank` the first time it polls faults at `round` or later.
    ///
    /// The crash is delivered as a panic at the poll site, unwound to the
    /// fabric boundary, and converted into a dead-rank outcome — the same
    /// path a genuine panic in rank code takes.
    KillAtRound {
        /// Victim rank.
        rank: usize,
        /// First round at which the kill fires.
        round: u64,
    },
    /// Silently discard the `nth_match`-th (0-based) message from `from`
    /// to `to` whose tag matches `tag` (`None` matches any tag).
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Required tag, or `None` for any.
        tag: Option<u64>,
        /// Which matching message to drop (0-based).
        nth_match: u64,
    },
    /// Hold the `nth_match`-th matching message for `delay` before it
    /// becomes receivable.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Required tag, or `None` for any.
        tag: Option<u64>,
        /// Which matching message to delay (0-based).
        nth_match: u64,
        /// How long the message is held.
        delay: Duration,
    },
    /// Sever the link between ranks `a` and `b` (both directions) while
    /// the sender's current round is in `[from_round, until_round)`:
    /// every message between them is silently dropped, simulating a
    /// transient network partition that heals on its own.
    Partition {
        /// One side of the severed link.
        a: usize,
        /// The other side.
        b: usize,
        /// First round (inclusive) the link is down.
        from_round: u64,
        /// First round (exclusive) the link is back up.
        until_round: u64,
    },
}

impl FaultEvent {
    fn matches_send(&self, from: usize, to: usize, tag: u64, round: u64) -> bool {
        match self {
            FaultEvent::DropMessage {
                from: f,
                to: t,
                tag: tg,
                ..
            }
            | FaultEvent::DelayMessage {
                from: f,
                to: t,
                tag: tg,
                ..
            } => *f == from && *t == to && tg.map(|x| x == tag).unwrap_or(true),
            FaultEvent::Partition {
                a,
                b,
                from_round,
                until_round,
            } => {
                ((*a == from && *b == to) || (*b == from && *a == to))
                    && round >= *from_round
                    && round < *until_round
            }
            FaultEvent::KillAtRound { .. } => false,
        }
    }
}

/// What the fabric does with an outgoing message after consulting the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver immediately (no fault matched).
    Deliver,
    /// Discard silently.
    Drop,
    /// Deliver after the duration elapses.
    Delay(Duration),
}

/// A reproducible schedule of injected failures. Plans built by
/// [`FaultPlan::chaos`] additionally remember the seed they were derived
/// from, so a chaos run is replayable from its recorded plan alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    chaos_seed: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            events,
            chaos_seed: None,
        }
    }

    /// Add an event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Crash `rank` at `round`.
    pub fn kill_at_round(mut self, rank: usize, round: u64) -> Self {
        self.events.push(FaultEvent::KillAtRound { rank, round });
        self
    }

    /// Drop the `nth`-th message from `from` to `to` (any tag).
    pub fn drop_message(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.events.push(FaultEvent::DropMessage {
            from,
            to,
            tag: None,
            nth_match: nth,
        });
        self
    }

    /// Delay the `nth`-th message from `from` to `to` (any tag).
    pub fn delay_message(mut self, from: usize, to: usize, nth: u64, delay: Duration) -> Self {
        self.events.push(FaultEvent::DelayMessage {
            from,
            to,
            tag: None,
            nth_match: nth,
            delay,
        });
        self
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A reproducible one-victim plan: derive the victim rank and kill
    /// round from `seed`. `max_round` bounds the kill round (exclusive,
    /// min 1 so a kill always fires).
    pub fn seeded_kill(seed: u64, num_ranks: usize, max_round: u64) -> Self {
        assert!(num_ranks > 0);
        let a = splitmix(seed);
        let b = splitmix(a);
        let rank = (a % num_ranks as u64) as usize;
        let round = b % max_round.max(1);
        FaultPlan::none().kill_at_round(rank, round)
    }

    /// Sever the `a`↔`b` link for rounds `[from_round, until_round)`.
    pub fn partition(mut self, a: usize, b: usize, from_round: u64, until_round: u64) -> Self {
        self.events.push(FaultEvent::Partition {
            a,
            b,
            from_round,
            until_round,
        });
        self
    }

    /// First kill round scheduled for `rank` that has come due by `round`.
    pub fn kill_due(&self, rank: usize, round: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::KillAtRound { rank: r, round: k } if *r == rank && *k <= round => {
                    Some(*k)
                }
                _ => None,
            })
            .min()
    }

    /// The seed this plan was derived from, when built by
    /// [`FaultPlan::chaos`].
    pub fn chaos_seed(&self) -> Option<u64> {
        self.chaos_seed
    }

    /// A reproducible multi-fault chaos schedule derived entirely from
    /// `seed`: one kill of a *non-root* rank (rank 0 is the unrecoverable
    /// gather root), one dropped and one delayed message on the victim's
    /// links, and one transient two-round partition elsewhere in the
    /// mesh. Kill rounds start at 1 so a recovery-enabled run always has
    /// a round-start checkpoint to rejoin from. The same seed always
    /// produces the identical plan, so every recovery path a chaos run
    /// exercises is replayable by seed alone.
    pub fn chaos(seed: u64, num_ranks: usize, max_round: u64) -> Self {
        assert!(num_ranks >= 2, "chaos needs at least 2 ranks");
        let s1 = splitmix(seed);
        let s2 = splitmix(s1);
        let s3 = splitmix(s2);
        let s4 = splitmix(s3);
        let s5 = splitmix(s4);
        let span = max_round.max(2);
        let victim = 1 + (s1 % (num_ranks as u64 - 1)) as usize;
        let kill_round = 1 + s2 % (span - 1);
        let other = (victim + 1 + (s3 % (num_ranks as u64 - 1)) as usize) % num_ranks;
        let part_a = s4 as usize % num_ranks;
        let part_b = (part_a + 1) % num_ranks;
        let part_round = s5 % span;
        let mut plan = FaultPlan::none()
            .kill_at_round(victim, kill_round)
            .drop_message(other, victim, s3 % 3)
            .delay_message(victim, other, s4 % 3, Duration::from_millis(5 + s5 % 40))
            .partition(part_a, part_b, part_round, part_round + 2);
        plan.chaos_seed = Some(seed);
        plan
    }

    /// The plan a respawned `rank` re-arms with: its first `count`
    /// scheduled kills are removed (they already fired in previous
    /// incarnations) while every other event — including kills of other
    /// ranks and all message faults — stays active.
    pub fn disarm_kills(&self, rank: usize, count: u64) -> Self {
        let mut remaining = count;
        let events = self
            .events
            .iter()
            .filter(|e| match e {
                FaultEvent::KillAtRound { rank: r, .. } if *r == rank && remaining > 0 => {
                    remaining -= 1;
                    false
                }
                _ => true,
            })
            .cloned()
            .collect();
        FaultPlan {
            events,
            chaos_seed: self.chaos_seed,
        }
    }

    /// Serialize to a single-line text form (embedded in run manifests):
    /// `seed=<hex|-> <event> <event> …` with colon-separated event
    /// fields. Empty plans encode as `seed=- none`.
    pub fn encode(&self) -> String {
        let mut s = match self.chaos_seed {
            Some(seed) => format!("seed={seed:016x}"),
            None => "seed=-".to_string(),
        };
        if self.events.is_empty() {
            s.push_str(" none");
            return s;
        }
        for e in &self.events {
            s.push(' ');
            match e {
                FaultEvent::KillAtRound { rank, round } => {
                    s.push_str(&format!("kill:{rank}:{round}"));
                }
                FaultEvent::DropMessage {
                    from,
                    to,
                    tag,
                    nth_match,
                } => {
                    let tag = tag.map_or("any".to_string(), |t| t.to_string());
                    s.push_str(&format!("drop:{from}:{to}:{tag}:{nth_match}"));
                }
                FaultEvent::DelayMessage {
                    from,
                    to,
                    tag,
                    nth_match,
                    delay,
                } => {
                    let tag = tag.map_or("any".to_string(), |t| t.to_string());
                    s.push_str(&format!(
                        "delay:{from}:{to}:{tag}:{nth_match}:{}",
                        delay.as_micros()
                    ));
                }
                FaultEvent::Partition {
                    a,
                    b,
                    from_round,
                    until_round,
                } => {
                    s.push_str(&format!("partition:{a}:{b}:{from_round}:{until_round}"));
                }
            }
        }
        s
    }

    /// Restore a plan from [`FaultPlan::encode`] output.
    ///
    /// # Errors
    /// A human-readable description of the first malformed token.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut tokens = text.split_whitespace();
        let seed_tok = tokens.next().ok_or("empty fault plan")?;
        let seed_val = seed_tok
            .strip_prefix("seed=")
            .ok_or_else(|| format!("expected seed=, got {seed_tok}"))?;
        let chaos_seed = if seed_val == "-" {
            None
        } else {
            Some(u64::from_str_radix(seed_val, 16).map_err(|_| format!("bad seed {seed_val}"))?)
        };
        let mut events = Vec::new();
        for tok in tokens {
            if tok == "none" {
                continue;
            }
            let fields: Vec<&str> = tok.split(':').collect();
            let get = |i: usize, what: &str| -> Result<u64, String> {
                fields
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad {what} in {tok}"))
            };
            let get_tag = |i: usize| -> Result<Option<u64>, String> {
                match fields.get(i) {
                    Some(&"any") => Ok(None),
                    Some(v) => v.parse().map(Some).map_err(|_| format!("bad tag in {tok}")),
                    None => Err(format!("bad tag in {tok}")),
                }
            };
            let arity = |n: usize| -> Result<(), String> {
                if fields.len() == n {
                    Ok(())
                } else {
                    Err(format!("wrong field count in {tok}"))
                }
            };
            events.push(match fields[0] {
                "kill" => {
                    arity(3)?;
                    FaultEvent::KillAtRound {
                        rank: get(1, "rank")? as usize,
                        round: get(2, "round")?,
                    }
                }
                "drop" => {
                    arity(5)?;
                    FaultEvent::DropMessage {
                        from: get(1, "from")? as usize,
                        to: get(2, "to")? as usize,
                        tag: get_tag(3)?,
                        nth_match: get(4, "nth")?,
                    }
                }
                "delay" => {
                    arity(6)?;
                    FaultEvent::DelayMessage {
                        from: get(1, "from")? as usize,
                        to: get(2, "to")? as usize,
                        tag: get_tag(3)?,
                        nth_match: get(4, "nth")?,
                        delay: Duration::from_micros(get(5, "micros")?),
                    }
                }
                "partition" => {
                    arity(5)?;
                    FaultEvent::Partition {
                        a: get(1, "a")? as usize,
                        b: get(2, "b")? as usize,
                        from_round: get(3, "from_round")?,
                        until_round: get(4, "until_round")?,
                    }
                }
                other => return Err(format!("unknown fault kind {other}")),
            });
        }
        Ok(FaultPlan { events, chaos_seed })
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mutable runtime view of a plan: per-event match counters, consulted by
/// the fabric on every send.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    /// How many sends have matched each drop/delay event so far.
    counters: parking_lot::Mutex<Vec<u64>>,
    /// The sender's current protocol round (stamped by the per-round
    /// fault poll); round-windowed events (partitions) match against it.
    round: std::sync::atomic::AtomicU64,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let n = plan.events.len();
        FaultRuntime {
            plan,
            counters: parking_lot::Mutex::new(vec![0; n]),
            round: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record the rank's current round so round-windowed events can
    /// match sends made during it.
    pub(crate) fn set_round(&self, round: u64) {
        self.round
            .store(round, std::sync::atomic::Ordering::Relaxed);
    }

    /// Decide the fate of a message. The first matching event whose
    /// `nth_match` is hit wins; drops shadow delays scheduled later in
    /// the plan for the same message.
    pub(crate) fn on_send(&self, from: usize, to: usize, tag: u64) -> SendFate {
        if self.plan.events.is_empty() {
            return SendFate::Deliver;
        }
        let round = self.round.load(std::sync::atomic::Ordering::Relaxed);
        let mut counters = self.counters.lock();
        let mut fate = SendFate::Deliver;
        for (i, event) in self.plan.events.iter().enumerate() {
            if !event.matches_send(from, to, tag, round) {
                continue;
            }
            let seen = counters[i];
            counters[i] += 1;
            if fate != SendFate::Deliver {
                continue; // already decided; still advance other counters
            }
            match event {
                FaultEvent::DropMessage { nth_match, .. } if seen == *nth_match => {
                    fate = SendFate::Drop;
                }
                FaultEvent::DelayMessage {
                    nth_match, delay, ..
                } if seen == *nth_match => {
                    fate = SendFate::Delay(*delay);
                }
                FaultEvent::Partition { .. } => {
                    // A partition drops *every* message in its window.
                    fate = SendFate::Drop;
                }
                _ => {}
            }
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_kill_is_reproducible_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded_kill(seed, 4, 10);
            let b = FaultPlan::seeded_kill(seed, 4, 10);
            assert_eq!(a, b);
            match a.events()[0] {
                FaultEvent::KillAtRound { rank, round } => {
                    assert!(rank < 4);
                    assert!(round < 10);
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn kill_due_fires_at_and_after_round() {
        let plan = FaultPlan::none().kill_at_round(2, 5);
        assert_eq!(plan.kill_due(2, 4), None);
        assert_eq!(plan.kill_due(2, 5), Some(5));
        assert_eq!(plan.kill_due(2, 9), Some(5));
        assert_eq!(plan.kill_due(1, 9), None);
    }

    #[test]
    fn runtime_counts_matches_per_event() {
        let plan = FaultPlan::none().drop_message(0, 1, 1).delay_message(
            0,
            1,
            2,
            Duration::from_millis(50),
        );
        let rt = FaultRuntime::new(plan);
        assert_eq!(rt.on_send(0, 1, 7), SendFate::Deliver); // match #0
        assert_eq!(rt.on_send(1, 0, 7), SendFate::Deliver); // no match
        assert_eq!(rt.on_send(0, 1, 8), SendFate::Drop); // match #1
        assert_eq!(
            rt.on_send(0, 1, 9),
            SendFate::Delay(Duration::from_millis(50)) // match #2
        );
        assert_eq!(rt.on_send(0, 1, 9), SendFate::Deliver); // match #3
    }

    #[test]
    fn chaos_plans_are_reproducible_and_never_kill_root() {
        for seed in 0..100u64 {
            let a = FaultPlan::chaos(seed, 4, 8);
            let b = FaultPlan::chaos(seed, 4, 8);
            assert_eq!(a, b, "same seed must yield the identical plan");
            assert_eq!(a.chaos_seed(), Some(seed));
            let kill = a
                .events()
                .iter()
                .find_map(|e| match e {
                    FaultEvent::KillAtRound { rank, round } => Some((*rank, *round)),
                    _ => None,
                })
                .expect("chaos always schedules a kill");
            assert!(kill.0 >= 1 && kill.0 < 4, "root must never be the victim");
            assert!(
                kill.1 >= 1 && kill.1 < 8,
                "kill round {} must leave a checkpoint to rejoin from",
                kill.1
            );
            assert!(a.events().len() >= 4, "kill + drop + delay + partition");
        }
    }

    #[test]
    fn plan_encode_decode_round_trips() {
        let plans = [
            FaultPlan::none(),
            FaultPlan::none().kill_at_round(3, 7),
            FaultPlan::none()
                .drop_message(0, 2, 1)
                .delay_message(2, 0, 0, Duration::from_micros(1500))
                .partition(1, 3, 4, 6),
            FaultPlan::new(vec![FaultEvent::DropMessage {
                from: 1,
                to: 0,
                tag: Some(42),
                nth_match: 2,
            }]),
            FaultPlan::chaos(0xDEAD_BEEF, 6, 10),
        ];
        for plan in plans {
            let text = plan.encode();
            let back =
                FaultPlan::decode(&text).unwrap_or_else(|e| panic!("decode {text:?} failed: {e}"));
            assert_eq!(back, plan, "round trip of {text:?}");
        }
        assert!(FaultPlan::decode("nonsense").is_err());
        assert!(FaultPlan::decode("seed=- kill:1").is_err());
        assert!(FaultPlan::decode("seed=- warp:1:2").is_err());
    }

    #[test]
    fn disarm_kills_removes_only_the_victims_first_kills() {
        let plan = FaultPlan::none()
            .kill_at_round(2, 3)
            .kill_at_round(2, 9)
            .kill_at_round(1, 5)
            .drop_message(0, 2, 0);
        let rearmed = plan.disarm_kills(2, 1);
        assert_eq!(rearmed.kill_due(2, 100), Some(9), "second kill stays armed");
        assert_eq!(rearmed.kill_due(1, 100), Some(5), "other ranks unaffected");
        assert_eq!(rearmed.events().len(), 3, "message faults survive");
        let fully = plan.disarm_kills(2, 2);
        assert_eq!(fully.kill_due(2, 100), None);
    }

    #[test]
    fn partition_drops_messages_only_inside_its_window() {
        let rt = FaultRuntime::new(FaultPlan::none().partition(0, 1, 2, 4));
        rt.set_round(1);
        assert_eq!(rt.on_send(0, 1, 7), SendFate::Deliver);
        rt.set_round(2);
        assert_eq!(rt.on_send(0, 1, 7), SendFate::Drop);
        assert_eq!(rt.on_send(1, 0, 7), SendFate::Drop, "both directions");
        assert_eq!(rt.on_send(0, 2, 7), SendFate::Deliver, "other links open");
        rt.set_round(4);
        assert_eq!(rt.on_send(0, 1, 7), SendFate::Deliver, "partition heals");
    }

    #[test]
    fn tag_filters_restrict_matches() {
        let plan = FaultPlan::new(vec![FaultEvent::DropMessage {
            from: 0,
            to: 1,
            tag: Some(42),
            nth_match: 0,
        }]);
        let rt = FaultRuntime::new(plan);
        assert_eq!(rt.on_send(0, 1, 41), SendFate::Deliver);
        assert_eq!(rt.on_send(0, 1, 42), SendFate::Drop);
    }
}
