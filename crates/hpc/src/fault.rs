//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a declarative list of failures — kill a rank at a
//! given round, drop or delay the n-th matching message between two
//! ranks — that the [`crate::ThreadCluster`] fabric applies while a
//! program runs. Plans contain no randomness of their own: the same plan
//! against the same program produces the same failure interleaving, which
//! is what makes failure *tests* possible. The seeded constructors derive
//! their choices from a caller-provided seed via a splitmix step, so
//! randomized fault campaigns are reproducible too.

use std::time::Duration;

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash `rank` the first time it polls faults at `round` or later.
    ///
    /// The crash is delivered as a panic at the poll site, unwound to the
    /// fabric boundary, and converted into a dead-rank outcome — the same
    /// path a genuine panic in rank code takes.
    KillAtRound {
        /// Victim rank.
        rank: usize,
        /// First round at which the kill fires.
        round: u64,
    },
    /// Silently discard the `nth_match`-th (0-based) message from `from`
    /// to `to` whose tag matches `tag` (`None` matches any tag).
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Required tag, or `None` for any.
        tag: Option<u64>,
        /// Which matching message to drop (0-based).
        nth_match: u64,
    },
    /// Hold the `nth_match`-th matching message for `delay` before it
    /// becomes receivable.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Required tag, or `None` for any.
        tag: Option<u64>,
        /// Which matching message to delay (0-based).
        nth_match: u64,
        /// How long the message is held.
        delay: Duration,
    },
}

impl FaultEvent {
    fn matches_send(&self, from: usize, to: usize, tag: u64) -> bool {
        match self {
            FaultEvent::DropMessage {
                from: f,
                to: t,
                tag: tg,
                ..
            }
            | FaultEvent::DelayMessage {
                from: f,
                to: t,
                tag: tg,
                ..
            } => *f == from && *t == to && tg.map(|x| x == tag).unwrap_or(true),
            FaultEvent::KillAtRound { .. } => false,
        }
    }
}

/// What the fabric does with an outgoing message after consulting the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver immediately (no fault matched).
    Deliver,
    /// Discard silently.
    Drop,
    /// Deliver after the duration elapses.
    Delay(Duration),
}

/// A reproducible schedule of injected failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Add an event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Crash `rank` at `round`.
    pub fn kill_at_round(mut self, rank: usize, round: u64) -> Self {
        self.events.push(FaultEvent::KillAtRound { rank, round });
        self
    }

    /// Drop the `nth`-th message from `from` to `to` (any tag).
    pub fn drop_message(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.events.push(FaultEvent::DropMessage {
            from,
            to,
            tag: None,
            nth_match: nth,
        });
        self
    }

    /// Delay the `nth`-th message from `from` to `to` (any tag).
    pub fn delay_message(mut self, from: usize, to: usize, nth: u64, delay: Duration) -> Self {
        self.events.push(FaultEvent::DelayMessage {
            from,
            to,
            tag: None,
            nth_match: nth,
            delay,
        });
        self
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A reproducible one-victim plan: derive the victim rank and kill
    /// round from `seed`. `max_round` bounds the kill round (exclusive,
    /// min 1 so a kill always fires).
    pub fn seeded_kill(seed: u64, num_ranks: usize, max_round: u64) -> Self {
        assert!(num_ranks > 0);
        let a = splitmix(seed);
        let b = splitmix(a);
        let rank = (a % num_ranks as u64) as usize;
        let round = b % max_round.max(1);
        FaultPlan::none().kill_at_round(rank, round)
    }

    /// First kill round scheduled for `rank` that has come due by `round`.
    pub fn kill_due(&self, rank: usize, round: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::KillAtRound { rank: r, round: k } if *r == rank && *k <= round => {
                    Some(*k)
                }
                _ => None,
            })
            .min()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mutable runtime view of a plan: per-event match counters, consulted by
/// the fabric on every send.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    /// How many sends have matched each drop/delay event so far.
    counters: parking_lot::Mutex<Vec<u64>>,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let n = plan.events.len();
        FaultRuntime {
            plan,
            counters: parking_lot::Mutex::new(vec![0; n]),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of a message. The first matching event whose
    /// `nth_match` is hit wins; drops shadow delays scheduled later in
    /// the plan for the same message.
    pub(crate) fn on_send(&self, from: usize, to: usize, tag: u64) -> SendFate {
        if self.plan.events.is_empty() {
            return SendFate::Deliver;
        }
        let mut counters = self.counters.lock();
        let mut fate = SendFate::Deliver;
        for (i, event) in self.plan.events.iter().enumerate() {
            if !event.matches_send(from, to, tag) {
                continue;
            }
            let seen = counters[i];
            counters[i] += 1;
            if fate != SendFate::Deliver {
                continue; // already decided; still advance other counters
            }
            match event {
                FaultEvent::DropMessage { nth_match, .. } if seen == *nth_match => {
                    fate = SendFate::Drop;
                }
                FaultEvent::DelayMessage {
                    nth_match, delay, ..
                } if seen == *nth_match => {
                    fate = SendFate::Delay(*delay);
                }
                _ => {}
            }
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_kill_is_reproducible_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded_kill(seed, 4, 10);
            let b = FaultPlan::seeded_kill(seed, 4, 10);
            assert_eq!(a, b);
            match a.events()[0] {
                FaultEvent::KillAtRound { rank, round } => {
                    assert!(rank < 4);
                    assert!(round < 10);
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn kill_due_fires_at_and_after_round() {
        let plan = FaultPlan::none().kill_at_round(2, 5);
        assert_eq!(plan.kill_due(2, 4), None);
        assert_eq!(plan.kill_due(2, 5), Some(5));
        assert_eq!(plan.kill_due(2, 9), Some(5));
        assert_eq!(plan.kill_due(1, 9), None);
    }

    #[test]
    fn runtime_counts_matches_per_event() {
        let plan = FaultPlan::none().drop_message(0, 1, 1).delay_message(
            0,
            1,
            2,
            Duration::from_millis(50),
        );
        let rt = FaultRuntime::new(plan);
        assert_eq!(rt.on_send(0, 1, 7), SendFate::Deliver); // match #0
        assert_eq!(rt.on_send(1, 0, 7), SendFate::Deliver); // no match
        assert_eq!(rt.on_send(0, 1, 8), SendFate::Drop); // match #1
        assert_eq!(
            rt.on_send(0, 1, 9),
            SendFate::Delay(Duration::from_millis(50)) // match #2
        );
        assert_eq!(rt.on_send(0, 1, 9), SendFate::Deliver); // match #3
    }

    #[test]
    fn tag_filters_restrict_matches() {
        let plan = FaultPlan::new(vec![FaultEvent::DropMessage {
            from: 0,
            to: 1,
            tag: Some(42),
            nth_match: 0,
        }]);
        let rt = FaultRuntime::new(plan);
        assert_eq!(rt.on_send(0, 1, 41), SendFate::Deliver);
        assert_eq!(rt.on_send(0, 1, 42), SendFate::Drop);
    }
}
