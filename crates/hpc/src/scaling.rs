//! Weak/strong scaling simulators — generators for the paper's scaling
//! tables (experiments E7/E8).

use crate::gpu::GpuSpec;
use crate::perf::{PerfModel, WorkloadShape};

/// One row of a scaling table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// GPUs (ranks).
    pub ranks: usize,
    /// Seconds per iteration.
    pub time_per_iteration_s: f64,
    /// Aggregate throughput (MC moves/s).
    pub throughput: f64,
    /// Parallel efficiency vs the smallest configuration.
    pub efficiency: f64,
}

/// Weak scaling: one walker (fixed workload) per GPU; the iteration time
/// grows only through collectives. Efficiency = T(1-ish)/T(p).
pub fn weak_scaling_table(
    gpu: &GpuSpec,
    shape: &WorkloadShape,
    ranks: &[usize],
) -> Vec<ScalingRow> {
    assert!(!ranks.is_empty());
    let model = PerfModel::new(gpu.clone(), shape.clone());
    let base = model.iteration(ranks[0]).total();
    ranks
        .iter()
        .map(|&p| {
            let t = model.iteration(p).total();
            ScalingRow {
                ranks: p,
                time_per_iteration_s: t,
                throughput: model.throughput(p),
                efficiency: base / t,
            }
        })
        .collect()
}

/// Strong scaling: a fixed global workload (total moves per iteration)
/// divided across GPUs. Communication is not divided, so efficiency decays
/// faster than weak scaling — Amdahl in action.
pub fn strong_scaling_table(
    gpu: &GpuSpec,
    shape: &WorkloadShape,
    ranks: &[usize],
) -> Vec<ScalingRow> {
    assert!(!ranks.is_empty());
    let total_moves = shape.moves_per_iteration;
    let total_training = shape.training_rows;
    let base = {
        let mut s = shape.clone();
        s.moves_per_iteration = total_moves / ranks[0] as u64;
        s.training_rows = total_training / ranks[0] as u64;
        let m = PerfModel::new(gpu.clone(), s);
        m.iteration(ranks[0]).total() * ranks[0] as f64
    };
    ranks
        .iter()
        .map(|&p| {
            let mut s = shape.clone();
            s.moves_per_iteration = (total_moves / p as u64).max(1);
            s.training_rows = (total_training / p as u64).max(1);
            let m = PerfModel::new(gpu.clone(), s);
            let t = m.iteration(p).total();
            ScalingRow {
                ranks: p,
                time_per_iteration_s: t,
                throughput: total_moves as f64 / t,
                efficiency: base / (t * p as f64),
            }
        })
        .collect()
}

/// Fraction of ideal synchronous-REWL throughput realized when energy
/// windows carry unequal diffusion cost. Replica exchange is a
/// round-based collective: every round completes at the pace of the
/// slowest window, so with per-window costs `c_i` the realized fraction
/// is `mean(c)/max(c)` ∈ (0, 1]. Equal-diffusion window layouts (see
/// dt-rewl's adaptive windows) drive the costs — and this factor —
/// toward 1.
///
/// # Panics
/// Panics when `window_costs` is empty, non-finite, negative, or
/// all-zero.
pub fn window_imbalance_factor(window_costs: &[f64]) -> f64 {
    assert!(!window_costs.is_empty(), "need at least one window cost");
    assert!(
        window_costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "window costs must be finite and non-negative"
    );
    let max = window_costs.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max > 0.0, "window costs must not be all zero");
    let mean = window_costs.iter().sum::<f64>() / window_costs.len() as f64;
    mean / max
}

/// Re-project a scaling table (E7/E8) under measured window imbalance:
/// each iteration stretches by `max(c)/mean(c)`, so throughput and
/// efficiency shrink by [`window_imbalance_factor`]. Feed it uniform-run
/// round-trip costs to model the un-tuned fleet, or the residual costs
/// of an equal-diffusion layout to quantify what adaptive windows buy
/// back at scale.
pub fn reproject_with_imbalance(rows: &[ScalingRow], window_costs: &[f64]) -> Vec<ScalingRow> {
    let factor = window_imbalance_factor(window_costs);
    rows.iter()
        .map(|r| ScalingRow {
            ranks: r.ranks,
            time_per_iteration_s: r.time_per_iteration_s / factor,
            throughput: r.throughput * factor,
            efficiency: r.efficiency * factor,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANKS: [usize; 6] = [8, 32, 128, 512, 1024, 3000];

    #[test]
    fn weak_scaling_efficiency_declines_gracefully() {
        let rows = weak_scaling_table(&GpuSpec::v100(), &WorkloadShape::paper_default(), &RANKS);
        assert_eq!(rows.len(), 6);
        assert!((rows[0].efficiency - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-12);
            assert!(w[1].throughput > w[0].throughput, "aggregate grows");
        }
        // At 3000 GPUs weak efficiency should still be decent (> 50%),
        // matching the paper's "scales to 3000 GPUs" claim.
        assert!(rows[5].efficiency > 0.5, "{}", rows[5].efficiency);
    }

    #[test]
    fn strong_scaling_saturates() {
        let rows = strong_scaling_table(
            &GpuSpec::mi250x_gcd(),
            &WorkloadShape::paper_default(),
            &[1, 2, 4, 8, 16, 32],
        );
        // Time per iteration must fall with ranks...
        for w in rows.windows(2) {
            assert!(w[1].time_per_iteration_s < w[0].time_per_iteration_s);
        }
        // ...but efficiency decays due to undivided communication.
        assert!(rows.last().unwrap().efficiency < rows[0].efficiency);
    }

    #[test]
    fn imbalance_factor_is_one_for_equal_windows_and_falls_with_skew() {
        assert!((window_imbalance_factor(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One window 4x slower than the other three: rounds gate on it.
        let f = window_imbalance_factor(&[4.0, 1.0, 1.0, 1.0]);
        assert!(((7.0 / 16.0) - f).abs() < 1e-12, "{f}");
        // Equalizing costs (what adaptive windows do) recovers the loss.
        assert!(window_imbalance_factor(&[1.8, 2.0, 1.9, 2.1]) > f);
    }

    #[test]
    fn reprojection_scales_time_up_and_efficiency_down() {
        let rows = weak_scaling_table(&GpuSpec::v100(), &WorkloadShape::paper_default(), &RANKS);
        let skewed = reproject_with_imbalance(&rows, &[4.0, 1.0, 1.0, 1.0]);
        let balanced = reproject_with_imbalance(&rows, &[1.0; 4]);
        for ((r, s), b) in rows.iter().zip(&skewed).zip(&balanced) {
            assert!(s.time_per_iteration_s > r.time_per_iteration_s);
            assert!(s.efficiency < r.efficiency);
            assert!(s.throughput < r.throughput);
            // A flat profile reprojects to the original table exactly.
            assert!((b.time_per_iteration_s - r.time_per_iteration_s).abs() < 1e-12);
            assert!((b.efficiency - r.efficiency).abs() < 1e-12);
        }
    }

    #[test]
    fn mi250x_weak_rows_beat_v100_rows() {
        let shape = WorkloadShape::paper_default();
        let v = weak_scaling_table(&GpuSpec::v100(), &shape, &RANKS);
        let m = weak_scaling_table(&GpuSpec::mi250x_gcd(), &shape, &RANKS);
        for (rv, rm) in v.iter().zip(&m) {
            assert!(rm.throughput > rv.throughput, "MI250X wins at {}", rv.ranks);
        }
    }
}
