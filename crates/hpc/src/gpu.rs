//! GPU hardware models.

/// An analytic GPU model: enough parameters to roofline-cost the
//  DeepThermo kernels (NN inference/training, ΔE evaluation, collectives).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name for reports.
    pub name: &'static str,
    /// Peak FP32 throughput (TFLOP/s).
    pub fp32_tflops: f64,
    /// HBM bandwidth (GB/s).
    pub mem_bw_gbps: f64,
    /// Intra-node interconnect bandwidth per link (GB/s) — NVLink / xGMI.
    pub intra_node_bw_gbps: f64,
    /// Inter-node network bandwidth per endpoint (GB/s) — EDR IB /
    /// Slingshot.
    pub inter_node_bw_gbps: f64,
    /// Network latency per hop (µs).
    pub net_latency_us: f64,
    /// GPUs (or GCDs) per node.
    pub gpus_per_node: usize,
    /// Fraction of FP32 peak achievable on small dense kernels (the
    /// proposal/surrogate MLPs are latency-bound, nowhere near peak).
    pub small_kernel_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA V100 (Summit): 15.7 TF FP32, 900 GB/s HBM2, NVLink2,
    /// dual-rail EDR InfiniBand, 6 GPUs/node.
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100",
            fp32_tflops: 15.7,
            mem_bw_gbps: 900.0,
            intra_node_bw_gbps: 50.0,
            inter_node_bw_gbps: 12.5,
            net_latency_us: 1.5,
            gpus_per_node: 6,
            small_kernel_efficiency: 0.08,
        }
    }

    /// AMD MI250X single GCD (Crusher/Frontier): ≈24 TF FP32 per GCD,
    /// 1.6 TB/s HBM2e, Infinity Fabric, Slingshot-11, 8 GCDs/node.
    pub fn mi250x_gcd() -> Self {
        GpuSpec {
            name: "MI250X",
            fp32_tflops: 23.9,
            mem_bw_gbps: 1638.0,
            intra_node_bw_gbps: 50.0,
            inter_node_bw_gbps: 25.0,
            net_latency_us: 2.0,
            gpus_per_node: 8,
            small_kernel_efficiency: 0.06,
        }
    }

    /// Effective FLOP/s on small dense kernels (FLOP/s, not TFLOP/s).
    pub fn effective_flops(&self) -> f64 {
        self.fp32_tflops * 1e12 * self.small_kernel_efficiency
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bytes_per_s(&self) -> f64 {
        self.mem_bw_gbps * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let v = GpuSpec::v100();
        let m = GpuSpec::mi250x_gcd();
        assert!(m.fp32_tflops > v.fp32_tflops);
        assert!(m.mem_bw_gbps > v.mem_bw_gbps);
        assert!(m.inter_node_bw_gbps > v.inter_node_bw_gbps);
        assert_eq!(v.gpus_per_node, 6);
        assert_eq!(m.gpus_per_node, 8);
    }

    #[test]
    fn effective_flops_are_a_small_fraction_of_peak() {
        let v = GpuSpec::v100();
        assert!(v.effective_flops() < 0.1 * v.fp32_tflops * 1e12);
        assert!(v.effective_flops() > 1e11);
    }
}
