//! Analytic performance model of one DeepThermo iteration.
//!
//! A WL iteration on one GPU alternates: (a) a batch of MC moves (ΔE
//! evaluation dominated by neighbor-table traffic + NN inference for deep
//! proposals), (b) periodic proposal-network retraining, (c) replica
//! exchange with a window neighbor, (d) an allreduce to average/broadcast
//! network weights. The model rooflines each component so scaling tables
//! reproduce the *shape* of the paper's results.

use crate::gpu::GpuSpec;
use dt_telemetry::{Phase, PhaseBreakdown};

/// Workload parameters of one walker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadShape {
    /// Lattice sites per walker.
    pub num_sites: usize,
    /// Neighbors summed per ΔE site update (z₁ + z₂).
    pub neighbors_per_site: usize,
    /// Sites updated per deep proposal (k).
    pub deep_update_sites: usize,
    /// Fraction of proposals that are deep (rest are local swaps).
    pub deep_fraction: f64,
    /// Proposal-network parameters.
    pub net_params: usize,
    /// MC moves per iteration (between collective phases).
    pub moves_per_iteration: u64,
    /// Training minibatch rows per iteration.
    pub training_rows: u64,
}

impl WorkloadShape {
    /// The paper-scale default: N = 8192-site supercell, two shells,
    /// k = N/16 deep updates at 10% mix, ~20k-parameter network.
    pub fn paper_default() -> Self {
        WorkloadShape {
            num_sites: 8192,
            neighbors_per_site: 14,
            deep_update_sites: 512,
            deep_fraction: 0.1,
            net_params: 20_000,
            moves_per_iteration: 100_000,
            training_rows: 4096,
        }
    }
}

/// Seconds spent in each component of one iteration on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Energy-difference evaluation (memory-bound).
    pub energy_eval_s: f64,
    /// Proposal-network inference (deep moves only).
    pub nn_inference_s: f64,
    /// Network training.
    pub training_s: f64,
    /// Replica exchange p2p messages.
    pub exchange_s: f64,
    /// Weight allreduce across all ranks.
    pub allreduce_s: f64,
}

impl CostBreakdown {
    /// Total seconds per iteration.
    pub fn total(&self) -> f64 {
        self.energy_eval_s
            + self.nn_inference_s
            + self.training_s
            + self.exchange_s
            + self.allreduce_s
    }

    /// Compute-only (no communication) seconds.
    pub fn compute(&self) -> f64 {
        self.energy_eval_s + self.nn_inference_s + self.training_s
    }

    /// The modeled seconds for a telemetry phase, if the model covers it
    /// (the roofline has no notion of checkpoint/gather overheads).
    pub fn phase_s(&self, phase: Phase) -> Option<f64> {
        match phase {
            Phase::EnergyEval => Some(self.energy_eval_s),
            Phase::Inference => Some(self.nn_inference_s),
            Phase::Train => Some(self.training_s),
            Phase::Exchange => Some(self.exchange_s),
            Phase::Allreduce => Some(self.allreduce_s),
            _ => None,
        }
    }
}

/// One phase of a measured-vs-modeled comparison
/// ([`measured_vs_modeled`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseComparison {
    /// Which phase.
    pub phase: Phase,
    /// Measured seconds summed across ranks.
    pub measured_s: f64,
    /// Measured fraction of the total across the modeled phases.
    pub measured_share: f64,
    /// Modeled fraction of the total across the modeled phases.
    pub modeled_share: f64,
    /// Modeled share rescaled to the measured total — what the roofline
    /// predicts this phase *should* have cost in this run's seconds.
    pub scaled_model_s: f64,
}

impl PhaseComparison {
    /// Signed model error in share space (measured − modeled); 0 when
    /// the measured split matches the roofline exactly.
    pub fn share_error(&self) -> f64 {
        self.measured_share - self.modeled_share
    }
}

/// Compare a measured cross-rank [`PhaseBreakdown`] against a modeled
/// [`CostBreakdown`], phase by phase.
///
/// Absolute seconds are not comparable — the measurement comes from
/// laptop threads, the model from GPU rooflines — so the comparison is
/// over *shares*: each side is normalized by its own total across the
/// five modeled phases, and the modeled share is also rescaled into
/// measured seconds (`scaled_model_s`) for readable tables. Phases the
/// model does not cover (checkpoint, gather, move-batch envelope) are
/// excluded.
pub fn measured_vs_modeled(
    measured: &PhaseBreakdown,
    modeled: &CostBreakdown,
) -> Vec<PhaseComparison> {
    let phases: Vec<Phase> = Phase::ALL
        .into_iter()
        .filter(|&p| modeled.phase_s(p).is_some())
        .collect();
    let measured_total: f64 = phases.iter().map(|&p| measured.total(p)).sum();
    let modeled_total: f64 = phases.iter().filter_map(|&p| modeled.phase_s(p)).sum();
    phases
        .into_iter()
        .map(|phase| {
            let measured_s = measured.total(phase);
            let model_s = modeled.phase_s(phase).expect("phase filtered as modeled");
            let measured_share = if measured_total > 0.0 {
                measured_s / measured_total
            } else {
                0.0
            };
            let modeled_share = if modeled_total > 0.0 {
                model_s / modeled_total
            } else {
                0.0
            };
            PhaseComparison {
                phase,
                measured_s,
                measured_share,
                modeled_share,
                scaled_model_s: modeled_share * measured_total,
            }
        })
        .collect()
}

/// Render a measured-vs-modeled comparison as an aligned text table.
pub fn comparison_table(rows: &[PhaseComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<11} {:>12} {:>10} {:>10} {:>14} {:>10}\n",
        "phase", "measured_s", "meas_%", "model_%", "scaled_model_s", "err_pp"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>12.6} {:>9.1}% {:>9.1}% {:>14.6} {:>+9.1}\n",
            r.phase.name(),
            r.measured_s,
            r.measured_share * 100.0,
            r.modeled_share * 100.0,
            r.scaled_model_s,
            r.share_error() * 100.0,
        ));
    }
    out
}

/// The analytic model: a GPU spec + workload shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// Hardware parameters.
    pub gpu: GpuSpec,
    /// Per-walker workload.
    pub shape: WorkloadShape,
}

impl PerfModel {
    /// Model for a GPU/workload pair.
    pub fn new(gpu: GpuSpec, shape: WorkloadShape) -> Self {
        PerfModel { gpu, shape }
    }

    /// Seconds for the MC move batch: local swaps touch
    /// `2·neighbors_per_site` table entries, deep moves
    /// `k·neighbors_per_site`, at ~8 bytes of traffic per entry.
    pub fn energy_eval_time(&self) -> f64 {
        let s = &self.shape;
        let local_moves = s.moves_per_iteration as f64 * (1.0 - s.deep_fraction);
        let deep_moves = s.moves_per_iteration as f64 * s.deep_fraction;
        let bytes_per_entry = 8.0;
        let local_bytes = local_moves * 2.0 * s.neighbors_per_site as f64 * bytes_per_entry;
        let deep_bytes =
            deep_moves * s.deep_update_sites as f64 * s.neighbors_per_site as f64 * bytes_per_entry;
        (local_bytes + deep_bytes) / self.gpu.mem_bytes_per_s()
    }

    /// Seconds of NN inference: 2 FLOPs per parameter per decoded site,
    /// two passes (forward + reverse replay).
    pub fn nn_inference_time(&self) -> f64 {
        let s = &self.shape;
        let deep_moves = s.moves_per_iteration as f64 * s.deep_fraction;
        let flops = deep_moves * 2.0 * s.deep_update_sites as f64 * 2.0 * s.net_params as f64;
        flops / self.gpu.effective_flops()
    }

    /// Seconds of training: forward + backward ≈ 6 FLOPs per parameter
    /// per row.
    pub fn training_time(&self) -> f64 {
        let s = &self.shape;
        let flops = s.training_rows as f64 * 6.0 * s.net_params as f64;
        flops / self.gpu.effective_flops()
    }

    /// Seconds for one replica-exchange handshake: a configuration
    /// (1 byte/site) + energy, against the inter-node link.
    pub fn exchange_time(&self) -> f64 {
        let bytes = self.shape.num_sites as f64 + 16.0;
        self.gpu.net_latency_us * 1e-6 + bytes / (self.gpu.inter_node_bw_gbps * 1e9)
    }

    /// Seconds for a ring allreduce of the network weights over `ranks`
    /// GPUs: `2(p−1)` steps of latency, `2(p−1)/p` of the payload over the
    /// slowest link.
    pub fn allreduce_time(&self, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let p = ranks as f64;
        let bytes = self.shape.net_params as f64 * 4.0; // fp32 weights
        let steps = 2.0 * (p - 1.0);
        let latency = steps * self.gpu.net_latency_us * 1e-6;
        let bw = self.gpu.inter_node_bw_gbps * 1e9;
        latency + 2.0 * (p - 1.0) / p * bytes / bw
    }

    /// Full per-iteration breakdown at a given cluster size.
    pub fn iteration(&self, ranks: usize) -> CostBreakdown {
        CostBreakdown {
            energy_eval_s: self.energy_eval_time(),
            nn_inference_s: self.nn_inference_time(),
            training_s: self.training_time(),
            exchange_s: if ranks > 1 { self.exchange_time() } else { 0.0 },
            allreduce_s: self.allreduce_time(ranks),
        }
    }

    /// Aggregate MC throughput (moves/s) of `ranks` GPUs.
    pub fn throughput(&self, ranks: usize) -> f64 {
        let t = self.iteration(ranks).total();
        ranks as f64 * self.shape.moves_per_iteration as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gpu: GpuSpec) -> PerfModel {
        PerfModel::new(gpu, WorkloadShape::paper_default())
    }

    #[test]
    fn all_components_are_positive() {
        let m = model(GpuSpec::v100());
        let b = m.iteration(64);
        assert!(b.energy_eval_s > 0.0);
        assert!(b.nn_inference_s > 0.0);
        assert!(b.training_s > 0.0);
        assert!(b.exchange_s > 0.0);
        assert!(b.allreduce_s > 0.0);
        assert!(b.total() > b.compute());
    }

    #[test]
    fn single_rank_has_no_comm_cost() {
        let m = model(GpuSpec::v100());
        let b = m.iteration(1);
        assert_eq!(b.exchange_s, 0.0);
        assert_eq!(b.allreduce_s, 0.0);
    }

    #[test]
    fn mi250x_outruns_v100_per_gpu() {
        let v = model(GpuSpec::v100());
        let m = model(GpuSpec::mi250x_gcd());
        assert!(m.throughput(1) > v.throughput(1));
        // The ratio should be hardware-like: between 1.1x and 2.5x.
        let ratio = m.throughput(1) / v.throughput(1);
        assert!((1.1..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn allreduce_grows_with_ranks() {
        let m = model(GpuSpec::v100());
        let t64 = m.allreduce_time(64);
        let t3000 = m.allreduce_time(3000);
        assert!(t3000 > t64);
        assert_eq!(m.allreduce_time(1), 0.0);
    }

    #[test]
    fn throughput_scales_sublinearly_but_monotonically() {
        let m = model(GpuSpec::mi250x_gcd());
        let mut prev = 0.0;
        for ranks in [1usize, 8, 64, 512, 3000] {
            let tp = m.throughput(ranks);
            assert!(tp > prev, "throughput must grow with ranks");
            prev = tp;
        }
        // Efficiency at 3000 ranks is below 1 but not collapsed.
        let eff = m.throughput(3000) / (3000.0 * m.throughput(1));
        assert!(eff < 1.0, "eff {eff}");
        assert!(eff > 0.3, "eff {eff}");
    }

    #[test]
    fn measured_vs_modeled_shares_sum_to_one() {
        use dt_telemetry::{RankTelemetry, Telemetry};
        let tel = Telemetry::enabled();
        tel.record_ns(Phase::EnergyEval, 6_000_000);
        tel.record_ns(Phase::Inference, 2_000_000);
        tel.record_ns(Phase::Exchange, 1_000_000);
        tel.record_ns(Phase::Allreduce, 1_000_000);
        tel.record_ns(Phase::Checkpoint, 50_000_000); // not modeled: excluded
        let ranks: Vec<RankTelemetry> = vec![tel.snapshot(0)];
        let measured = PhaseBreakdown::aggregate(&ranks);
        let modeled = model(GpuSpec::v100()).iteration(8);
        let rows = measured_vs_modeled(&measured, &modeled);
        assert_eq!(rows.len(), 5, "all five modeled phases compared");
        let meas_sum: f64 = rows.iter().map(|r| r.measured_share).sum();
        let model_sum: f64 = rows.iter().map(|r| r.modeled_share).sum();
        assert!((meas_sum - 1.0).abs() < 1e-9, "measured shares {meas_sum}");
        assert!((model_sum - 1.0).abs() < 1e-9, "modeled shares {model_sum}");
        // Scaled model seconds reconstruct the measured total (10 ms).
        let scaled_sum: f64 = rows.iter().map(|r| r.scaled_model_s).sum();
        assert!((scaled_sum - 0.01).abs() < 1e-9, "scaled sum {scaled_sum}");
        // EnergyEval row carries the measured 6 ms.
        let ee = rows.iter().find(|r| r.phase == Phase::EnergyEval).unwrap();
        assert!((ee.measured_s - 6e-3).abs() < 1e-12);
        assert!((ee.measured_share - 0.6).abs() < 1e-9);
        let table = comparison_table(&rows);
        assert!(table.contains("energy_eval"));
        assert!(table.contains("allreduce"));
    }

    #[test]
    fn measured_vs_modeled_handles_empty_measurement() {
        let measured = PhaseBreakdown::default();
        let modeled = model(GpuSpec::v100()).iteration(1);
        let rows = measured_vs_modeled(&measured, &modeled);
        assert!(rows.iter().all(|r| r.measured_share == 0.0));
        assert!(rows.iter().all(|r| r.scaled_model_s == 0.0));
    }

    #[test]
    fn deep_moves_dominate_inference_cost() {
        let mut shape = WorkloadShape::paper_default();
        shape.deep_fraction = 0.0;
        let no_deep = PerfModel::new(GpuSpec::v100(), shape.clone());
        assert_eq!(no_deep.nn_inference_time(), 0.0);
        shape.deep_fraction = 0.5;
        let half_deep = PerfModel::new(GpuSpec::v100(), shape);
        assert!(half_deep.nn_inference_time() > 0.0);
    }
}
