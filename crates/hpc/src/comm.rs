//! An MPI-flavored communicator over threads.
//!
//! Semantics mirror the subset of MPI the paper's REWL implementation
//! needs: tagged blocking point-to-point messages, a barrier, a
//! sum-allreduce, and a broadcast. Everything is backed by in-process
//! mailboxes, so a "rank" is a thread and a "GPU" is a walker owned by
//! that thread.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Key of a pending message: (source rank, tag).
type MsgKey = (usize, u64);

/// One rank's mailbox.
#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<MsgKey, VecDeque<Vec<u8>>>>,
    signal: Condvar,
}

/// Shared collective state (barrier / allreduce / broadcast), generation
/// counted so it can be reused round after round.
struct Collectives {
    lock: Mutex<CollectiveState>,
    signal: Condvar,
}

struct CollectiveState {
    barrier_arrived: usize,
    barrier_generation: u64,
    reduce_arrived: usize,
    reduce_generation: u64,
    reduce_accum: Vec<f64>,
    reduce_result: Vec<f64>,
    bcast_arrived: usize,
    bcast_generation: u64,
    bcast_payload: Option<Vec<u8>>,
}

/// The shared fabric of a [`ThreadCluster`].
struct Fabric {
    size: usize,
    mailboxes: Vec<Mailbox>,
    collectives: Collectives,
}

/// A rank's handle to the cluster fabric.
///
/// Mirrors an MPI communicator: cheap to clone *conceptually* (but owned
/// per rank here), `Send` so it can move into the rank's thread.
pub struct Communicator {
    rank: usize,
    fabric: Arc<Fabric>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.fabric.size
    }

    /// Send `data` to rank `to` with a message `tag` (non-blocking,
    /// buffered — like `MPI_Send` with an eager protocol).
    pub fn send(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(to < self.fabric.size, "send to invalid rank {to}");
        let mb = &self.fabric.mailboxes[to];
        mb.queues
            .lock()
            .entry((self.rank, tag))
            .or_default()
            .push_back(data);
        mb.signal.notify_all();
    }

    /// Blocking receive of a message from `from` with `tag`.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<u8> {
        let mb = &self.fabric.mailboxes[self.rank];
        let mut queues = mb.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&(from, tag)) {
                if let Some(msg) = q.pop_front() {
                    return msg;
                }
            }
            mb.signal.wait(&mut queues);
        }
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.barrier_generation;
        st.barrier_arrived += 1;
        if st.barrier_arrived == self.fabric.size {
            st.barrier_arrived = 0;
            st.barrier_generation += 1;
            c.signal.notify_all();
        } else {
            while st.barrier_generation == generation {
                c.signal.wait(&mut st);
            }
        }
    }

    /// Element-wise sum allreduce: after the call every rank's `data`
    /// holds the sum over all ranks. All ranks must pass equal lengths.
    pub fn allreduce_sum(&self, data: &mut [f64]) {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.reduce_generation;
        if st.reduce_arrived == 0 {
            st.reduce_accum = vec![0.0; data.len()];
        }
        assert_eq!(
            st.reduce_accum.len(),
            data.len(),
            "allreduce length mismatch across ranks"
        );
        for (a, &d) in st.reduce_accum.iter_mut().zip(data.iter()) {
            *a += d;
        }
        st.reduce_arrived += 1;
        if st.reduce_arrived == self.fabric.size {
            st.reduce_arrived = 0;
            st.reduce_result = std::mem::take(&mut st.reduce_accum);
            st.reduce_generation += 1;
            c.signal.notify_all();
        } else {
            while st.reduce_generation == generation {
                c.signal.wait(&mut st);
            }
        }
        data.copy_from_slice(&st.reduce_result);
    }

    /// Broadcast from `root`: returns the root's payload on every rank.
    pub fn broadcast(&self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.bcast_generation;
        if self.rank == root {
            st.bcast_payload = Some(data);
        }
        st.bcast_arrived += 1;
        if st.bcast_arrived == self.fabric.size {
            st.bcast_arrived = 0;
            st.bcast_generation += 1;
            c.signal.notify_all();
        } else {
            while st.bcast_generation == generation {
                c.signal.wait(&mut st);
            }
        }
        let payload = st
            .bcast_payload
            .clone()
            .expect("root must provide a broadcast payload");
        // Last rank out clears the slot for the next broadcast round.
        if st.bcast_arrived == 0 && st.bcast_generation > generation {
            // Note: payload intentionally left until overwritten by the
            // next round's root; clearing requires another barrier, which
            // the generation counter makes unnecessary.
        }
        payload
    }
}

/// Launches `size` ranks on threads and runs `f(comm)` on each; returns
/// the per-rank results in rank order.
pub struct ThreadCluster;

impl ThreadCluster {
    /// Run a cluster program. Panics in any rank propagate.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let fabric = Arc::new(Fabric {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            collectives: Collectives {
                lock: Mutex::new(CollectiveState {
                    barrier_arrived: 0,
                    barrier_generation: 0,
                    reduce_arrived: 0,
                    reduce_generation: 0,
                    reduce_accum: Vec::new(),
                    reduce_result: Vec::new(),
                    bcast_arrived: 0,
                    bcast_generation: 0,
                    bcast_payload: None,
                }),
                signal: Condvar::new(),
            },
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let comm = Communicator {
                        rank,
                        fabric: Arc::clone(&fabric),
                    };
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_round_trip() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1, 2, 3]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, got.iter().map(|b| b * 2).collect());
                vec![]
            }
        });
        assert_eq!(results[0], vec![2, 4, 6]);
    }

    #[test]
    fn tagged_messages_do_not_cross() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![11]);
                comm.send(1, 2, vec![22]);
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![11, 22]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 5;
        let results = ThreadCluster::run(size, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v);
            v
        });
        let expected = vec![(0..5).sum::<usize>() as f64, 5.0];
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn repeated_allreduce_rounds_are_isolated() {
        let results = ThreadCluster::run(3, |comm| {
            let mut out = Vec::new();
            for round in 0..4u64 {
                let mut v = vec![(comm.rank() as u64 + round) as f64];
                comm.allreduce_sum(&mut v);
                out.push(v[0]);
            }
            out
        });
        for r in results {
            assert_eq!(r, vec![3.0, 6.0, 9.0, 12.0]);
        }
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let results = ThreadCluster::run(4, |comm| {
            let mine = if comm.rank() == 2 {
                vec![9, 9, 9]
            } else {
                vec![]
            };
            comm.broadcast(2, mine)
        });
        for r in results {
            assert_eq!(r, vec![9, 9, 9]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = ThreadCluster::run(8, |comm| {
            phase1.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&c| c == 8));
    }

    #[test]
    fn many_rounds_of_mixed_collectives() {
        let results = ThreadCluster::run(4, |comm| {
            let mut acc = 0.0;
            for round in 0..10 {
                comm.barrier();
                let mut v = vec![1.0];
                comm.allreduce_sum(&mut v);
                acc += v[0];
                let b = comm.broadcast(round % 4, vec![round as u8]);
                assert_eq!(b, vec![round as u8]);
            }
            acc
        });
        for r in results {
            assert_eq!(r, 40.0);
        }
    }
}
