//! An MPI-flavored communicator over threads, with fault awareness.
//!
//! Semantics mirror the subset of MPI the paper's REWL implementation
//! needs: tagged point-to-point messages, a barrier, a sum-allreduce, and
//! a broadcast. Everything is backed by in-process mailboxes, so a "rank"
//! is a thread and a "GPU" is a walker owned by that thread.
//!
//! On top of the happy path, the fabric simulates an *unreliable*
//! cluster:
//!
//! - a [`crate::FaultPlan`] can drop or delay specific messages and crash
//!   ranks at chosen rounds, deterministically;
//! - every receive has a deadline-bounded form ([`Communicator::recv_timeout`],
//!   [`Communicator::try_recv`]) returning [`CommError`] instead of
//!   hanging;
//! - a rank death (injected or a genuine panic caught by
//!   [`ThreadCluster::run_with_faults`]) is broadcast to the fabric:
//!   pending receives from the dead rank fail fast with
//!   [`CommError::RankDead`], and in-flight collectives complete over the
//!   survivors instead of deadlocking.
//!
//! Collectives count *live* ranks: a barrier or allreduce entered by all
//! survivors completes even while corpses hold unfilled slots. A
//! broadcast whose root died before providing a payload fails with
//! `RankDead` on every waiter rather than hanging.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::fault::{FaultPlan, FaultRuntime, SendFate};

/// Upper bound applied to the legacy infallible blocking calls so that no
/// wait — even one reached through an unexpected interleaving — is
/// unbounded. Generous enough that it only trips on genuine deadlocks.
const WATCHDOG: Duration = Duration::from_secs(300);

/// Why a communication call could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The deadline elapsed before a matching message arrived.
    Timeout {
        /// Rank the receive was posted against.
        from: usize,
        /// Message tag the receive was posted against.
        tag: u64,
    },
    /// The peer rank is dead and no matching message remains in flight.
    RankDead(usize),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for tag {tag} from rank {from}")
            }
            CommError::RankDead(rank) => write!(f, "rank {rank} is dead"),
        }
    }
}

impl std::error::Error for CommError {}

/// Payload carried by [`ThreadCluster`] kill faults; recognized by the
/// panic handler so an injected crash reports cleanly.
#[derive(Debug, Clone)]
pub struct SimulatedCrash {
    /// Rank that was crashed.
    pub rank: usize,
    /// Round at which the kill fired.
    pub round: u64,
}

/// Per-rank message-traffic counters, accumulated lock-free inside the
/// fabric as the rank communicates.
#[derive(Debug, Default)]
struct TrafficCounters {
    sends: AtomicU64,
    send_bytes: AtomicU64,
    recvs: AtomicU64,
    recv_bytes: AtomicU64,
    timeouts: AtomicU64,
    dead_peer_errors: AtomicU64,
    dropped_sends: AtomicU64,
    delayed_sends: AtomicU64,
}

/// A point-in-time copy of one rank's traffic counters
/// ([`Communicator::traffic`]). Feeds the per-rank telemetry snapshot in
/// the REWL driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Messages this rank sent (including delayed, excluding dropped).
    pub sends: u64,
    /// Payload bytes across all sends that entered the fabric.
    pub send_bytes: u64,
    /// Messages this rank successfully received.
    pub recvs: u64,
    /// Payload bytes across all successful receives.
    pub recv_bytes: u64,
    /// Receives that failed with [`CommError::Timeout`].
    pub timeouts: u64,
    /// Receives that failed with [`CommError::RankDead`].
    pub dead_peer_errors: u64,
    /// Sends eaten by the fault plan.
    pub dropped_sends: u64,
    /// Sends the fault plan put in flight with a delay.
    pub delayed_sends: u64,
}

/// Key of a pending message: (source rank, tag).
type MsgKey = (usize, u64);

/// A buffered message; `deliver_at` is in the future for delayed sends.
struct Envelope {
    deliver_at: Instant,
    payload: Vec<u8>,
}

/// One rank's mailbox.
#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<MsgKey, VecDeque<Envelope>>>,
    signal: Condvar,
}

/// Shared collective state (barrier / allreduce / broadcast), generation
/// counted so it can be reused round after round.
struct Collectives {
    lock: Mutex<CollectiveState>,
    signal: Condvar,
}

struct CollectiveState {
    /// Ranks still alive; collectives complete when `*_arrived` reaches
    /// this count.
    live: usize,
    barrier_arrived: usize,
    barrier_generation: u64,
    reduce_arrived: usize,
    reduce_generation: u64,
    reduce_accum: Vec<f64>,
    reduce_result: Vec<f64>,
    bcast_arrived: usize,
    bcast_generation: u64,
    bcast_payload: Option<Vec<u8>>,
    /// Generation the current `bcast_payload` was provided for; lets
    /// waiters distinguish a fresh payload from a stale one left by a
    /// previous round after the root died.
    bcast_provided_generation: Option<u64>,
}

impl CollectiveState {
    /// Complete any collective that the survivors have now fully entered.
    /// Called after a death shrinks `live`.
    fn settle_after_death(&mut self) {
        if self.live == 0 {
            return;
        }
        if self.barrier_arrived >= self.live {
            self.barrier_arrived = 0;
            self.barrier_generation += 1;
        }
        if self.reduce_arrived >= self.live {
            self.reduce_arrived = 0;
            self.reduce_result = std::mem::take(&mut self.reduce_accum);
            self.reduce_generation += 1;
        }
        if self.bcast_arrived >= self.live {
            self.bcast_arrived = 0;
            self.bcast_generation += 1;
        }
    }
}

/// The shared fabric of a [`ThreadCluster`].
struct Fabric {
    size: usize,
    mailboxes: Vec<Mailbox>,
    collectives: Collectives,
    dead: Vec<AtomicBool>,
    faults: FaultRuntime,
    traffic: Vec<TrafficCounters>,
}

impl Fabric {
    fn new(size: usize, plan: FaultPlan) -> Self {
        Fabric {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            traffic: (0..size).map(|_| TrafficCounters::default()).collect(),
            collectives: Collectives {
                lock: Mutex::new(CollectiveState {
                    live: size,
                    barrier_arrived: 0,
                    barrier_generation: 0,
                    reduce_arrived: 0,
                    reduce_generation: 0,
                    reduce_accum: Vec::new(),
                    reduce_result: Vec::new(),
                    bcast_arrived: 0,
                    bcast_generation: 0,
                    bcast_payload: None,
                    bcast_provided_generation: None,
                }),
                signal: Condvar::new(),
            },
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            faults: FaultRuntime::new(plan),
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Record a rank death and wake everyone who may be waiting on it:
    /// collective waiters (a now-complete round is settled first) and all
    /// mailbox waiters (so receives from the corpse fail fast).
    fn mark_dead(&self, rank: usize) {
        if self.dead[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.collectives.lock.lock();
            st.live -= 1;
            st.settle_after_death();
            self.collectives.signal.notify_all();
        }
        for mb in &self.mailboxes {
            mb.signal.notify_all();
        }
    }
}

/// A rank's handle to the cluster fabric.
///
/// Mirrors an MPI communicator: cheap to clone *conceptually* (but owned
/// per rank here), `Send` so it can move into the rank's thread.
pub struct Communicator {
    rank: usize,
    fabric: Arc<Fabric>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster (including dead ones).
    pub fn size(&self) -> usize {
        self.fabric.size
    }

    /// Whether `rank` is still alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        !self.fabric.is_dead(rank)
    }

    /// Number of ranks currently alive.
    pub fn live_count(&self) -> usize {
        self.fabric.collectives.lock.lock().live
    }

    /// A point-in-time copy of this rank's message-traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        let c = &self.fabric.traffic[self.rank];
        TrafficSnapshot {
            sends: c.sends.load(Ordering::Relaxed),
            send_bytes: c.send_bytes.load(Ordering::Relaxed),
            recvs: c.recvs.load(Ordering::Relaxed),
            recv_bytes: c.recv_bytes.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            dead_peer_errors: c.dead_peer_errors.load(Ordering::Relaxed),
            dropped_sends: c.dropped_sends.load(Ordering::Relaxed),
            delayed_sends: c.delayed_sends.load(Ordering::Relaxed),
        }
    }

    /// Crash this rank (panic with a [`SimulatedCrash`] payload) if the
    /// fault plan schedules a kill at or before `round`. Rank programs
    /// call this once per round; [`ThreadCluster::run_with_faults`]
    /// converts the unwind into a dead-rank outcome.
    pub fn poll_faults(&self, round: u64) {
        if let Some(kill_round) = self.fabric.faults.plan().kill_due(self.rank, round) {
            std::panic::panic_any(SimulatedCrash {
                rank: self.rank,
                round: kill_round,
            });
        }
    }

    /// Send `data` to rank `to` with a message `tag` (non-blocking,
    /// buffered — like `MPI_Send` with an eager protocol). Sends to dead
    /// ranks are silently discarded, as are messages the fault plan
    /// drops; delayed messages become receivable only after their delay.
    pub fn send(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(to < self.fabric.size, "send to invalid rank {to}");
        let counters = &self.fabric.traffic[self.rank];
        let deliver_at = match self.fabric.faults.on_send(self.rank, to, tag) {
            SendFate::Drop => {
                counters.dropped_sends.fetch_add(1, Ordering::Relaxed);
                return;
            }
            SendFate::Deliver => Instant::now(),
            SendFate::Delay(d) => {
                counters.delayed_sends.fetch_add(1, Ordering::Relaxed);
                Instant::now() + d
            }
        };
        counters.sends.fetch_add(1, Ordering::Relaxed);
        counters
            .send_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        if self.fabric.is_dead(to) {
            return;
        }
        let mb = &self.fabric.mailboxes[to];
        mb.queues
            .lock()
            .entry((self.rank, tag))
            .or_default()
            .push_back(Envelope {
                deliver_at,
                payload: data,
            });
        mb.signal.notify_all();
    }

    /// Non-blocking receive: `Ok(Some(..))` if a deliverable message is
    /// queued, `Ok(None)` if not, `Err(RankDead)` if `from` is dead with
    /// nothing in flight.
    pub fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        let counters = &self.fabric.traffic[self.rank];
        let mb = &self.fabric.mailboxes[self.rank];
        let mut queues = mb.queues.lock();
        let now = Instant::now();
        if let Some(q) = queues.get_mut(&(from, tag)) {
            if let Some(pos) = q.iter().position(|m| m.deliver_at <= now) {
                let payload = q.remove(pos).expect("position just found").payload;
                counters.recvs.fetch_add(1, Ordering::Relaxed);
                counters
                    .recv_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                return Ok(Some(payload));
            }
            if !q.is_empty() {
                // Delayed messages still in flight; the sender's death
                // does not recall them.
                return Ok(None);
            }
        }
        if self.fabric.is_dead(from) {
            counters.dead_peer_errors.fetch_add(1, Ordering::Relaxed);
            return Err(CommError::RankDead(from));
        }
        Ok(None)
    }

    /// Blocking receive with a deadline. Fails with
    /// [`CommError::Timeout`] when `timeout` elapses and
    /// [`CommError::RankDead`] as soon as `from` is known dead with no
    /// matching message in flight (already-buffered messages from a dead
    /// sender are still delivered first).
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        let deadline = Instant::now() + timeout;
        let counters = &self.fabric.traffic[self.rank];
        let mb = &self.fabric.mailboxes[self.rank];
        let mut queues = mb.queues.lock();
        loop {
            let now = Instant::now();
            let mut earliest_delayed: Option<Instant> = None;
            if let Some(q) = queues.get_mut(&(from, tag)) {
                if let Some(pos) = q.iter().position(|m| m.deliver_at <= now) {
                    let payload = q.remove(pos).expect("position just found").payload;
                    counters.recvs.fetch_add(1, Ordering::Relaxed);
                    counters
                        .recv_bytes
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    return Ok(payload);
                }
                earliest_delayed = q.iter().map(|m| m.deliver_at).min();
            }
            if earliest_delayed.is_none() && self.fabric.is_dead(from) {
                counters.dead_peer_errors.fetch_add(1, Ordering::Relaxed);
                return Err(CommError::RankDead(from));
            }
            if now >= deadline {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(CommError::Timeout { from, tag });
            }
            // Sleep until whichever comes first: the deadline or the
            // moment a delayed message matures. Death notifications wake
            // every mailbox waiter, so re-check on every wakeup.
            let mut wake = deadline;
            if let Some(t) = earliest_delayed {
                wake = wake.min(t);
            }
            let nap = wake
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            mb.signal.wait_for(&mut queues, nap);
        }
    }

    /// Blocking receive of a message from `from` with `tag`.
    ///
    /// Kept for fault-free code paths; the wait is watchdog-bounded so
    /// even a misused call cannot hang forever — it panics after
    /// the watchdog interval or if the sender dies, rather than deadlocking.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<u8> {
        self.recv_timeout(from, tag, WATCHDOG)
            .unwrap_or_else(|e| panic!("rank {}: recv({from}, {tag}): {e}", self.rank))
    }

    /// Block until every *live* rank has entered the barrier. A rank that
    /// dies while others wait releases the barrier over the survivors.
    pub fn barrier(&self) {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.barrier_generation;
        st.barrier_arrived += 1;
        if st.barrier_arrived >= st.live {
            st.barrier_arrived = 0;
            st.barrier_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.barrier_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.barrier_generation == generation {
                    panic!("rank {}: barrier watchdog expired", self.rank);
                }
            }
        }
    }

    /// Element-wise sum allreduce over the *live* ranks: after the call
    /// every surviving rank's `data` holds the sum over all survivors'
    /// contributions. All ranks must pass equal lengths.
    pub fn allreduce_sum(&self, data: &mut [f64]) {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.reduce_generation;
        if st.reduce_arrived == 0 {
            st.reduce_accum = vec![0.0; data.len()];
        }
        assert_eq!(
            st.reduce_accum.len(),
            data.len(),
            "allreduce length mismatch across ranks"
        );
        for (a, &d) in st.reduce_accum.iter_mut().zip(data.iter()) {
            *a += d;
        }
        st.reduce_arrived += 1;
        if st.reduce_arrived >= st.live {
            st.reduce_arrived = 0;
            st.reduce_result = std::mem::take(&mut st.reduce_accum);
            st.reduce_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.reduce_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.reduce_generation == generation {
                    panic!("rank {}: allreduce watchdog expired", self.rank);
                }
            }
        }
        data.copy_from_slice(&st.reduce_result);
    }

    /// Broadcast from `root`, failing with [`CommError::RankDead`] on
    /// every waiter if the root died before providing its payload.
    pub fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError> {
        let c = &self.fabric.collectives;
        let mut st = c.lock.lock();
        let generation = st.bcast_generation;
        if self.rank == root {
            st.bcast_payload = Some(data);
            st.bcast_provided_generation = Some(generation);
        }
        st.bcast_arrived += 1;
        if st.bcast_arrived >= st.live {
            st.bcast_arrived = 0;
            st.bcast_generation += 1;
            c.signal.notify_all();
        } else {
            let deadline = Instant::now() + WATCHDOG;
            while st.bcast_generation == generation {
                let r = c
                    .signal
                    .wait_for(&mut st, deadline.saturating_duration_since(Instant::now()));
                if r.timed_out() && st.bcast_generation == generation {
                    panic!("rank {}: broadcast watchdog expired", self.rank);
                }
            }
        }
        // A payload left over from an earlier round must not masquerade
        // as this round's: only accept one provided for `generation`.
        if st.bcast_provided_generation == Some(generation) {
            Ok(st
                .bcast_payload
                .clone()
                .expect("payload present when provided"))
        } else {
            Err(CommError::RankDead(root))
        }
    }

    /// Broadcast from `root`: returns the root's payload on every rank.
    /// Panics if the root died before providing a payload — use
    /// [`Communicator::broadcast_checked`] on fault-tolerant paths.
    pub fn broadcast(&self, root: usize, data: Vec<u8>) -> Vec<u8> {
        self.broadcast_checked(root, data)
            .unwrap_or_else(|e| panic!("rank {}: broadcast from {root}: {e}", self.rank))
    }
}

/// How one rank's program ended under [`ThreadCluster::run_with_faults`].
#[derive(Debug)]
pub enum RankOutcome<T> {
    /// The rank ran to completion.
    Completed(T),
    /// The rank died (injected kill or genuine panic) before finishing.
    Died {
        /// Human-readable cause extracted from the panic payload.
        cause: String,
    },
}

impl<T> RankOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Died { .. } => None,
        }
    }

    /// Whether the rank died.
    pub fn is_dead(&self) -> bool {
        matches!(self, RankOutcome::Died { .. })
    }
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(crash) = payload.downcast_ref::<SimulatedCrash>() {
        format!(
            "simulated crash of rank {} at round {}",
            crash.rank, crash.round
        )
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked".to_string()
    }
}

/// Launches `size` ranks on threads and runs `f(comm)` on each; returns
/// the per-rank results in rank order.
pub struct ThreadCluster;

impl ThreadCluster {
    /// Run a cluster program. Panics in any rank propagate.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        Self::run_with_faults(size, FaultPlan::none(), f)
            .into_iter()
            .map(|outcome| match outcome {
                RankOutcome::Completed(v) => v,
                RankOutcome::Died { cause } => panic!("rank panicked: {cause}"),
            })
            .collect()
    }

    /// Run a cluster program under a fault plan. A rank that panics —
    /// from an injected [`FaultEvent::KillAtRound`](crate::FaultEvent)
    /// via [`Communicator::poll_faults`], or from a genuine bug — is
    /// caught at the fabric boundary, announced to the survivors (its
    /// death unblocks their receives and collectives), and reported as
    /// [`RankOutcome::Died`] instead of tearing the cluster down.
    pub fn run_with_faults<T, F>(size: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let fabric = Arc::new(Fabric::new(size, plan));
        // Injected crashes unwind through here by design; silence the
        // default "thread panicked" stderr noise for them only. Installed
        // once process-wide: hook swapping per call would race when
        // multiple clusters run concurrently (e.g. parallel tests).
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                    prev(info);
                }
            }));
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let comm = Communicator {
                        rank,
                        fabric: Arc::clone(&fabric),
                    };
                    let f = &f;
                    let fabric = Arc::clone(&fabric);
                    scope.spawn(move || match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(v) => RankOutcome::Completed(v),
                        Err(payload) => {
                            // Announce the death *before* returning so
                            // peers blocked on this rank unblock promptly.
                            fabric.mark_dead(rank);
                            RankOutcome::Died {
                                cause: describe_panic(payload.as_ref()),
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn ping_pong_round_trip() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1, 2, 3]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, got.iter().map(|b| b * 2).collect());
                vec![]
            }
        });
        assert_eq!(results[0], vec![2, 4, 6]);
    }

    #[test]
    fn tagged_messages_do_not_cross() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![11]);
                comm.send(1, 2, vec![22]);
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![11, 22]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 5;
        let results = ThreadCluster::run(size, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v);
            v
        });
        let expected = vec![(0..5).sum::<usize>() as f64, 5.0];
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn repeated_allreduce_rounds_are_isolated() {
        let results = ThreadCluster::run(3, |comm| {
            let mut out = Vec::new();
            for round in 0..4u64 {
                let mut v = vec![(comm.rank() as u64 + round) as f64];
                comm.allreduce_sum(&mut v);
                out.push(v[0]);
            }
            out
        });
        for r in results {
            assert_eq!(r, vec![3.0, 6.0, 9.0, 12.0]);
        }
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let results = ThreadCluster::run(4, |comm| {
            let mine = if comm.rank() == 2 {
                vec![9, 9, 9]
            } else {
                vec![]
            };
            comm.broadcast(2, mine)
        });
        for r in results {
            assert_eq!(r, vec![9, 9, 9]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = ThreadCluster::run(8, |comm| {
            phase1.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&c| c == 8));
    }

    #[test]
    fn many_rounds_of_mixed_collectives() {
        let results = ThreadCluster::run(4, |comm| {
            let mut acc = 0.0;
            for round in 0..10 {
                comm.barrier();
                let mut v = vec![1.0];
                comm.allreduce_sum(&mut v);
                acc += v[0];
                let b = comm.broadcast(round % 4, vec![round as u8]);
                assert_eq!(b, vec![round as u8]);
            }
            acc
        });
        for r in results {
            assert_eq!(r, 40.0);
        }
    }

    #[test]
    fn recv_timeout_expires_on_silence() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 3, Duration::from_millis(50))
            } else {
                Ok(vec![]) // rank 1 stays silent but alive
            }
        });
        assert_eq!(
            results[0],
            Err(CommError::Timeout { from: 1, tag: 3 }),
            "silent peer must surface a timeout, not hang"
        );
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                let empty = comm.try_recv(1, 5);
                let msg = comm.recv_timeout(1, 5, Duration::from_secs(5));
                (empty, msg)
            } else {
                comm.send(0, 5, vec![42]);
                (Ok(None), Ok(vec![]))
            }
        });
        match &results[0] {
            (Ok(first), Ok(second)) => {
                // First poll may or may not have seen the message yet
                // (the peer races), but the blocking receive must get it.
                assert!(first.is_none() || first.as_deref() == Some(&[42][..]));
                assert_eq!(second, &vec![42]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropped_message_surfaces_timeout_not_hang() {
        let plan = FaultPlan::none().drop_message(1, 0, 0);
        let started = Instant::now();
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 9, Duration::from_millis(100))
            } else {
                comm.send(0, 9, vec![1]); // eaten by the plan
                Ok(vec![])
            }
        });
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog: dropped message stalled the cluster"
        );
        let r0 = match &outcomes[0] {
            RankOutcome::Completed(r) => r,
            dead => panic!("rank 0 should complete, got {dead:?}"),
        };
        assert_eq!(r0, &Err(CommError::Timeout { from: 1, tag: 9 }));
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        let plan = FaultPlan::none().delay_message(1, 0, 0, Duration::from_millis(60));
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                let early = comm.recv_timeout(1, 4, Duration::from_millis(5));
                let late = comm.recv_timeout(1, 4, Duration::from_secs(5));
                (early, late)
            } else {
                comm.send(0, 4, vec![7, 7]);
                (Ok(vec![]), Ok(vec![]))
            }
        });
        match &outcomes[0] {
            RankOutcome::Completed((early, late)) => {
                assert_eq!(early, &Err(CommError::Timeout { from: 1, tag: 4 }));
                assert_eq!(late, &Ok(vec![7, 7]));
            }
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn killed_rank_unblocks_peer_recv_with_rank_dead() {
        let plan = FaultPlan::none().kill_at_round(1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 2, Duration::from_secs(30))
            } else {
                comm.poll_faults(0); // dies here
                comm.send(0, 2, vec![1]);
                Ok(vec![])
            }
        });
        assert!(outcomes[1].is_dead());
        match &outcomes[0] {
            RankOutcome::Completed(r) => assert_eq!(r, &Err(CommError::RankDead(1))),
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn buffered_messages_from_dead_rank_still_deliver() {
        let plan = FaultPlan::none().kill_at_round(1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                let first = comm.recv_timeout(1, 6, Duration::from_secs(30));
                let second = comm.recv_timeout(1, 6, Duration::from_secs(30));
                (first, second)
            } else {
                comm.send(0, 6, vec![5]); // in flight before the crash
                comm.poll_faults(0);
                unreachable!("rank 1 must die at poll");
            }
        });
        match &outcomes[0] {
            RankOutcome::Completed((first, second)) => {
                assert_eq!(first, &Ok(vec![5]), "in-flight message must survive");
                assert_eq!(second, &Err(CommError::RankDead(1)));
            }
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn collectives_complete_over_survivors_after_death() {
        // Rank 2 dies before ever entering the collectives; the other
        // three must still complete barrier + allreduce, with the sum
        // covering survivors only.
        let plan = FaultPlan::none().kill_at_round(2, 0);
        let outcomes = ThreadCluster::run_with_faults(4, plan, |comm| {
            if comm.rank() == 2 {
                // Give peers a chance to block in the barrier first, so
                // the death must actively release them.
                std::thread::sleep(Duration::from_millis(30));
                comm.poll_faults(0);
                unreachable!();
            }
            comm.barrier();
            let mut v = vec![1.0];
            comm.allreduce_sum(&mut v);
            v[0]
        });
        assert!(outcomes[2].is_dead());
        for (rank, outcome) in outcomes.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            match outcome {
                RankOutcome::Completed(sum) => assert_eq!(*sum, 3.0),
                dead => panic!("rank {rank} died: {dead:?}"),
            }
        }
    }

    #[test]
    fn broadcast_from_dead_root_fails_cleanly() {
        let plan = FaultPlan::none().kill_at_round(0, 0);
        let outcomes = ThreadCluster::run_with_faults(3, plan, |comm| {
            if comm.rank() == 0 {
                comm.poll_faults(0);
                unreachable!();
            }
            comm.broadcast_checked(0, vec![])
        });
        for outcome in &outcomes[1..] {
            match outcome {
                RankOutcome::Completed(r) => assert_eq!(r, &Err(CommError::RankDead(0))),
                dead => panic!("survivor died: {dead:?}"),
            }
        }
    }

    #[test]
    fn traffic_counters_track_messages_and_failures() {
        let plan = FaultPlan::none().drop_message(0, 1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0; 8]); // eaten by the plan
                comm.send(1, 2, vec![0; 16]);
                comm.barrier();
                comm.traffic()
            } else {
                let _ = comm.recv(0, 2);
                let timed_out = comm.recv_timeout(0, 99, Duration::from_millis(20));
                assert!(matches!(timed_out, Err(CommError::Timeout { .. })));
                comm.barrier();
                comm.traffic()
            }
        });
        let mut outcomes = outcomes.into_iter();
        let t0 = outcomes.next().unwrap().completed().expect("rank 0 alive");
        let t1 = outcomes.next().unwrap().completed().expect("rank 1 alive");
        assert_eq!(t0.sends, 1, "dropped send must not count as delivered");
        assert_eq!(t0.dropped_sends, 1);
        assert_eq!(t0.send_bytes, 16);
        assert_eq!(t1.recvs, 1);
        assert_eq!(t1.recv_bytes, 16);
        assert_eq!(t1.timeouts, 1);
    }

    #[test]
    fn live_count_tracks_deaths() {
        let plan = FaultPlan::none().kill_at_round(3, 1);
        let outcomes = ThreadCluster::run_with_faults(4, plan, |comm| {
            comm.poll_faults(0); // round 0: nobody dies
                                 // Sample before the barrier: rank 3 cannot die until every
                                 // rank has passed it, so all ranks must observe 4 here.
            let before = comm.live_count();
            comm.barrier();
            if comm.rank() == 3 {
                comm.poll_faults(1);
                unreachable!();
            }
            // Wait until the death is visible, deadline-bounded.
            let deadline = Instant::now() + Duration::from_secs(10);
            while comm.is_alive(3) {
                assert!(Instant::now() < deadline, "death never became visible");
                std::thread::sleep(Duration::from_millis(1));
            }
            (before, comm.live_count())
        });
        for (rank, outcome) in outcomes.iter().enumerate() {
            if rank == 3 {
                assert!(outcome.is_dead());
                continue;
            }
            match outcome {
                RankOutcome::Completed((before, after)) => {
                    assert_eq!(*before, 4);
                    assert_eq!(*after, 3);
                }
                dead => panic!("rank {rank} died: {dead:?}"),
            }
        }
    }
}
