//! An MPI-flavored communicator with fault awareness, generic over the
//! message-passing backend.
//!
//! Semantics mirror the subset of MPI the paper's REWL implementation
//! needs: tagged point-to-point messages, a barrier, a sum-allreduce, and
//! a broadcast. The bytes move through a pluggable [`Transport`] — the
//! in-memory thread fabric ([`crate::ThreadTransport`]) or real loopback
//! sockets ([`crate::TcpTransport`]) — while everything here stays
//! backend-agnostic:
//!
//! - a [`crate::FaultPlan`] can drop or delay specific messages and crash
//!   ranks at chosen rounds, deterministically;
//! - every receive has a deadline-bounded form
//!   ([`Communicator::recv_timeout`], [`Communicator::try_recv`])
//!   returning [`CommError`] instead of hanging;
//! - per-rank traffic counters ([`Communicator::traffic`]) feed the
//!   telemetry snapshots.
//!
//! A rank death (injected or a genuine panic caught by
//! [`crate::ThreadCluster::run_with_faults`], or a closed connection on
//! the TCP backend) is announced to the fabric: pending receives from the
//! dead rank fail fast with [`CommError::RankDead`], and in-flight
//! collectives complete over the survivors instead of deadlocking.
//!
//! There are deliberately no infallible `recv`/`broadcast` wrappers: a
//! dead peer must surface as a [`CommError`] at the call site, never as a
//! panic deep in the fabric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::fault::{FaultPlan, FaultRuntime, SendFate};
use crate::thread_fabric::ThreadTransport;
use crate::transport::Transport;

/// Why a communication call could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The deadline elapsed before a matching message arrived.
    Timeout {
        /// Rank the receive was posted against.
        from: usize,
        /// Message tag the receive was posted against.
        tag: u64,
    },
    /// The peer rank is dead and no matching message remains in flight.
    RankDead(usize),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for tag {tag} from rank {from}")
            }
            CommError::RankDead(rank) => write!(f, "rank {rank} is dead"),
        }
    }
}

impl std::error::Error for CommError {}

/// Payload carried by kill faults; recognized by the panic handler so an
/// injected crash reports cleanly.
#[derive(Debug, Clone)]
pub struct SimulatedCrash {
    /// Rank that was crashed.
    pub rank: usize,
    /// Round at which the kill fired.
    pub round: u64,
}

/// Per-rank message-traffic counters, accumulated lock-free as the rank
/// communicates.
#[derive(Debug, Default)]
struct TrafficCounters {
    sends: AtomicU64,
    send_bytes: AtomicU64,
    recvs: AtomicU64,
    recv_bytes: AtomicU64,
    timeouts: AtomicU64,
    dead_peer_errors: AtomicU64,
    dropped_sends: AtomicU64,
    delayed_sends: AtomicU64,
}

/// A point-in-time copy of one rank's traffic counters
/// ([`Communicator::traffic`]). Feeds the per-rank telemetry snapshot in
/// the REWL driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Messages this rank sent (including delayed, excluding dropped).
    pub sends: u64,
    /// Payload bytes across all sends that entered the fabric.
    pub send_bytes: u64,
    /// Messages this rank successfully received.
    pub recvs: u64,
    /// Payload bytes across all successful receives.
    pub recv_bytes: u64,
    /// Receives that failed with [`CommError::Timeout`].
    pub timeouts: u64,
    /// Receives that failed with [`CommError::RankDead`].
    pub dead_peer_errors: u64,
    /// Sends eaten by the fault plan.
    pub dropped_sends: u64,
    /// Sends the fault plan put in flight with a delay.
    pub delayed_sends: u64,
}

/// A rank's handle to the cluster.
///
/// Mirrors an MPI communicator: owned per rank, `Send` so it can move
/// into the rank's thread (or live in the rank's process on the TCP
/// backend). Generic over the [`Transport`] moving the bytes; fault
/// injection and traffic accounting live here, above the backend.
pub struct Communicator<T: Transport = ThreadTransport> {
    transport: T,
    faults: FaultRuntime,
    traffic: TrafficCounters,
}

impl<T: Transport> Communicator<T> {
    /// Wrap a transport with a fault plan. Drop/delay events match on the
    /// *sending* rank, so per-rank runtimes (one per communicator) count
    /// exactly the same matches a cluster-wide runtime would.
    pub fn new(transport: T, plan: FaultPlan) -> Self {
        Communicator {
            transport,
            faults: FaultRuntime::new(plan),
            traffic: TrafficCounters::default(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of ranks in the cluster (including dead ones).
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Whether `rank` is still alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.transport.is_alive(rank)
    }

    /// Number of ranks currently alive.
    pub fn live_count(&self) -> usize {
        self.transport.live_count()
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The fault plan this communicator was built with. Drivers record it
    /// into run manifests so a resume can verify the same failure schedule
    /// is being replayed.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Start heartbeat-based liveness on backends that support it (see
    /// [`Transport::start_heartbeats`]).
    pub fn start_heartbeats(&self, interval: Duration, deadline: Duration) {
        self.transport.start_heartbeats(interval, deadline);
    }

    /// Heartbeat deadlines missed so far (see
    /// [`Transport::heartbeat_misses`]).
    pub fn heartbeat_misses(&self) -> u64 {
        self.transport.heartbeat_misses()
    }

    /// Toggle transport recovery mode (see [`Transport::set_recovery`]):
    /// dead peers are treated as temporarily absent so a respawned
    /// replacement can rejoin in-flight collectives.
    pub fn set_recovery(&self, enabled: bool) {
        self.transport.set_recovery(enabled);
    }

    /// This rank's collective generation counters (see
    /// [`Transport::collective_generations`]).
    pub fn collective_generations(&self) -> [u64; 3] {
        self.transport.collective_generations()
    }

    /// Restore collective generation counters on a rejoining rank (see
    /// [`Transport::set_collective_generations`]).
    pub fn set_collective_generations(&self, gens: [u64; 3]) {
        self.transport.set_collective_generations(gens);
    }

    /// A point-in-time copy of this rank's message-traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        let c = &self.traffic;
        TrafficSnapshot {
            sends: c.sends.load(Ordering::Relaxed),
            send_bytes: c.send_bytes.load(Ordering::Relaxed),
            recvs: c.recvs.load(Ordering::Relaxed),
            recv_bytes: c.recv_bytes.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            dead_peer_errors: c.dead_peer_errors.load(Ordering::Relaxed),
            dropped_sends: c.dropped_sends.load(Ordering::Relaxed),
            delayed_sends: c.delayed_sends.load(Ordering::Relaxed),
        }
    }

    /// Crash this rank (panic with a [`SimulatedCrash`] payload) if the
    /// fault plan schedules a kill at or before `round`. Rank programs
    /// call this once per round; the cluster harness
    /// ([`crate::ThreadCluster::run_with_faults`], or the worker process
    /// boundary on the TCP backend) converts the unwind into a dead-rank
    /// outcome.
    pub fn poll_faults(&self, round: u64) {
        self.faults.set_round(round);
        if let Some(kill_round) = self.faults.plan().kill_due(self.rank(), round) {
            std::panic::panic_any(SimulatedCrash {
                rank: self.rank(),
                round: kill_round,
            });
        }
    }

    /// Send `data` to rank `to` with a message `tag` (non-blocking,
    /// buffered — like `MPI_Send` with an eager protocol). Sends to dead
    /// ranks are silently discarded, as are messages the fault plan
    /// drops; delayed messages become receivable only after their delay.
    pub fn send(&self, to: usize, tag: u64, data: Vec<u8>) {
        let delay = match self.faults.on_send(self.rank(), to, tag) {
            SendFate::Drop => {
                self.traffic.dropped_sends.fetch_add(1, Ordering::Relaxed);
                return;
            }
            SendFate::Deliver => None,
            SendFate::Delay(d) => {
                self.traffic.delayed_sends.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
        };
        self.traffic.sends.fetch_add(1, Ordering::Relaxed);
        self.traffic
            .send_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.transport.send(to, tag, data, delay);
    }

    /// Non-blocking receive: `Ok(Some(..))` if a deliverable message is
    /// queued, `Ok(None)` if not.
    ///
    /// # Errors
    /// [`CommError::RankDead`] if `from` is dead with nothing in flight.
    pub fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        match self.transport.try_recv(from, tag) {
            Ok(Some(payload)) => {
                self.count_recv(payload.len());
                Ok(Some(payload))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(self.count_recv_error(e)),
        }
    }

    /// Blocking receive with a deadline. Already-buffered messages from a
    /// dead sender are still delivered first.
    ///
    /// # Errors
    /// [`CommError::Timeout`] when `timeout` elapses,
    /// [`CommError::RankDead`] as soon as `from` is known dead with no
    /// matching message in flight.
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        match self.transport.recv_timeout(from, tag, timeout) {
            Ok(payload) => {
                self.count_recv(payload.len());
                Ok(payload)
            }
            Err(e) => Err(self.count_recv_error(e)),
        }
    }

    /// Block until every *live* rank has entered the barrier. A rank that
    /// dies while others wait releases the barrier over the survivors.
    ///
    /// # Errors
    /// [`CommError::RankDead`] when the barrier's coordinator died (TCP
    /// backend; the thread fabric completes over survivors).
    pub fn barrier(&self) -> Result<(), CommError> {
        self.transport.barrier()
    }

    /// Element-wise sum allreduce over the *live* ranks: after the call
    /// every surviving rank's `data` holds the sum over all survivors'
    /// contributions. All ranks must pass equal lengths.
    ///
    /// # Errors
    /// [`CommError::RankDead`] when the reduction's coordinator died (TCP
    /// backend); `data` is left untouched in that case.
    pub fn allreduce_sum(&self, data: &mut [f64]) -> Result<(), CommError> {
        self.transport.allreduce_sum(data)
    }

    /// Broadcast from `root`: returns the root's payload on every rank.
    ///
    /// # Errors
    /// [`CommError::RankDead`] on every waiter if the root died before
    /// providing its payload.
    pub fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError> {
        self.transport.broadcast_checked(root, data)
    }

    fn count_recv(&self, bytes: usize) {
        self.traffic.recvs.fetch_add(1, Ordering::Relaxed);
        self.traffic
            .recv_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn count_recv_error(&self, e: CommError) -> CommError {
        match e {
            CommError::Timeout { .. } => {
                self.traffic.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            CommError::RankDead(_) => {
                self.traffic
                    .dead_peer_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::thread_fabric::{RankOutcome, ThreadCluster};
    use std::time::{Duration, Instant};

    /// Receive deadline for test paths where the message is known to be
    /// on its way.
    const PATIENCE: Duration = Duration::from_secs(30);

    #[test]
    fn ping_pong_round_trip() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1, 2, 3]);
                comm.recv_timeout(1, 8, PATIENCE).unwrap()
            } else {
                let got = comm.recv_timeout(0, 7, PATIENCE).unwrap();
                comm.send(0, 8, got.iter().map(|b| b * 2).collect());
                vec![]
            }
        });
        assert_eq!(results[0], vec![2, 4, 6]);
    }

    #[test]
    fn tagged_messages_do_not_cross() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![11]);
                comm.send(1, 2, vec![22]);
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv_timeout(0, 2, PATIENCE).unwrap();
                let a = comm.recv_timeout(0, 1, PATIENCE).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![11, 22]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 5;
        let results = ThreadCluster::run(size, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v).unwrap();
            v
        });
        let expected = vec![(0..5).sum::<usize>() as f64, 5.0];
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn repeated_allreduce_rounds_are_isolated() {
        let results = ThreadCluster::run(3, |comm| {
            let mut out = Vec::new();
            for round in 0..4u64 {
                let mut v = vec![(comm.rank() as u64 + round) as f64];
                comm.allreduce_sum(&mut v).unwrap();
                out.push(v[0]);
            }
            out
        });
        for r in results {
            assert_eq!(r, vec![3.0, 6.0, 9.0, 12.0]);
        }
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let results = ThreadCluster::run(4, |comm| {
            let mine = if comm.rank() == 2 {
                vec![9, 9, 9]
            } else {
                vec![]
            };
            comm.broadcast_checked(2, mine).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![9, 9, 9]);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = ThreadCluster::run(8, |comm| {
            phase1.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all 8 arrivals.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&c| c == 8));
    }

    #[test]
    fn many_rounds_of_mixed_collectives() {
        let results = ThreadCluster::run(4, |comm| {
            let mut acc = 0.0;
            for round in 0..10 {
                comm.barrier().unwrap();
                let mut v = vec![1.0];
                comm.allreduce_sum(&mut v).unwrap();
                acc += v[0];
                let b = comm
                    .broadcast_checked(round % 4, vec![round as u8])
                    .unwrap();
                assert_eq!(b, vec![round as u8]);
            }
            acc
        });
        for r in results {
            assert_eq!(r, 40.0);
        }
    }

    #[test]
    fn recv_timeout_expires_on_silence() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 3, Duration::from_millis(50))
            } else {
                Ok(vec![]) // rank 1 stays silent but alive
            }
        });
        assert_eq!(
            results[0],
            Err(CommError::Timeout { from: 1, tag: 3 }),
            "silent peer must surface a timeout, not hang"
        );
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let results = ThreadCluster::run(2, |comm| {
            if comm.rank() == 0 {
                let empty = comm.try_recv(1, 5);
                let msg = comm.recv_timeout(1, 5, Duration::from_secs(5));
                (empty, msg)
            } else {
                comm.send(0, 5, vec![42]);
                (Ok(None), Ok(vec![]))
            }
        });
        match &results[0] {
            (Ok(first), Ok(second)) => {
                // First poll may or may not have seen the message yet
                // (the peer races), but the blocking receive must get it.
                assert!(first.is_none() || first.as_deref() == Some(&[42][..]));
                assert_eq!(second, &vec![42]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropped_message_surfaces_timeout_not_hang() {
        let plan = FaultPlan::none().drop_message(1, 0, 0);
        let started = Instant::now();
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 9, Duration::from_millis(100))
            } else {
                comm.send(0, 9, vec![1]); // eaten by the plan
                Ok(vec![])
            }
        });
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog: dropped message stalled the cluster"
        );
        let r0 = match &outcomes[0] {
            RankOutcome::Completed(r) => r,
            dead => panic!("rank 0 should complete, got {dead:?}"),
        };
        assert_eq!(r0, &Err(CommError::Timeout { from: 1, tag: 9 }));
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        let plan = FaultPlan::none().delay_message(1, 0, 0, Duration::from_millis(60));
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                let early = comm.recv_timeout(1, 4, Duration::from_millis(5));
                let late = comm.recv_timeout(1, 4, Duration::from_secs(5));
                (early, late)
            } else {
                comm.send(0, 4, vec![7, 7]);
                (Ok(vec![]), Ok(vec![]))
            }
        });
        match &outcomes[0] {
            RankOutcome::Completed((early, late)) => {
                assert_eq!(early, &Err(CommError::Timeout { from: 1, tag: 4 }));
                assert_eq!(late, &Ok(vec![7, 7]));
            }
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn killed_rank_unblocks_peer_recv_with_rank_dead() {
        let plan = FaultPlan::none().kill_at_round(1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout(1, 2, Duration::from_secs(30))
            } else {
                comm.poll_faults(0); // dies here
                comm.send(0, 2, vec![1]);
                Ok(vec![])
            }
        });
        assert!(outcomes[1].is_dead());
        match &outcomes[0] {
            RankOutcome::Completed(r) => assert_eq!(r, &Err(CommError::RankDead(1))),
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn buffered_messages_from_dead_rank_still_deliver() {
        let plan = FaultPlan::none().kill_at_round(1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                let first = comm.recv_timeout(1, 6, Duration::from_secs(30));
                let second = comm.recv_timeout(1, 6, Duration::from_secs(30));
                (first, second)
            } else {
                comm.send(0, 6, vec![5]); // in flight before the crash
                comm.poll_faults(0);
                unreachable!("rank 1 must die at poll");
            }
        });
        match &outcomes[0] {
            RankOutcome::Completed((first, second)) => {
                assert_eq!(first, &Ok(vec![5]), "in-flight message must survive");
                assert_eq!(second, &Err(CommError::RankDead(1)));
            }
            dead => panic!("rank 0 died: {dead:?}"),
        }
    }

    #[test]
    fn collectives_complete_over_survivors_after_death() {
        // Rank 2 dies before ever entering the collectives; the other
        // three must still complete barrier + allreduce, with the sum
        // covering survivors only.
        let plan = FaultPlan::none().kill_at_round(2, 0);
        let outcomes = ThreadCluster::run_with_faults(4, plan, |comm| {
            if comm.rank() == 2 {
                // Give peers a chance to block in the barrier first, so
                // the death must actively release them.
                std::thread::sleep(Duration::from_millis(30));
                comm.poll_faults(0);
                unreachable!();
            }
            comm.barrier().unwrap();
            let mut v = vec![1.0];
            comm.allreduce_sum(&mut v).unwrap();
            v[0]
        });
        assert!(outcomes[2].is_dead());
        for (rank, outcome) in outcomes.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            match outcome {
                RankOutcome::Completed(sum) => assert_eq!(*sum, 3.0),
                dead => panic!("rank {rank} died: {dead:?}"),
            }
        }
    }

    #[test]
    fn broadcast_from_dead_root_fails_cleanly() {
        let plan = FaultPlan::none().kill_at_round(0, 0);
        let outcomes = ThreadCluster::run_with_faults(3, plan, |comm| {
            if comm.rank() == 0 {
                comm.poll_faults(0);
                unreachable!();
            }
            comm.broadcast_checked(0, vec![])
        });
        for outcome in &outcomes[1..] {
            match outcome {
                RankOutcome::Completed(r) => assert_eq!(r, &Err(CommError::RankDead(0))),
                dead => panic!("survivor died: {dead:?}"),
            }
        }
    }

    #[test]
    fn traffic_counters_track_messages_and_failures() {
        let plan = FaultPlan::none().drop_message(0, 1, 0);
        let outcomes = ThreadCluster::run_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0; 8]); // eaten by the plan
                comm.send(1, 2, vec![0; 16]);
                comm.barrier().unwrap();
                comm.traffic()
            } else {
                let _ = comm.recv_timeout(0, 2, PATIENCE).unwrap();
                let timed_out = comm.recv_timeout(0, 99, Duration::from_millis(20));
                assert!(matches!(timed_out, Err(CommError::Timeout { .. })));
                comm.barrier().unwrap();
                comm.traffic()
            }
        });
        let mut outcomes = outcomes.into_iter();
        let t0 = outcomes.next().unwrap().completed().expect("rank 0 alive");
        let t1 = outcomes.next().unwrap().completed().expect("rank 1 alive");
        assert_eq!(t0.sends, 1, "dropped send must not count as delivered");
        assert_eq!(t0.dropped_sends, 1);
        assert_eq!(t0.send_bytes, 16);
        assert_eq!(t1.recvs, 1);
        assert_eq!(t1.recv_bytes, 16);
        assert_eq!(t1.timeouts, 1);
    }

    #[test]
    fn live_count_tracks_deaths() {
        let plan = FaultPlan::none().kill_at_round(3, 1);
        let outcomes = ThreadCluster::run_with_faults(4, plan, |comm| {
            comm.poll_faults(0); // round 0: nobody dies
                                 // Sample before the barrier: rank 3 cannot die until every
                                 // rank has passed it, so all ranks must observe 4 here.
            let before = comm.live_count();
            comm.barrier().unwrap();
            if comm.rank() == 3 {
                comm.poll_faults(1);
                unreachable!();
            }
            // Wait until the death is visible, deadline-bounded.
            let deadline = Instant::now() + Duration::from_secs(10);
            while comm.is_alive(3) {
                assert!(Instant::now() < deadline, "death never became visible");
                std::thread::sleep(Duration::from_millis(1));
            }
            (before, comm.live_count())
        });
        for (rank, outcome) in outcomes.iter().enumerate() {
            if rank == 3 {
                assert!(outcome.is_dead());
                continue;
            }
            match outcome {
                RankOutcome::Completed((before, after)) => {
                    assert_eq!(*before, 4);
                    assert_eq!(*after, 3);
                }
                dead => panic!("rank {rank} died: {dead:?}"),
            }
        }
    }
}
