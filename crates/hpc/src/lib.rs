//! # dt-hpc
//!
//! The simulated HPC substrate DeepThermo runs on.
//!
//! The paper deploys on Summit (NVIDIA V100) and Crusher/Frontier
//! (AMD MI250X) with one Wang–Landau walker per GPU, MPI for replica
//! exchange, and NCCL/RCCL allreduces for distributing retrained proposal
//! networks. This crate substitutes that stack with:
//!
//! * [`Communicator`] + [`ThreadCluster`] — an MPI-flavored message-passing
//!   runtime over threads (tagged point-to-point sends, barrier,
//!   sum-allreduce, broadcast), used for *functionally real* parallel REWL
//!   runs at laptop scale;
//! * [`rank_rng`] — deterministic, independent per-rank ChaCha streams so
//!   parallel runs are exactly reproducible at any thread count;
//! * [`GpuSpec`] / [`PerfModel`] — calibrated analytic performance models
//!   of the V100 and MI250X (single GCD) with ring-allreduce communication
//!   costs, used to *project* wall-clock scaling to the paper's 3,000-GPU
//!   runs (see DESIGN.md, "Substitutions": absolute seconds are not
//!   reproducible on a laptop; the shapes — efficiency roll-off and the
//!   V100 : MI250X ratio — are);
//! * [`scaling`] — weak/strong scaling simulators that generate the rows
//!   of the paper's scaling tables (experiments E7/E8/E10).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//!
//! For robustness work the fabric also simulates an *unreliable* cluster:
//! [`FaultPlan`] injects deterministic message drops/delays and rank
//! kills, receives are deadline-bounded ([`CommError`]), and
//! [`ThreadCluster::run_with_faults`] converts rank panics into
//! [`RankOutcome::Died`] while survivors keep running.

pub mod comm;
pub mod fault;
pub mod gpu;
pub mod perf;
pub mod rngstream;
pub mod scaling;
pub mod tcp;
pub mod thread_fabric;
pub mod transport;

pub use comm::{CommError, Communicator, SimulatedCrash, TrafficSnapshot};
pub use fault::{FaultEvent, FaultPlan, SendFate};
pub use gpu::GpuSpec;
pub use perf::{
    comparison_table, measured_vs_modeled, CostBreakdown, PerfModel, PhaseComparison, WorkloadShape,
};
pub use rngstream::rank_rng;
pub use scaling::{
    reproject_with_imbalance, strong_scaling_table, weak_scaling_table, window_imbalance_factor,
    ScalingRow,
};
pub use tcp::{TcpCluster, TcpRendezvous, TcpTransport};
pub use thread_fabric::{install_crash_hook, RankOutcome, ThreadCluster, ThreadTransport};
pub use transport::Transport;
