//! The TCP backend: ranks are processes (or threads, in tests) connected
//! by real `std::net` loopback sockets.
//!
//! Implements the same [`Transport`] contract as the thread fabric, so the
//! whole REWL stack — fault injection, timeouts, the exchange protocol,
//! checkpointing — runs unchanged over genuine inter-process message
//! passing (`deepthermo run --cluster tcp:<n>`).
//!
//! ## Topology
//!
//! A run bootstraps through a **rank-0 rendezvous**: rank 0 binds a
//! [`TcpRendezvous`] listener whose address workers are given. Each worker
//! binds its own data listener, dials the rendezvous, and announces
//! `[rank: u32][data_port: u16]`; once all workers have checked in, rank 0
//! answers every worker with the full port table. The mesh is then built
//! deterministically: rank *i* dials every rank *j < i* at its data port
//! (announcing itself with a `[rank: u32]` hello), so every pair of ranks
//! shares exactly one connection.
//!
//! ## Wire format
//!
//! Each message is one length-prefixed frame:
//! `[payload_len: u32][tag: u64][delay_micros: u64][payload]`, all little
//! endian. `delay_micros` carries fault-injected delivery delays: the
//! *receiver* holds the message until the delay elapses, mirroring the
//! thread fabric's in-flight delay semantics.
//!
//! A reader thread per peer connection demultiplexes frames into the
//! rank's `Inbox`. A closed or broken connection marks that peer dead,
//! which unblocks pending receives with [`CommError::RankDead`] — process
//! exit (clean or crashed) is death notification, no extra protocol
//! needed. Orderly TCP shutdown delivers buffered frames before the EOF,
//! so messages sent just before a rank exits still arrive.
//!
//! ## Collectives
//!
//! Barrier, sum-allreduce, and broadcast run over reserved tags (bit 63
//! set, disjoint from all driver tags) with rank 0 coordinating barrier
//! and reduction; each call uses a fresh generation number so rounds never
//! collide. Dead ranks are skipped — collectives complete over the
//! survivors, as on the thread fabric — but if the *coordinator* (rank 0)
//! dies, waiters get [`CommError::RankDead`]`(0)` instead.
//!
//! ## Recovery
//!
//! The recovering constructors ([`TcpRendezvous::into_transport_recovering`],
//! [`TcpTransport::connect_recovering`], [`TcpTransport::reconnect`]) add a
//! self-healing layer on top of the same mesh:
//!
//! * every rank keeps its data listener open behind a **re-admission
//!   acceptor** thread, so a replacement process can dial in at any time;
//!   an installed replacement connection *revives* the peer (dead flag
//!   cleared, live count restored). Per-peer connection generations stop a
//!   stale reader's EOF from killing a freshly revived peer;
//! * rank 0 keeps the **rendezvous** listener open: a replacement
//!   announces `[rank][new_port]` exactly like bootstrap, the port table
//!   is updated, and the current table is replied so the replacement can
//!   re-dial the whole mesh;
//! * optional **heartbeats** ([`Transport::start_heartbeats`]): every
//!   frame arrival stamps a per-peer last-seen clock, a ping keeps idle
//!   links warm, and a monitor declares peers dead on deadline — an
//!   active failure detector instead of EOF-only. A monitor verdict is
//!   *reversible*: the next frame over the still-open connection revives
//!   the peer, and a monitor that was itself starved of CPU re-arms the
//!   clocks rather than condemning the mesh on stale testimony (only an
//!   EOF is final);
//! * in recovery mode the rank-0 coordinator treats a dead contributor as
//!   *temporarily* absent and keeps waiting (bounded by
//!   [`RECOVERY_DEADLINE`]) so a rejoining replacement lands in the
//!   collective generation it missed.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::comm::{CommError, Communicator};
use crate::fault::FaultPlan;
use crate::thread_fabric::{describe_panic, install_crash_hook, RankOutcome};
use crate::transport::{Inbox, Transport, WATCHDOG};

/// Collective tags live above bit 63; driver tags (`with_round` included)
/// stay below it.
const COLL_BIT: u64 = 1 << 63;
const K_BARRIER_ARRIVE: u64 = 1;
const K_BARRIER_RELEASE: u64 = 2;
const K_REDUCE_CONTRIB: u64 = 3;
const K_REDUCE_RESULT: u64 = 4;
const K_BCAST: u64 = 5;
const K_HEARTBEAT: u64 = 6;

/// How long a recovery-mode coordinator waits for a dead rank to be
/// replaced before giving up on it (degradation fallback). Far above any
/// realistic respawn+rejoin time, far below the collective watchdog.
pub const RECOVERY_DEADLINE: Duration = Duration::from_secs(60);

/// Poll cadence of the re-admission acceptor threads.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

fn coll_tag(kind: u64, generation: u64) -> u64 {
    debug_assert!(generation < 1 << 56, "collective generation overflow");
    COLL_BIT | (kind << 56) | generation
}

/// The fixed heartbeat tag (generation-free: pings are not sequenced).
fn hb_tag() -> u64 {
    coll_tag(K_HEARTBEAT, 0)
}

/// State shared between a rank's main thread, its per-peer reader
/// threads, and (in recovery mode) its acceptor/heartbeat threads.
struct Shared {
    inbox: Inbox,
    dead: Vec<AtomicBool>,
    live: AtomicUsize,
    /// Connection generation per peer: bumped when a replacement stream
    /// is installed, so the EOF of a superseded reader cannot kill a
    /// revived peer.
    conn_gen: Vec<AtomicU64>,
    /// When each peer last delivered any frame (heartbeat or data).
    last_seen: Vec<Mutex<Instant>>,
    /// Peers declared dead by the heartbeat monitor (deadline missed).
    hb_misses: AtomicU64,
    /// Recovery mode: dead peers are temporarily absent, not gone.
    recovery: AtomicBool,
    /// Tells acceptor/heartbeat threads to exit (set on transport drop).
    shutdown: AtomicBool,
}

impl Shared {
    fn new(size: usize) -> Self {
        Shared {
            inbox: Inbox::default(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            live: AtomicUsize::new(size),
            conn_gen: (0..size).map(|_| AtomicU64::new(0)).collect(),
            last_seen: (0..size).map(|_| Mutex::new(Instant::now())).collect(),
            hb_misses: AtomicU64::new(0),
            recovery: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    fn mark_dead(&self, rank: usize) {
        if self.dead[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.inbox.notify_all();
    }

    /// Death announcement from a reader created at connection generation
    /// `gen`: ignored when a newer connection has been installed since.
    fn mark_dead_if_current(&self, rank: usize, gen: u64) {
        if self.conn_gen[rank].load(Ordering::SeqCst) == gen {
            self.mark_dead(rank);
        }
    }

    /// Re-admit a peer: clear its dead flag and restore the live count.
    fn revive(&self, rank: usize) {
        if self.dead[rank].swap(false, Ordering::SeqCst) {
            self.live.fetch_add(1, Ordering::SeqCst);
            self.inbox.notify_all();
        }
    }

    /// Revive from a reader created at connection generation `gen`:
    /// ignored when a replacement connection has been installed since
    /// (the stale reader must not resurrect a peer it no longer speaks
    /// for).
    fn revive_if_current(&self, rank: usize, gen: u64) {
        if self.conn_gen[rank].load(Ordering::SeqCst) == gen {
            self.revive(rank);
        }
    }

    fn touch(&self, rank: usize) {
        *self.last_seen[rank].lock() = Instant::now();
    }
}

/// Replaceable write halves, one slot per peer (`None` at our own index
/// and for peers whose connection is currently down). Shared with the
/// re-admission acceptor so replacement connections can be installed
/// while the rank runs.
type PeerSlots = Vec<Mutex<Option<TcpStream>>>;

/// The rank-0 rendezvous point workers dial to join a run.
pub struct TcpRendezvous {
    listener: TcpListener,
}

impl TcpRendezvous {
    /// Bind the rendezvous listener. Use `"127.0.0.1:0"` to let the OS
    /// pick a free port, then read it back with [`Self::local_addr`].
    ///
    /// # Errors
    /// Any `bind(2)` failure.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(TcpRendezvous {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address workers must dial.
    ///
    /// # Errors
    /// Any `getsockname(2)` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Complete the rendezvous as rank 0 of a `size`-rank cluster: wait
    /// for all `size - 1` workers to check in, distribute the port table,
    /// and accept the mesh connections. Blocks until the cluster is
    /// fully connected.
    ///
    /// # Errors
    /// Socket failures, or a malformed/duplicate worker hello.
    pub fn into_transport(self, size: usize) -> io::Result<TcpTransport> {
        self.into_transport_inner(size, false)
    }

    /// Like [`Self::into_transport`], but keeps both the rendezvous and
    /// the data listener alive behind acceptor threads so killed workers
    /// can be replaced mid-run: a replacement re-announces
    /// `[rank][new_port]` over the rendezvous exactly as at bootstrap and
    /// receives the updated port table, and its mesh dial-ins are
    /// installed live (see [`TcpTransport::reconnect`]).
    ///
    /// # Errors
    /// Socket failures, or a malformed/duplicate worker hello.
    pub fn into_transport_recovering(self, size: usize) -> io::Result<TcpTransport> {
        self.into_transport_inner(size, true)
    }

    fn into_transport_inner(self, size: usize, recovering: bool) -> io::Result<TcpTransport> {
        assert!(size > 0, "cluster needs at least one rank");
        let data_listener = TcpListener::bind("127.0.0.1:0")?;
        let mut ports = vec![0u16; size];
        ports[0] = data_listener.local_addr()?.port();

        // Phase 1: collect worker hellos over the rendezvous listener.
        let mut worker_streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        for _ in 1..size {
            let (mut s, _) = self.listener.accept()?;
            let rank = read_u32(&mut s)? as usize;
            let port = read_u16(&mut s)?;
            if rank == 0 || rank >= size || worker_streams[rank].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad or duplicate worker hello for rank {rank}"),
                ));
            }
            ports[rank] = port;
            worker_streams[rank] = Some(s);
        }

        // Phase 2: every listener is now bound — publish the table.
        let mut table = Vec::with_capacity(2 * size);
        for p in &ports {
            table.extend_from_slice(&p.to_le_bytes());
        }
        for s in worker_streams.iter_mut().flatten() {
            s.write_all(&table)?;
        }

        // Phase 3: rank 0 dials nobody; accept all mesh connections.
        let transport = TcpTransport::finish(0, size, accept_mesh(&data_listener, size, &[])?)?;
        if !recovering {
            return Ok(transport);
        }
        let transport = transport.enable_recovery(data_listener)?;
        self.listener.set_nonblocking(true)?;
        let shared = Arc::clone(&transport.shared);
        std::thread::Builder::new()
            .name("tcp-rendezvous-0".into())
            .spawn(move || rendezvous_loop(self.listener, ports, shared))?;
        Ok(transport)
    }
}

/// Rank 0's re-admission service: answer `[rank][new_port]` announcements
/// from replacement workers with the up-to-date port table, forever (until
/// the transport shuts down). The same wire exchange as bootstrap, so
/// [`TcpTransport::reconnect`] needs no second protocol.
fn rendezvous_loop(listener: TcpListener, mut ports: Vec<u16>, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut s, _)) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                let Ok(rank) = read_u32(&mut s) else { continue };
                let Ok(port) = read_u16(&mut s) else { continue };
                let rank = rank as usize;
                if rank == 0 || rank >= ports.len() {
                    continue;
                }
                ports[rank] = port;
                let mut table = Vec::with_capacity(2 * ports.len());
                for p in &ports {
                    table.extend_from_slice(&p.to_le_bytes());
                }
                let _ = s.write_all(&table);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Accept the inbound half of the mesh: one connection from every rank
/// not in `outbound` (and not ourselves), identified by its hello.
fn accept_mesh(
    listener: &TcpListener,
    size: usize,
    outbound: &[usize],
) -> io::Result<Vec<Option<TcpStream>>> {
    let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    let expected = size - 1 - outbound.len();
    for _ in 0..expected {
        let (mut s, _) = listener.accept()?;
        let rank = read_u32(&mut s)? as usize;
        if rank >= size || peers[rank].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad or duplicate mesh hello for rank {rank}"),
            ));
        }
        peers[rank] = Some(s);
    }
    Ok(peers)
}

/// A rank's handle to the socket mesh — the TCP backend of [`Transport`].
pub struct TcpTransport {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
    /// Replaceable write halves, one slot per peer (`None` at our own
    /// index). Reader threads own cloned handles; the re-admission
    /// acceptor installs replacement streams in place.
    peers: Arc<PeerSlots>,
    // Atomic (not Cell) so a fully connected transport is `Sync`: the
    // serving fleet shares one `Arc<TcpTransport>` across router worker
    // threads. Collectives are still single-caller-at-a-time by
    // contract; the atomics only make concurrent point-to-point sends
    // and generation snapshots sound.
    barrier_gen: AtomicU64,
    reduce_gen: AtomicU64,
    bcast_gen: AtomicU64,
}

// Compile-time proof the transport is shareable across threads; the
// serving fleet hands one `Arc<TcpTransport>` to every router worker.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TcpTransport>();
};

impl TcpTransport {
    /// Join a cluster as worker `rank` by dialing rank 0's rendezvous at
    /// `addr`. Blocks until the mesh is fully connected.
    ///
    /// # Errors
    /// Socket failures, or a malformed rendezvous reply.
    pub fn connect(addr: &str, rank: usize, size: usize) -> io::Result<TcpTransport> {
        Self::connect_inner(addr, rank, size, false)
    }

    /// Like [`Self::connect`], but keeps the data listener alive behind a
    /// re-admission acceptor so replacement peers can dial in mid-run.
    /// Use together with [`TcpRendezvous::into_transport_recovering`].
    ///
    /// # Errors
    /// Socket failures, or a malformed rendezvous reply.
    pub fn connect_recovering(addr: &str, rank: usize, size: usize) -> io::Result<TcpTransport> {
        Self::connect_inner(addr, rank, size, true)
    }

    fn connect_inner(
        addr: &str,
        rank: usize,
        size: usize,
        recovering: bool,
    ) -> io::Result<TcpTransport> {
        assert!(rank > 0 && rank < size, "worker rank out of range");
        let data_listener = TcpListener::bind("127.0.0.1:0")?;

        // Check in with rank 0 and learn everyone's data port.
        let ports = announce_to_rendezvous(addr, rank, size, &data_listener)?;

        // Dial every lower rank, then accept every higher one.
        let lower: Vec<usize> = (0..rank).collect();
        let mut peers = accept_mesh(&data_listener, size, &lower)?;
        for &j in &lower {
            let mut s = TcpStream::connect(("127.0.0.1", ports[j]))?;
            s.write_all(&(rank as u32).to_le_bytes())?;
            peers[j] = Some(s);
        }
        let transport = Self::finish(rank, size, peers)?;
        if recovering {
            transport.enable_recovery(data_listener)
        } else {
            Ok(transport)
        }
    }

    /// Rejoin a running cluster as a *replacement* for a dead worker
    /// `rank`: re-announce over the still-open rendezvous, learn the
    /// current port table, and dial every peer's re-admission acceptor.
    /// Peers that are themselves down right now stay marked dead until
    /// they dial back in. The returned transport is always in recovery
    /// mode (listener kept alive, acceptor running).
    ///
    /// # Errors
    /// Socket failures, or a malformed rendezvous reply — the supervisor
    /// treats these as a failed restart attempt.
    pub fn reconnect(addr: &str, rank: usize, size: usize) -> io::Result<TcpTransport> {
        assert!(rank > 0 && rank < size, "worker rank out of range");
        let data_listener = TcpListener::bind("127.0.0.1:0")?;
        let ports = announce_to_rendezvous(addr, rank, size, &data_listener)?;

        // Dial the whole mesh: every survivor's acceptor installs our
        // connection and revives us on its side.
        let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        let mut unreachable = Vec::new();
        for (j, slot) in peers.iter_mut().enumerate() {
            if j == rank {
                continue;
            }
            match TcpStream::connect(("127.0.0.1", ports[j])) {
                Ok(mut s) => {
                    s.write_all(&(rank as u32).to_le_bytes())?;
                    *slot = Some(s);
                }
                Err(_) => unreachable.push(j),
            }
        }
        let transport = Self::finish(rank, size, peers)?;
        for j in unreachable {
            transport.shared.mark_dead(j);
        }
        transport.enable_recovery(data_listener)
    }

    /// Wrap a fully connected mesh: spawn reader threads and assemble the
    /// transport.
    fn finish(rank: usize, size: usize, peers: Vec<Option<TcpStream>>) -> io::Result<TcpTransport> {
        let shared = Arc::new(Shared::new(size));
        let slots: Arc<PeerSlots> = Arc::new((0..size).map(|_| Mutex::new(None)).collect());
        for (peer, stream) in peers.into_iter().enumerate() {
            if let Some(s) = stream {
                install_peer(&shared, &slots, rank, peer, s)?;
            }
        }
        Ok(TcpTransport {
            rank,
            size,
            shared,
            peers: slots,
            barrier_gen: AtomicU64::new(0),
            reduce_gen: AtomicU64::new(0),
            bcast_gen: AtomicU64::new(0),
        })
    }

    /// Switch on recovery semantics and park `listener` behind the
    /// re-admission acceptor thread so replacement peers can join later.
    fn enable_recovery(self, listener: TcpListener) -> io::Result<TcpTransport> {
        self.shared.recovery.store(true, Ordering::SeqCst);
        listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let peers = Arc::clone(&self.peers);
        let rank = self.rank;
        std::thread::Builder::new()
            .name(format!("tcp-acceptor-{rank}"))
            .spawn(move || acceptor_loop(listener, rank, shared, peers))?;
        Ok(self)
    }

    /// Receive on a collective tag as the coordinator. A dead peer is
    /// skipped (`None`) — except in recovery mode, where death is assumed
    /// temporary and the wait continues until [`RECOVERY_DEADLINE`], so a
    /// rejoining replacement can contribute to the generation it missed.
    /// A watchdog timeout is a protocol violation.
    fn coll_recv(&self, from: usize, tag: u64, what: &str) -> Option<Vec<u8>> {
        let started = Instant::now();
        loop {
            match self.recv_timeout(from, tag, WATCHDOG) {
                Ok(payload) => return Some(payload),
                Err(CommError::RankDead(_)) => {
                    if self.shared.recovery.load(Ordering::SeqCst)
                        && started.elapsed() < RECOVERY_DEADLINE
                    {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    return None;
                }
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: {what} watchdog expired", self.rank)
                }
            }
        }
    }
}

/// One `[rank][data_port]` check-in over the rendezvous (bootstrap and
/// re-admission use the identical exchange); returns the port table.
fn announce_to_rendezvous(
    addr: &str,
    rank: usize,
    size: usize,
    data_listener: &TcpListener,
) -> io::Result<Vec<u16>> {
    let mut rendezvous = TcpStream::connect(addr)?;
    rendezvous.write_all(&(rank as u32).to_le_bytes())?;
    rendezvous.write_all(&data_listener.local_addr()?.port().to_le_bytes())?;
    let mut table = vec![0u8; 2 * size];
    rendezvous.read_exact(&mut table)?;
    Ok(table
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect())
}

/// Wire a (possibly replacement) connection from `from` into the mesh:
/// bump the connection generation *first* (so a superseded reader's EOF is
/// ignored from here on), install the write half, spawn the reader, then
/// revive the peer.
fn install_peer(
    shared: &Arc<Shared>,
    peers: &Arc<PeerSlots>,
    my_rank: usize,
    from: usize,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    let gen = shared.conn_gen[from].fetch_add(1, Ordering::SeqCst) + 1;
    shared.touch(from);
    *peers[from].lock() = Some(stream);
    let shared_reader = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("tcp-reader-{my_rank}-from-{from}"))
        .spawn(move || reader_loop(reader, from, gen, shared_reader))?;
    shared.revive(from);
    Ok(())
}

/// The re-admission acceptor: accept `[rank]` mesh hellos at any point in
/// the run and install the connection as a replacement for that peer.
/// Runs until the transport shuts down.
fn acceptor_loop(
    listener: TcpListener,
    my_rank: usize,
    shared: Arc<Shared>,
    peers: Arc<PeerSlots>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut s, _)) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                let Ok(from) = read_u32(&mut s) else { continue };
                let from = from as usize;
                if from >= peers.len() || from == my_rank {
                    continue;
                }
                let _ = s.set_read_timeout(None);
                let _ = install_peer(&shared, &peers, my_rank, from, s);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Demultiplex frames from one peer into the rank's inbox; runs until the
/// connection closes, then announces the peer's death — unless a newer
/// connection generation has replaced this one in the meantime.
fn reader_loop(mut stream: TcpStream, from: usize, gen: u64, shared: Arc<Shared>) {
    loop {
        let mut head = [0u8; 20];
        if stream.read_exact(&mut head).is_err() {
            break;
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let tag = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        let delay_us = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            break;
        }
        shared.touch(from);
        // A frame can only arrive over an open connection: a peer the
        // heartbeat monitor wrote off during a scheduling stall is
        // demonstrably still here, so reverse the verdict. EOF death
        // stays final — this reader has exited by then and a stale
        // generation cannot resurrect a genuinely replaced peer.
        if shared.is_dead(from) {
            shared.revive_if_current(from, gen);
        }
        if tag == hb_tag() {
            // Heartbeats only feed the liveness clock; never the inbox.
            continue;
        }
        let deliver_at = Instant::now() + Duration::from_micros(delay_us);
        shared.inbox.push(from, tag, payload, deliver_at);
    }
    // EOF is reached only after every buffered frame above was pushed, so
    // the death can never overtake a delivered message.
    shared.mark_dead_if_current(from, gen);
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn is_alive(&self, rank: usize) -> bool {
        !self.shared.is_dead(rank)
    }

    fn live_count(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    fn send(&self, to: usize, tag: u64, data: Vec<u8>, delay: Option<Duration>) {
        assert!(to < self.size, "send to invalid rank {to}");
        if self.shared.is_dead(to) {
            return;
        }
        let delay_us = delay.map_or(0, |d| d.as_micros() as u64);
        if to == self.rank {
            let deliver_at = Instant::now() + Duration::from_micros(delay_us);
            self.shared.inbox.push(to, tag, data, deliver_at);
            return;
        }
        let frame = frame_bytes(tag, delay_us, &data);
        // A write failure (or an empty slot while a replacement connects)
        // means the peer is gone; its reader thread will notice the EOF —
        // drop the message like any send to the dead.
        if let Some(stream) = self.peers[to].lock().as_mut() {
            let _ = stream.write_all(&frame);
        }
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        self.shared
            .inbox
            .try_take(from, tag, &|| self.shared.is_dead(from))
    }

    fn recv_timeout(&self, from: usize, tag: u64, timeout: Duration) -> Result<Vec<u8>, CommError> {
        self.shared
            .inbox
            .take_deadline(from, tag, timeout, &|| self.shared.is_dead(from))
    }

    fn barrier(&self) -> Result<(), CommError> {
        let generation = self.barrier_gen.fetch_add(1, Ordering::SeqCst);
        let arrive = coll_tag(K_BARRIER_ARRIVE, generation);
        let release = coll_tag(K_BARRIER_RELEASE, generation);
        if self.rank == 0 {
            for r in 1..self.size {
                self.coll_recv(r, arrive, "barrier");
            }
            for r in 1..self.size {
                self.send(r, release, Vec::new(), None);
            }
            Ok(())
        } else {
            self.send(0, arrive, Vec::new(), None);
            match self.recv_timeout(0, release, WATCHDOG) {
                Ok(_) => Ok(()),
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(0)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: barrier watchdog expired", self.rank)
                }
            }
        }
    }

    fn allreduce_sum(&self, data: &mut [f64]) -> Result<(), CommError> {
        let generation = self.reduce_gen.fetch_add(1, Ordering::SeqCst);
        let contrib = coll_tag(K_REDUCE_CONTRIB, generation);
        let result = coll_tag(K_REDUCE_RESULT, generation);
        if self.rank == 0 {
            // Sum in rank order so the reduction is deterministic.
            let mut accum = data.to_vec();
            for r in 1..self.size {
                let Some(bytes) = self.coll_recv(r, contrib, "allreduce") else {
                    continue;
                };
                let v = decode_f64s(&bytes);
                assert_eq!(
                    v.len(),
                    accum.len(),
                    "allreduce length mismatch across ranks"
                );
                for (a, x) in accum.iter_mut().zip(v) {
                    *a += x;
                }
            }
            let bytes = encode_f64s(&accum);
            for r in 1..self.size {
                self.send(r, result, bytes.clone(), None);
            }
            data.copy_from_slice(&accum);
            Ok(())
        } else {
            self.send(0, contrib, encode_f64s(data), None);
            match self.recv_timeout(0, result, WATCHDOG) {
                Ok(bytes) => {
                    let v = decode_f64s(&bytes);
                    assert_eq!(
                        v.len(),
                        data.len(),
                        "allreduce length mismatch across ranks"
                    );
                    data.copy_from_slice(&v);
                    Ok(())
                }
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(0)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: allreduce watchdog expired", self.rank)
                }
            }
        }
    }

    fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError> {
        let generation = self.bcast_gen.fetch_add(1, Ordering::SeqCst);
        let tag = coll_tag(K_BCAST, generation);
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send(r, tag, data.clone(), None);
                }
            }
            Ok(data)
        } else {
            match self.recv_timeout(root, tag, WATCHDOG) {
                Ok(payload) => Ok(payload),
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(root)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: broadcast watchdog expired", self.rank)
                }
            }
        }
    }

    fn start_heartbeats(&self, interval: Duration, deadline: Duration) {
        // Reset every liveness clock so peers idle since bootstrap don't
        // trip the deadline on the very first monitor pass.
        for j in 0..self.size {
            self.shared.touch(j);
        }
        let shared = Arc::clone(&self.shared);
        let peers = Arc::clone(&self.peers);
        let me = self.rank;
        std::thread::Builder::new()
            .name(format!("tcp-hb-send-{me}"))
            .spawn(move || {
                let frame = frame_bytes(hb_tag(), 0, &[]);
                while !shared.shutdown.load(Ordering::SeqCst) {
                    for (j, slot) in peers.iter().enumerate() {
                        if j == me || shared.is_dead(j) {
                            continue;
                        }
                        if let Some(s) = slot.lock().as_mut() {
                            let _ = s.write_all(&frame);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn heartbeat sender");
        let shared = Arc::clone(&self.shared);
        let me = self.rank;
        let size = self.size;
        std::thread::Builder::new()
            .name(format!("tcp-hb-mon-{me}"))
            .spawn(move || {
                let poll = (deadline / 4).max(Duration::from_millis(1));
                let mut last_pass = Instant::now();
                while !shared.shutdown.load(Ordering::SeqCst) {
                    if last_pass.elapsed() > poll + deadline / 2 {
                        // The monitor itself just lost the CPU for longer
                        // than half the deadline (single-core contention,
                        // respawn exec storm): every liveness clock is
                        // stale testimony. Re-arm them instead of
                        // declaring the whole mesh dead.
                        for j in 0..size {
                            if j != me {
                                shared.touch(j);
                            }
                        }
                    } else {
                        for j in 0..size {
                            if j == me || shared.is_dead(j) {
                                continue;
                            }
                            if shared.last_seen[j].lock().elapsed() > deadline {
                                shared.hb_misses.fetch_add(1, Ordering::SeqCst);
                                shared.mark_dead(j);
                            }
                        }
                    }
                    last_pass = Instant::now();
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn heartbeat monitor");
    }

    fn heartbeat_misses(&self) -> u64 {
        self.shared.hb_misses.load(Ordering::SeqCst)
    }

    fn set_recovery(&self, enabled: bool) {
        self.shared.recovery.store(enabled, Ordering::SeqCst);
    }

    fn collective_generations(&self) -> [u64; 3] {
        [
            self.barrier_gen.load(Ordering::SeqCst),
            self.reduce_gen.load(Ordering::SeqCst),
            self.bcast_gen.load(Ordering::SeqCst),
        ]
    }

    fn set_collective_generations(&self, gens: [u64; 3]) {
        self.barrier_gen.store(gens[0], Ordering::SeqCst);
        self.reduce_gen.store(gens[1], Ordering::SeqCst);
        self.bcast_gen.store(gens[2], Ordering::SeqCst);
    }
}

impl Drop for TcpTransport {
    /// Shut every peer connection down explicitly. The FIN is sent after
    /// all queued data, so peers drain our remaining messages and *then*
    /// observe the death — this is what makes "send results, then exit"
    /// and "panic mid-round" both behave correctly. Also releases this
    /// rank's acceptor and heartbeat threads (and, on rank 0, the
    /// rendezvous service).
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for slot in self.peers.iter() {
            if let Some(stream) = slot.lock().as_ref() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

fn frame_bytes(tag: u64, delay_us: u64, data: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(20 + data.len());
    frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&delay_us.to_le_bytes());
    frame.extend_from_slice(data);
    frame
}

fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * data.len());
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

fn read_u32(s: &mut TcpStream) -> io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u16(s: &mut TcpStream) -> io::Result<u16> {
    let mut b = [0u8; 2];
    s.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// In-process harness for the TCP backend: runs `size` ranks on threads,
/// each owning a real socket-mesh [`TcpTransport`] over loopback. Gives
/// tests the full wire path (rendezvous, framing, reader threads, death
/// by disconnect) without spawning processes.
pub struct TcpCluster;

impl TcpCluster {
    /// Run a cluster program over loopback sockets under a fault plan.
    /// Mirrors [`crate::ThreadCluster::run_with_faults`]: a panicking
    /// rank becomes [`RankOutcome::Died`] and its dropped transport's
    /// disconnects announce the death to the survivors.
    pub fn run_loopback<T, F>(size: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(Communicator<TcpTransport>) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        install_crash_hook();
        let rendezvous = TcpRendezvous::bind("127.0.0.1:0").expect("bind rendezvous");
        let addr = rendezvous
            .local_addr()
            .expect("rendezvous address")
            .to_string();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            let root_plan = plan.clone();
            let f_ref = &f;
            handles.push(scope.spawn(move || {
                let transport = rendezvous.into_transport(size).expect("rank 0 mesh setup");
                run_rank(transport, root_plan, f_ref)
            }));
            for rank in 1..size {
                let plan = plan.clone();
                let addr = addr.clone();
                let f_ref = &f;
                handles.push(scope.spawn(move || {
                    let transport =
                        TcpTransport::connect(&addr, rank, size).expect("worker mesh setup");
                    run_rank(transport, plan, f_ref)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        })
    }

    /// [`Self::run_loopback`] with self-healing: every rank runs under a
    /// per-rank supervisor that, when the rank dies with restart budget
    /// left, waits out a bounded exponential backoff, rebuilds the mesh
    /// through the still-open rendezvous ([`TcpTransport::reconnect`]),
    /// disarms the kills that already fired, and re-runs `f` with the
    /// incremented respawn count — the in-process twin of the dt-core
    /// process supervisor. Rank 0 (rendezvous + collective coordinator)
    /// is never respawned; its death ends the run as usual.
    ///
    /// `f` receives `(comm, respawns)` so the program can rejoin from its
    /// checkpoint rather than start over.
    pub fn run_loopback_recovering<T, F>(
        size: usize,
        plan: FaultPlan,
        max_restarts: u64,
        f: F,
    ) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(Communicator<TcpTransport>, u64) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        install_crash_hook();
        let rendezvous = TcpRendezvous::bind("127.0.0.1:0").expect("bind rendezvous");
        let addr = rendezvous
            .local_addr()
            .expect("rendezvous address")
            .to_string();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            let root_plan = plan.clone();
            let f_ref = &f;
            handles.push(scope.spawn(move || {
                let transport = rendezvous
                    .into_transport_recovering(size)
                    .expect("rank 0 mesh setup");
                run_rank_with(transport, root_plan, f_ref, 0)
            }));
            for rank in 1..size {
                let plan = plan.clone();
                let addr = addr.clone();
                let f_ref = &f;
                handles.push(scope.spawn(move || {
                    let mut respawns = 0u64;
                    loop {
                        let transport = if respawns == 0 {
                            TcpTransport::connect_recovering(&addr, rank, size)
                        } else {
                            TcpTransport::reconnect(&addr, rank, size)
                        }
                        .expect("worker mesh setup");
                        let armed = plan.disarm_kills(rank, respawns);
                        match run_rank_with(transport, armed, f_ref, respawns) {
                            RankOutcome::Died { .. } if respawns < max_restarts => {
                                let backoff = Duration::from_millis(10 << respawns.min(4));
                                std::thread::sleep(backoff);
                                respawns += 1;
                            }
                            outcome => return outcome,
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        })
    }
}

fn run_rank<T, F>(transport: TcpTransport, plan: FaultPlan, f: &F) -> RankOutcome<T>
where
    F: Fn(Communicator<TcpTransport>) -> T,
{
    let comm = Communicator::new(transport, plan);
    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
        Ok(v) => RankOutcome::Completed(v),
        Err(payload) => RankOutcome::Died {
            cause: describe_panic(payload.as_ref()),
        },
    }
}

fn run_rank_with<T, F>(
    transport: TcpTransport,
    plan: FaultPlan,
    f: &F,
    respawns: u64,
) -> RankOutcome<T>
where
    F: Fn(Communicator<TcpTransport>, u64) -> T,
{
    let comm = Communicator::new(transport, plan);
    match catch_unwind(AssertUnwindSafe(|| f(comm, respawns))) {
        Ok(v) => RankOutcome::Completed(v),
        Err(payload) => RankOutcome::Died {
            cause: describe_panic(payload.as_ref()),
        },
    }
}
