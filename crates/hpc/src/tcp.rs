//! The TCP backend: ranks are processes (or threads, in tests) connected
//! by real `std::net` loopback sockets.
//!
//! Implements the same [`Transport`] contract as the thread fabric, so the
//! whole REWL stack — fault injection, timeouts, the exchange protocol,
//! checkpointing — runs unchanged over genuine inter-process message
//! passing (`deepthermo run --cluster tcp:<n>`).
//!
//! ## Topology
//!
//! A run bootstraps through a **rank-0 rendezvous**: rank 0 binds a
//! [`TcpRendezvous`] listener whose address workers are given. Each worker
//! binds its own data listener, dials the rendezvous, and announces
//! `[rank: u32][data_port: u16]`; once all workers have checked in, rank 0
//! answers every worker with the full port table. The mesh is then built
//! deterministically: rank *i* dials every rank *j < i* at its data port
//! (announcing itself with a `[rank: u32]` hello), so every pair of ranks
//! shares exactly one connection.
//!
//! ## Wire format
//!
//! Each message is one length-prefixed frame:
//! `[payload_len: u32][tag: u64][delay_micros: u64][payload]`, all little
//! endian. `delay_micros` carries fault-injected delivery delays: the
//! *receiver* holds the message until the delay elapses, mirroring the
//! thread fabric's in-flight delay semantics.
//!
//! A reader thread per peer connection demultiplexes frames into the
//! rank's `Inbox`. A closed or broken connection marks that peer dead,
//! which unblocks pending receives with [`CommError::RankDead`] — process
//! exit (clean or crashed) is death notification, no extra protocol
//! needed. Orderly TCP shutdown delivers buffered frames before the EOF,
//! so messages sent just before a rank exits still arrive.
//!
//! ## Collectives
//!
//! Barrier, sum-allreduce, and broadcast run over reserved tags (bit 63
//! set, disjoint from all driver tags) with rank 0 coordinating barrier
//! and reduction; each call uses a fresh generation number so rounds never
//! collide. Dead ranks are skipped — collectives complete over the
//! survivors, as on the thread fabric — but if the *coordinator* (rank 0)
//! dies, waiters get [`CommError::RankDead`]`(0)` instead.

use std::cell::Cell;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::comm::{CommError, Communicator};
use crate::fault::FaultPlan;
use crate::thread_fabric::{describe_panic, install_crash_hook, RankOutcome};
use crate::transport::{Inbox, Transport, WATCHDOG};

/// Collective tags live above bit 63; driver tags (`with_round` included)
/// stay below it.
const COLL_BIT: u64 = 1 << 63;
const K_BARRIER_ARRIVE: u64 = 1;
const K_BARRIER_RELEASE: u64 = 2;
const K_REDUCE_CONTRIB: u64 = 3;
const K_REDUCE_RESULT: u64 = 4;
const K_BCAST: u64 = 5;

fn coll_tag(kind: u64, generation: u64) -> u64 {
    debug_assert!(generation < 1 << 56, "collective generation overflow");
    COLL_BIT | (kind << 56) | generation
}

/// State shared between a rank's main thread and its per-peer reader
/// threads.
struct Shared {
    inbox: Inbox,
    dead: Vec<AtomicBool>,
    live: AtomicUsize,
}

impl Shared {
    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    fn mark_dead(&self, rank: usize) {
        if self.dead[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.inbox.notify_all();
    }
}

/// The rank-0 rendezvous point workers dial to join a run.
pub struct TcpRendezvous {
    listener: TcpListener,
}

impl TcpRendezvous {
    /// Bind the rendezvous listener. Use `"127.0.0.1:0"` to let the OS
    /// pick a free port, then read it back with [`Self::local_addr`].
    ///
    /// # Errors
    /// Any `bind(2)` failure.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(TcpRendezvous {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address workers must dial.
    ///
    /// # Errors
    /// Any `getsockname(2)` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Complete the rendezvous as rank 0 of a `size`-rank cluster: wait
    /// for all `size - 1` workers to check in, distribute the port table,
    /// and accept the mesh connections. Blocks until the cluster is
    /// fully connected.
    ///
    /// # Errors
    /// Socket failures, or a malformed/duplicate worker hello.
    pub fn into_transport(self, size: usize) -> io::Result<TcpTransport> {
        assert!(size > 0, "cluster needs at least one rank");
        let data_listener = TcpListener::bind("127.0.0.1:0")?;
        let mut ports = vec![0u16; size];
        ports[0] = data_listener.local_addr()?.port();

        // Phase 1: collect worker hellos over the rendezvous listener.
        let mut worker_streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        for _ in 1..size {
            let (mut s, _) = self.listener.accept()?;
            let rank = read_u32(&mut s)? as usize;
            let port = read_u16(&mut s)?;
            if rank == 0 || rank >= size || worker_streams[rank].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad or duplicate worker hello for rank {rank}"),
                ));
            }
            ports[rank] = port;
            worker_streams[rank] = Some(s);
        }

        // Phase 2: every listener is now bound — publish the table.
        let mut table = Vec::with_capacity(2 * size);
        for p in &ports {
            table.extend_from_slice(&p.to_le_bytes());
        }
        for s in worker_streams.iter_mut().flatten() {
            s.write_all(&table)?;
        }

        // Phase 3: rank 0 dials nobody; accept all mesh connections.
        TcpTransport::finish(0, size, accept_mesh(&data_listener, size, &[])?)
    }
}

/// Accept the inbound half of the mesh: one connection from every rank
/// not in `outbound` (and not ourselves), identified by its hello.
fn accept_mesh(
    listener: &TcpListener,
    size: usize,
    outbound: &[usize],
) -> io::Result<Vec<Option<TcpStream>>> {
    let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    let expected = size - 1 - outbound.len();
    for _ in 0..expected {
        let (mut s, _) = listener.accept()?;
        let rank = read_u32(&mut s)? as usize;
        if rank >= size || peers[rank].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad or duplicate mesh hello for rank {rank}"),
            ));
        }
        peers[rank] = Some(s);
    }
    Ok(peers)
}

/// A rank's handle to the socket mesh — the TCP backend of [`Transport`].
pub struct TcpTransport {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
    /// Write halves, one per peer (`None` at our own index). Reader
    /// threads own cloned handles.
    peers: Vec<Option<Mutex<TcpStream>>>,
    barrier_gen: Cell<u64>,
    reduce_gen: Cell<u64>,
    bcast_gen: Cell<u64>,
}

impl TcpTransport {
    /// Join a cluster as worker `rank` by dialing rank 0's rendezvous at
    /// `addr`. Blocks until the mesh is fully connected.
    ///
    /// # Errors
    /// Socket failures, or a malformed rendezvous reply.
    pub fn connect(addr: &str, rank: usize, size: usize) -> io::Result<TcpTransport> {
        assert!(rank > 0 && rank < size, "worker rank out of range");
        let data_listener = TcpListener::bind("127.0.0.1:0")?;

        // Check in with rank 0 and learn everyone's data port.
        let mut rendezvous = TcpStream::connect(addr)?;
        rendezvous.write_all(&(rank as u32).to_le_bytes())?;
        rendezvous.write_all(&data_listener.local_addr()?.port().to_le_bytes())?;
        let mut table = vec![0u8; 2 * size];
        rendezvous.read_exact(&mut table)?;
        let ports: Vec<u16> = table
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();

        // Dial every lower rank, then accept every higher one.
        let lower: Vec<usize> = (0..rank).collect();
        let mut peers = accept_mesh(&data_listener, size, &lower)?;
        for &j in &lower {
            let mut s = TcpStream::connect(("127.0.0.1", ports[j]))?;
            s.write_all(&(rank as u32).to_le_bytes())?;
            peers[j] = Some(s);
        }
        Self::finish(rank, size, peers)
    }

    /// Wrap a fully connected mesh: spawn reader threads and assemble the
    /// transport.
    fn finish(rank: usize, size: usize, peers: Vec<Option<TcpStream>>) -> io::Result<TcpTransport> {
        let shared = Arc::new(Shared {
            inbox: Inbox::default(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            live: AtomicUsize::new(size),
        });
        let mut write_halves: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(size);
        for (peer, stream) in peers.into_iter().enumerate() {
            match stream {
                None => write_halves.push(None),
                Some(s) => {
                    s.set_nodelay(true)?;
                    let reader = s.try_clone()?;
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("tcp-reader-{rank}-from-{peer}"))
                        .spawn(move || reader_loop(reader, peer, shared))?;
                    write_halves.push(Some(Mutex::new(s)));
                }
            }
        }
        Ok(TcpTransport {
            rank,
            size,
            shared,
            peers: write_halves,
            barrier_gen: Cell::new(0),
            reduce_gen: Cell::new(0),
            bcast_gen: Cell::new(0),
        })
    }

    /// Receive on a collective tag as the coordinator: a dead peer is
    /// skipped (`None`), a timeout is a protocol violation.
    fn coll_recv(&self, from: usize, tag: u64, what: &str) -> Option<Vec<u8>> {
        match self.recv_timeout(from, tag, WATCHDOG) {
            Ok(payload) => Some(payload),
            Err(CommError::RankDead(_)) => None,
            Err(CommError::Timeout { .. }) => {
                panic!("rank {}: {what} watchdog expired", self.rank)
            }
        }
    }
}

/// Demultiplex frames from one peer into the rank's inbox; runs until the
/// connection closes, then announces the peer's death.
fn reader_loop(mut stream: TcpStream, from: usize, shared: Arc<Shared>) {
    loop {
        let mut head = [0u8; 20];
        if stream.read_exact(&mut head).is_err() {
            break;
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let tag = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        let delay_us = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            break;
        }
        let deliver_at = Instant::now() + Duration::from_micros(delay_us);
        shared.inbox.push(from, tag, payload, deliver_at);
    }
    // EOF is reached only after every buffered frame above was pushed, so
    // the death can never overtake a delivered message.
    shared.mark_dead(from);
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn is_alive(&self, rank: usize) -> bool {
        !self.shared.is_dead(rank)
    }

    fn live_count(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    fn send(&self, to: usize, tag: u64, data: Vec<u8>, delay: Option<Duration>) {
        assert!(to < self.size, "send to invalid rank {to}");
        if self.shared.is_dead(to) {
            return;
        }
        let delay_us = delay.map_or(0, |d| d.as_micros() as u64);
        if to == self.rank {
            let deliver_at = Instant::now() + Duration::from_micros(delay_us);
            self.shared.inbox.push(to, tag, data, deliver_at);
            return;
        }
        let mut frame = Vec::with_capacity(20 + data.len());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&delay_us.to_le_bytes());
        frame.extend_from_slice(&data);
        let stream = self.peers[to].as_ref().expect("peer stream exists");
        // A write failure means the peer is gone; its reader thread will
        // notice the EOF — drop the message like any send to the dead.
        let _ = stream.lock().write_all(&frame);
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        self.shared
            .inbox
            .try_take(from, tag, &|| self.shared.is_dead(from))
    }

    fn recv_timeout(&self, from: usize, tag: u64, timeout: Duration) -> Result<Vec<u8>, CommError> {
        self.shared
            .inbox
            .take_deadline(from, tag, timeout, &|| self.shared.is_dead(from))
    }

    fn barrier(&self) -> Result<(), CommError> {
        let generation = self.barrier_gen.get();
        self.barrier_gen.set(generation + 1);
        let arrive = coll_tag(K_BARRIER_ARRIVE, generation);
        let release = coll_tag(K_BARRIER_RELEASE, generation);
        if self.rank == 0 {
            for r in 1..self.size {
                self.coll_recv(r, arrive, "barrier");
            }
            for r in 1..self.size {
                self.send(r, release, Vec::new(), None);
            }
            Ok(())
        } else {
            self.send(0, arrive, Vec::new(), None);
            match self.recv_timeout(0, release, WATCHDOG) {
                Ok(_) => Ok(()),
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(0)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: barrier watchdog expired", self.rank)
                }
            }
        }
    }

    fn allreduce_sum(&self, data: &mut [f64]) -> Result<(), CommError> {
        let generation = self.reduce_gen.get();
        self.reduce_gen.set(generation + 1);
        let contrib = coll_tag(K_REDUCE_CONTRIB, generation);
        let result = coll_tag(K_REDUCE_RESULT, generation);
        if self.rank == 0 {
            // Sum in rank order so the reduction is deterministic.
            let mut accum = data.to_vec();
            for r in 1..self.size {
                let Some(bytes) = self.coll_recv(r, contrib, "allreduce") else {
                    continue;
                };
                let v = decode_f64s(&bytes);
                assert_eq!(
                    v.len(),
                    accum.len(),
                    "allreduce length mismatch across ranks"
                );
                for (a, x) in accum.iter_mut().zip(v) {
                    *a += x;
                }
            }
            let bytes = encode_f64s(&accum);
            for r in 1..self.size {
                self.send(r, result, bytes.clone(), None);
            }
            data.copy_from_slice(&accum);
            Ok(())
        } else {
            self.send(0, contrib, encode_f64s(data), None);
            match self.recv_timeout(0, result, WATCHDOG) {
                Ok(bytes) => {
                    let v = decode_f64s(&bytes);
                    assert_eq!(
                        v.len(),
                        data.len(),
                        "allreduce length mismatch across ranks"
                    );
                    data.copy_from_slice(&v);
                    Ok(())
                }
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(0)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: allreduce watchdog expired", self.rank)
                }
            }
        }
    }

    fn broadcast_checked(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, CommError> {
        let generation = self.bcast_gen.get();
        self.bcast_gen.set(generation + 1);
        let tag = coll_tag(K_BCAST, generation);
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send(r, tag, data.clone(), None);
                }
            }
            Ok(data)
        } else {
            match self.recv_timeout(root, tag, WATCHDOG) {
                Ok(payload) => Ok(payload),
                Err(CommError::RankDead(_)) => Err(CommError::RankDead(root)),
                Err(CommError::Timeout { .. }) => {
                    panic!("rank {}: broadcast watchdog expired", self.rank)
                }
            }
        }
    }
}

impl Drop for TcpTransport {
    /// Shut every peer connection down explicitly. The FIN is sent after
    /// all queued data, so peers drain our remaining messages and *then*
    /// observe the death — this is what makes "send results, then exit"
    /// and "panic mid-round" both behave correctly.
    fn drop(&mut self) {
        for stream in self.peers.iter().flatten() {
            let _ = stream.lock().shutdown(std::net::Shutdown::Both);
        }
    }
}

fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * data.len());
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

fn read_u32(s: &mut TcpStream) -> io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u16(s: &mut TcpStream) -> io::Result<u16> {
    let mut b = [0u8; 2];
    s.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// In-process harness for the TCP backend: runs `size` ranks on threads,
/// each owning a real socket-mesh [`TcpTransport`] over loopback. Gives
/// tests the full wire path (rendezvous, framing, reader threads, death
/// by disconnect) without spawning processes.
pub struct TcpCluster;

impl TcpCluster {
    /// Run a cluster program over loopback sockets under a fault plan.
    /// Mirrors [`crate::ThreadCluster::run_with_faults`]: a panicking
    /// rank becomes [`RankOutcome::Died`] and its dropped transport's
    /// disconnects announce the death to the survivors.
    pub fn run_loopback<T, F>(size: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(Communicator<TcpTransport>) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        install_crash_hook();
        let rendezvous = TcpRendezvous::bind("127.0.0.1:0").expect("bind rendezvous");
        let addr = rendezvous
            .local_addr()
            .expect("rendezvous address")
            .to_string();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            let root_plan = plan.clone();
            let f_ref = &f;
            handles.push(scope.spawn(move || {
                let transport = rendezvous.into_transport(size).expect("rank 0 mesh setup");
                run_rank(transport, root_plan, f_ref)
            }));
            for rank in 1..size {
                let plan = plan.clone();
                let addr = addr.clone();
                let f_ref = &f;
                handles.push(scope.spawn(move || {
                    let transport =
                        TcpTransport::connect(&addr, rank, size).expect("worker mesh setup");
                    run_rank(transport, plan, f_ref)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        })
    }
}

fn run_rank<T, F>(transport: TcpTransport, plan: FaultPlan, f: &F) -> RankOutcome<T>
where
    F: Fn(Communicator<TcpTransport>) -> T,
{
    let comm = Communicator::new(transport, plan);
    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
        Ok(v) => RankOutcome::Completed(v),
        Err(payload) => RankOutcome::Died {
            cause: describe_panic(payload.as_ref()),
        },
    }
}
