//! Satellite test coverage for the metrics registry: concurrent counter
//! increments, histogram percentiles under contention, and the
//! disabled-mode no-op guarantee.

use std::thread;

use dt_telemetry::{validate_json, MetricsRegistry, Phase, Telemetry};

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = MetricsRegistry::new();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = reg.counter("moves");
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(reg.counter("moves").get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    let reg = MetricsRegistry::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = reg.histogram("latency_ns");
            scope.spawn(move || {
                for i in 1..=PER_THREAD {
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let hist = reg.histogram("latency_ns");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Values span 1..=20000; the p50 log2-bucket estimate must land
    // within a factor of √2·2 of the true median (10000).
    let p50 = hist.quantile(0.5);
    assert!(
        (4096.0..=23_171.0).contains(&p50),
        "p50 estimate {p50} out of range"
    );
    assert!(hist.quantile(0.99) >= p50);
    assert!(hist.quantile(0.0) <= p50);
}

#[test]
fn histogram_percentiles_are_monotone_in_q() {
    let reg = MetricsRegistry::new();
    let hist = reg.histogram("h");
    for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
        hist.record(v);
    }
    let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
    let estimates: Vec<f64> = qs.iter().map(|&q| hist.quantile(q)).collect();
    for pair in estimates.windows(2) {
        assert!(pair[0] <= pair[1], "quantiles not monotone: {estimates:?}");
    }
}

#[test]
fn disabled_telemetry_is_a_complete_noop() {
    let tel = Telemetry::disabled();
    // Spans, counters, gauges: all inert.
    for phase in Phase::ALL {
        let _span = tel.span(phase);
    }
    tel.add("anything", 42);
    tel.set_gauge("anything", 42.0);
    tel.record_ns(Phase::MoveBatch, 42);

    assert!(!tel.is_enabled());
    assert!(tel.registry().is_none());
    let snap = tel.snapshot(7);
    assert_eq!(snap.rank, 7);
    assert!(snap.phases.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    // An empty snapshot still exports valid JSON.
    validate_json(&snap.to_json()).expect("empty snapshot JSON parses");
}

#[test]
fn concurrent_spans_from_cloned_handles_accumulate() {
    let tel = Telemetry::enabled();
    thread::scope(|scope| {
        for _ in 0..4 {
            let tel = tel.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    tel.record_ns(Phase::EnergyEval, 1_000);
                    tel.add("evals", 1);
                }
            });
        }
    });
    let snap = tel.snapshot(0);
    let stat = snap.phase_stat(Phase::EnergyEval).expect("stat present");
    assert_eq!(stat.count, 400);
    assert!((stat.total_s - 400e-6).abs() < 1e-12);
    assert_eq!(snap.counter("evals"), Some(400));
}
