//! Phase span timers and the per-rank [`Telemetry`] handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::registry::{Histogram, MetricsRegistry};
use crate::report::{PhaseStat, RankTelemetry};

/// The fixed vocabulary of hot phases every sampler and driver times.
///
/// The first five mirror the components of the analytic roofline in
/// `dt-hpc` (`CostBreakdown`), so measured and modeled costs compare
/// phase-for-phase; the rest cover driver overheads the model folds away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// ΔE evaluation inside MC moves (memory-bound in the model).
    EnergyEval,
    /// Deep-proposal network inference (forward decode + reverse replay).
    Inference,
    /// Deep-proposal network training epochs.
    Train,
    /// Replica-exchange handshakes with window neighbors.
    Exchange,
    /// Weight averaging across a window (the simulated allreduce),
    /// including the collective convergence vote.
    Allreduce,
    /// Whole MC move batches (sweeps): proposal + ΔE + bookkeeping.
    MoveBatch,
    /// Cluster checkpoint writes and commit rounds.
    Checkpoint,
    /// The final gather/merge at rank 0.
    Gather,
}

impl Phase {
    /// Number of phases (slot-array size).
    pub const COUNT: usize = 8;

    /// Every phase, in slot order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::EnergyEval,
        Phase::Inference,
        Phase::Train,
        Phase::Exchange,
        Phase::Allreduce,
        Phase::MoveBatch,
        Phase::Checkpoint,
        Phase::Gather,
    ];

    /// Stable machine-readable name (used in JSONL and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::EnergyEval => "energy_eval",
            Phase::Inference => "inference",
            Phase::Train => "train",
            Phase::Exchange => "exchange",
            Phase::Allreduce => "allreduce",
            Phase::MoveBatch => "move_batch",
            Phase::Checkpoint => "checkpoint",
            Phase::Gather => "gather",
        }
    }

    /// Phase by its stable name.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One phase's accumulation slot.
#[derive(Debug, Default)]
struct PhaseSlot {
    total_ns: AtomicU64,
    count: AtomicU64,
    hist: Histogram,
}

/// Shared interior of an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct TelemetryInner {
    phases: [PhaseSlot; Phase::COUNT],
    registry: MetricsRegistry,
}

/// A per-rank telemetry handle.
///
/// Cloning is cheap and shares storage: a walker, its proposal kernels,
/// and the driving rank all record into the same slots. A *disabled*
/// handle ([`Telemetry::disabled`], also [`Default`]) reduces every
/// operation to one branch — no clock reads, no atomics — so
/// instrumentation can stay in hot paths unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// A recording handle.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                phases: Default::default(),
                registry: MetricsRegistry::new(),
            })),
        }
    }

    /// A no-op handle: every operation is a single branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Build a handle from a flag.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start timing `phase`; the elapsed time is recorded when the
    /// returned guard drops. On a disabled handle the guard is inert and
    /// no clock is read.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            slot: self
                .inner
                .as_deref()
                .map(|inner| (&inner.phases[phase as usize], Instant::now())),
        }
    }

    /// Record `ns` nanoseconds against `phase` directly.
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        if let Some(inner) = self.inner.as_deref() {
            let slot = &inner.phases[phase as usize];
            slot.total_ns.fetch_add(ns, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.hist.record(ns);
        }
    }

    /// Add `n` to the named counter (no-op when disabled).
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.counter(name).add(n);
        }
    }

    /// Set the named gauge (no-op when disabled).
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.gauge(name).set(v);
        }
    }

    /// The metric registry of an enabled handle.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|inner| &inner.registry)
    }

    /// Snapshot everything recorded so far into a [`RankTelemetry`].
    /// A disabled handle snapshots to an empty report (all-zero phases).
    pub fn snapshot(&self, rank: usize) -> RankTelemetry {
        let mut phases = Vec::with_capacity(Phase::COUNT);
        let (counters, gauges) = match self.inner.as_deref() {
            Some(inner) => {
                for p in Phase::ALL {
                    let slot = &inner.phases[p as usize];
                    phases.push(PhaseStat {
                        phase: p,
                        total_s: slot.total_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                        count: slot.count.load(Ordering::Relaxed),
                        p50_s: slot.hist.quantile(0.5) * 1e-9,
                        p99_s: slot.hist.quantile(0.99) * 1e-9,
                    });
                }
                (
                    inner.registry.counter_values(),
                    inner.registry.gauge_values(),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        RankTelemetry {
            rank,
            phases,
            counters,
            gauges,
        }
    }
}

/// Times one phase from creation to drop. Obtained from
/// [`Telemetry::span`]; inert when the handle is disabled.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct SpanGuard<'a> {
    slot: Option<(&'a PhaseSlot, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((slot, start)) = self.slot.take() {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            slot.total_ns.fetch_add(ns, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.hist.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_time() {
        let tel = Telemetry::enabled();
        {
            let _span = tel.span(Phase::Exchange);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = tel.snapshot(3);
        let stat = snap.phase_stat(Phase::Exchange).unwrap();
        assert_eq!(stat.count, 1);
        assert!(stat.total_s >= 0.002, "total {}", stat.total_s);
        assert_eq!(snap.rank, 3);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _span = tel.span(Phase::MoveBatch);
        }
        tel.add("moves", 10);
        tel.set_gauge("x", 1.0);
        assert!(!tel.is_enabled());
        assert!(tel.registry().is_none());
        let snap = tel.snapshot(0);
        assert!(snap.phases.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.record_ns(Phase::Train, 1000);
        tel.record_ns(Phase::Train, 500);
        let stat = tel.snapshot(0).phase_stat(Phase::Train).unwrap().clone();
        assert_eq!(stat.count, 2);
        assert!((stat.total_s - 1.5e-6).abs() < 1e-12);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
