//! A minimal JSON well-formedness checker.
//!
//! The workspace has no serde; telemetry JSON is hand-written in
//! `report`. This validator is the other half of that contract: tests
//! and the CI smoke job can assert every exported line is valid JSON
//! without pulling in a parser dependency. It checks syntax only — it
//! builds no value tree.

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What the validator expected.
    pub expected: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

/// Check that `text` is exactly one well-formed JSON value (object,
/// array, string, number, or literal) with nothing but whitespace after.
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        _ => Err(JsonError {
            at: *pos,
            expected: "a JSON value",
        }),
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                expected: "':' after object key",
            });
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or '}' in object",
                })
            }
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or ']' in array",
                })
            }
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            at: *pos,
            expected: "'\"' to open a string",
        });
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(JsonError {
                                        at: *pos,
                                        expected: "4 hex digits after \\u",
                                    })
                                }
                            }
                        }
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            expected: "a valid escape character",
                        })
                    }
                }
            }
            0x00..=0x1f => {
                return Err(JsonError {
                    at: *pos,
                    expected: "no raw control characters in string",
                })
            }
            _ => *pos += 1,
        }
    }
    Err(JsonError {
        at: *pos,
        expected: "'\"' to close a string",
    })
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = digits(bytes, pos);
    if int_digits == 0 {
        return Err(JsonError {
            at: *pos,
            expected: "a digit",
        });
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(bytes, pos) == 0 {
            return Err(JsonError {
                at: *pos,
                expected: "a digit after '.'",
            });
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(bytes, pos) == 0 {
            return Err(JsonError {
                at: *pos,
                expected: "a digit in exponent",
            });
        }
    }
    // Reject leading zeros like 01 (but allow 0, 0.5, -0).
    let mut digs = &bytes[start..*pos];
    if digs.first() == Some(&b'-') {
        digs = &digs[1..];
    }
    if digs.len() > 1 && digs[0] == b'0' && digs[1].is_ascii_digit() {
        return Err(JsonError {
            at: start,
            expected: "no leading zeros",
        });
    }
    Ok(())
}

fn digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn literal(bytes: &[u8], pos: &mut usize, word: &'static [u8]) -> Result<(), JsonError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(JsonError {
            at: *pos,
            expected: "a JSON literal (true/false/null)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e-3",
            "1e9",
            r#""hi \n é""#,
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1 2]",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "{1: 2}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = validate_json("[1, ]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
