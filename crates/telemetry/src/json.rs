//! A minimal JSON well-formedness checker and value parser.
//!
//! The workspace has no serde; telemetry JSON is hand-written in
//! `report`. This module is the other half of that contract:
//!
//! * [`validate_json`] — syntax-only checker; tests and the CI smoke job
//!   assert every exported line is valid JSON without a value tree.
//! * [`parse_json`] / [`JsonValue`] — a small value-building parser for
//!   consumers that must *read* JSON, most notably the `dt-serve`
//!   request path, which decodes untrusted HTTP bodies and needs a
//!   typed error (not a panic) for every malformed input.
//!
//! Numbers are parsed as `f64` (like JavaScript); object keys keep their
//! textual order so hand-written JSON round-trips recognizably.

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What the validator expected.
    pub expected: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

/// Write `v` as a JSON number (JSON has no NaN/Infinity; they become 0).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v:e}");
        out.push_str(&s);
    } else {
        out.push('0');
    }
}

/// Write `s` as a JSON string literal with escaping.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
///
/// Object members keep their textual order (no map semantics); duplicate
/// keys are preserved as-is and [`JsonValue::get`] returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// `[ ... ]`.
    Array(Vec<JsonValue>),
    /// `{ ... }`, members in textual order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse `text` as exactly one JSON value (object, array, string,
/// number, or literal) with nothing but whitespace after.
///
/// # Errors
/// A [`JsonError`] locating the first offending byte.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

/// Check that `text` is exactly one well-formed JSON value (object,
/// array, string, number, or literal) with nothing but whitespace after.
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    parse_json(text).map(|_| ())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos).map(JsonValue::String),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos).map(JsonValue::Number),
        Some(b't') => literal(bytes, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null").map(|()| JsonValue::Null),
        _ => Err(JsonError {
            at: *pos,
            expected: "a JSON value",
        }),
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                expected: "':' after object key",
            });
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let val = value(bytes, pos)?;
        members.push((key, val));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or '}' in object",
                })
            }
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    let mut elems = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(elems));
    }
    loop {
        skip_ws(bytes, pos);
        elems.push(value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(elems));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or ']' in array",
                })
            }
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            at: *pos,
            expected: "'\"' to open a string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{0008}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{000c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        *pos += 1;
                        let hi = hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: require a \uXXXX low half.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(JsonError {
                                        at: *pos,
                                        expected: "a low surrogate after a high surrogate",
                                    });
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => {
                                return Err(JsonError {
                                    at: *pos,
                                    expected: "a valid unicode escape",
                                })
                            }
                        }
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            expected: "a valid escape character",
                        })
                    }
                }
            }
            0x00..=0x1f => {
                return Err(JsonError {
                    at: *pos,
                    expected: "no raw control characters in string",
                })
            }
            _ => {
                // Input is &str, so multi-byte UTF-8 runs are valid;
                // copy the whole scalar in one step.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    expected: "valid UTF-8",
                })?;
                let c = rest.chars().next().expect("non-empty by loop guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(JsonError {
        at: *pos,
        expected: "'\"' to close a string",
    })
}

fn hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut v = 0u32;
    for _ in 0..4 {
        match bytes.get(*pos) {
            Some(h) if h.is_ascii_hexdigit() => {
                v = v * 16 + (*h as char).to_digit(16).expect("hex digit");
                *pos += 1;
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "4 hex digits after \\u",
                })
            }
        }
    }
    Ok(v)
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = digits(bytes, pos);
    if int_digits == 0 {
        return Err(JsonError {
            at: *pos,
            expected: "a digit",
        });
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(bytes, pos) == 0 {
            return Err(JsonError {
                at: *pos,
                expected: "a digit after '.'",
            });
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(bytes, pos) == 0 {
            return Err(JsonError {
                at: *pos,
                expected: "a digit in exponent",
            });
        }
    }
    // Reject leading zeros like 01 (but allow 0, 0.5, -0).
    let mut digs = &bytes[start..*pos];
    if digs.first() == Some(&b'-') {
        digs = &digs[1..];
    }
    if digs.len() > 1 && digs[0] == b'0' && digs[1].is_ascii_digit() {
        return Err(JsonError {
            at: start,
            expected: "no leading zeros",
        });
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number syntax");
    text.parse().map_err(|_| JsonError {
        at: start,
        expected: "a representable number",
    })
}

fn digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn literal(bytes: &[u8], pos: &mut usize, word: &'static [u8]) -> Result<(), JsonError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(JsonError {
            at: *pos,
            expected: "a JSON literal (true/false/null)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e-3",
            "1e9",
            r#""hi \n é""#,
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1 2]",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "{1: 2}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = validate_json("[1, ]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parser_builds_the_value_tree() {
        let v = parse_json(r#"{"a":[1,2.5,{"b":null}],"c":"x","d":true}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_decodes_escapes_and_unicode() {
        let v = parse_json(r#""a\n\t\"\\\/ é 😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\/ é 😀 é"));
        // Lone high surrogate must be rejected.
        assert!(parse_json(r#""\ud83d""#).is_err());
        assert!(parse_json(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn parsed_numbers_round_trip_f64_display() {
        // Rust's f64 Display prints the shortest round-trippable form, so
        // a value written with `{}` must parse back bit-identically —
        // the property dt-serve's cached-vs-direct equality rests on.
        for x in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let v = parse_json(&format!("{x}")).unwrap();
            assert_eq!(v.as_f64().map(f64::to_bits), Some(x.to_bits()));
        }
    }
}
