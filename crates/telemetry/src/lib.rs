//! # dt-telemetry
//!
//! The observability layer of DeepThermo: a lightweight metrics registry
//! (counters, gauges, monotonic histograms) and phase span timers with
//! near-zero overhead when disabled.
//!
//! The paper's headline claim is scalability to thousands of GPUs, and
//! window/walker tuning decisions hinge on *measured* per-phase costs
//! (moves vs. exchange vs. collective). This crate provides the
//! measurement surface every sampler and driver in the workspace
//! instruments against:
//!
//! * [`Telemetry`] — a cheaply-cloneable per-rank handle. Disabled
//!   handles ([`Telemetry::disabled`]) make every operation a single
//!   branch on a `None`; enabled handles accumulate into lock-free
//!   atomic slots shared by all clones.
//! * [`Phase`] — the fixed vocabulary of hot phases (move batches, ΔE
//!   evaluation, deep-proposal inference and training, replica exchange,
//!   weight allreduce, checkpoint, gather).
//! * [`MetricsRegistry`] — named counters/gauges/histograms for
//!   everything outside the fixed phase vocabulary (message traffic,
//!   acceptance counts, fault events).
//! * [`RankTelemetry`] — one rank's snapshot, exportable as JSONL
//!   ([`to_jsonl`]) and renderable as a human phase-breakdown table
//!   ([`phase_table`]); [`PhaseBreakdown`] aggregates ranks for the
//!   measured-vs-modeled roofline comparison in `dt-hpc`.
//!
//! ```
//! use dt_telemetry::{Phase, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _span = tel.span(Phase::MoveBatch); // timed until drop
//! }
//! tel.add("moves", 128);
//! let snap = tel.snapshot(0);
//! assert_eq!(snap.counter("moves"), Some(128));
//! assert!(snap.phase_stat(Phase::MoveBatch).unwrap().count == 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod registry;
pub mod report;
pub mod span;

pub use json::{parse_json, push_f64, push_json_string, validate_json, JsonError, JsonValue};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use report::{
    adaptive_counters, phase_table, recovery_counters, to_jsonl, PhaseBreakdown, PhaseStat,
    RankTelemetry,
};
pub use span::{Phase, SpanGuard, Telemetry};
