//! Per-rank telemetry snapshots, JSONL export, and phase tables.

use crate::json::{push_f64, push_json_string};
use crate::span::Phase;

/// Canonical counter names of the self-healing (recovery) layer, as they
/// appear in [`RankTelemetry::counters`] and the JSONL export. Kept in
/// one place so dashboards, tests, and the CLI grep for the same
/// strings.
pub mod recovery_counters {
    /// Times this rank's process was respawned by its supervisor (0 on a
    /// first life; the cluster total is the number of recoveries).
    pub const RANKS_RESPAWNED: &str = "ranks_respawned";
    /// Nanoseconds a respawned rank spent restoring checkpoint state and
    /// rejoining the cluster.
    pub const REJOIN_DURATION_NS: &str = "rejoin_duration_ns";
    /// Heartbeat deadlines this rank's liveness monitor saw peers miss.
    pub const HEARTBEAT_MISSES: &str = "heartbeat_misses";
}

/// Canonical counter names of the adaptive-windows layer (round-trip
/// instrumentation and dynamic walker reallocation), as they appear in
/// [`RankTelemetry::counters`] and the JSONL export.
pub mod adaptive_counters {
    /// Completed round trips (lowest ↔ highest window bin) this rank's
    /// walker has made, including trips banked in windows it has since
    /// migrated out of.
    pub const ROUND_TRIPS_TOTAL: &str = "round_trips_total";
    /// Wall-clock nanoseconds inside completed boundary crossings.
    /// Telemetry only — the rebalance planner uses move counts, never
    /// wall-clock, so plans stay deterministic.
    pub const ROUND_TRIP_NS: &str = "round_trip_ns";
    /// Times this rank's walker was migrated to another window by the
    /// rebalance planner.
    pub const WALKERS_REBALANCED_TOTAL: &str = "walkers_rebalanced_total";
}

/// Accumulated statistics for one phase on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Total wall-clock seconds spent in the phase.
    pub total_s: f64,
    /// Number of spans recorded.
    pub count: u64,
    /// Median span duration in seconds (log₂-bucket estimate).
    pub p50_s: f64,
    /// 99th-percentile span duration in seconds (log₂-bucket estimate).
    pub p99_s: f64,
}

impl PhaseStat {
    /// Mean span duration in seconds, or 0 when no spans were recorded.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// One rank's telemetry snapshot: phase timings plus named
/// counters/gauges. Produced by `Telemetry::snapshot`; a disabled
/// handle snapshots to empty vectors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTelemetry {
    /// Global rank that recorded this snapshot.
    pub rank: usize,
    /// Per-phase timings, in [`Phase::ALL`] order (empty when disabled).
    pub phases: Vec<PhaseStat>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl RankTelemetry {
    /// The stat for `phase`, if any spans were snapshot.
    pub fn phase_stat(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|s| s.phase == phase)
    }

    /// The value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The value of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Total seconds across all phases except [`Phase::MoveBatch`]
    /// (which *contains* ΔE/inference time and would double-count).
    pub fn total_phase_s(&self) -> f64 {
        self.phases
            .iter()
            .filter(|s| s.phase != Phase::MoveBatch)
            .map(|s| s.total_s)
            .sum()
    }

    /// This snapshot as one JSON object (one JSONL line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"rank\":");
        out.push_str(&self.rank.to_string());
        out.push_str(",\"phases\":{");
        for (i, s) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(s.phase.name());
            out.push_str("\":{\"total_s\":");
            push_f64(&mut out, s.total_s);
            out.push_str(",\"count\":");
            out.push_str(&s.count.to_string());
            out.push_str(",\"p50_s\":");
            push_f64(&mut out, s.p50_s);
            out.push_str(",\"p99_s\":");
            push_f64(&mut out, s.p99_s);
            out.push('}');
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_f64(&mut out, *v);
        }
        out.push_str("}}");
        out
    }
}

/// Export rank snapshots as JSONL: one JSON object per line, trailing
/// newline included. Empty input yields an empty string.
pub fn to_jsonl(ranks: &[RankTelemetry]) -> String {
    let mut out = String::new();
    for r in ranks {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Cross-rank aggregate of phase timings, used for the phase table and
/// the measured-vs-modeled roofline comparison.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Number of rank snapshots aggregated.
    pub ranks: usize,
    /// Summed total seconds per phase, in [`Phase::ALL`] order.
    pub total_s: [f64; Phase::COUNT],
    /// Summed span counts per phase, in [`Phase::ALL`] order.
    pub count: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// Aggregate rank snapshots (empty snapshots contribute nothing).
    pub fn aggregate(ranks: &[RankTelemetry]) -> Self {
        let mut agg = PhaseBreakdown {
            ranks: ranks.len(),
            ..PhaseBreakdown::default()
        };
        for r in ranks {
            for s in &r.phases {
                agg.total_s[s.phase as usize] += s.total_s;
                agg.count[s.phase as usize] += s.count;
            }
        }
        agg
    }

    /// Summed seconds across ranks for `phase`.
    pub fn total(&self, phase: Phase) -> f64 {
        self.total_s[phase as usize]
    }

    /// Summed span count across ranks for `phase`.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.count[phase as usize]
    }

    /// Sum over the non-overlapping phases (everything except
    /// [`Phase::MoveBatch`], which contains ΔE and inference time).
    pub fn accounted_s(&self) -> f64 {
        Phase::ALL
            .into_iter()
            .filter(|&p| p != Phase::MoveBatch)
            .map(|p| self.total(p))
            .sum()
    }
}

/// Render rank snapshots as a human-readable per-rank phase table:
/// one row per (rank, phase) with nonzero spans, plus a cross-rank
/// TOTAL section.
pub fn phase_table(ranks: &[RankTelemetry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5}  {:<11} {:>12} {:>10} {:>12} {:>12}\n",
        "rank", "phase", "total_s", "spans", "p50_s", "p99_s"
    ));
    for r in ranks {
        for s in &r.phases {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:>5}  {:<11} {:>12.6} {:>10} {:>12.3e} {:>12.3e}\n",
                r.rank,
                s.phase.name(),
                s.total_s,
                s.count,
                s.p50_s,
                s.p99_s
            ));
        }
    }
    let agg = PhaseBreakdown::aggregate(ranks);
    out.push_str(&format!(
        "{:>5}  {:<11} {:>12} {:>10}\n",
        "-----", "-----------", "------------", "----------"
    ));
    for p in Phase::ALL {
        if agg.spans(p) == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:>5}  {:<11} {:>12.6} {:>10}\n",
            "TOTAL",
            p.name(),
            agg.total(p),
            agg.spans(p)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Telemetry;

    fn sample() -> Vec<RankTelemetry> {
        let mut out = Vec::new();
        for rank in 0..2 {
            let tel = Telemetry::enabled();
            tel.record_ns(Phase::MoveBatch, 4_000_000);
            tel.record_ns(Phase::EnergyEval, 1_000_000);
            tel.record_ns(Phase::Exchange, 2_000_000);
            tel.add("moves_proposed", 100 + rank as u64);
            tel.set_gauge("ln_f", 0.5);
            out.push(tel.snapshot(rank));
        }
        out
    }

    #[test]
    fn jsonl_has_one_valid_line_per_rank() {
        let ranks = sample();
        let jsonl = to_jsonl(&ranks);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::validate_json(line).expect("line should parse");
            assert!(line.contains("\"move_batch\""));
            assert!(line.contains("\"moves_proposed\""));
        }
        assert!(lines[0].starts_with("{\"rank\":0"));
        assert!(lines[1].starts_with("{\"rank\":1"));
    }

    #[test]
    fn json_escapes_are_valid() {
        let snap = RankTelemetry {
            rank: 0,
            phases: vec![],
            counters: vec![("odd \"name\"\n".to_string(), 1)],
            gauges: vec![("inf".to_string(), f64::INFINITY)],
        };
        crate::json::validate_json(&snap.to_json()).expect("escaped JSON parses");
    }

    #[test]
    fn aggregate_sums_across_ranks() {
        let agg = PhaseBreakdown::aggregate(&sample());
        assert_eq!(agg.ranks, 2);
        assert!((agg.total(Phase::EnergyEval) - 2e-3).abs() < 1e-12);
        assert_eq!(agg.spans(Phase::Exchange), 2);
        // accounted excludes MoveBatch: 2*(1ms + 2ms) = 6ms.
        assert!((agg.accounted_s() - 6e-3).abs() < 1e-12);
    }

    #[test]
    fn table_lists_ranks_and_totals() {
        let table = phase_table(&sample());
        assert!(table.contains("energy_eval"));
        assert!(table.contains("TOTAL"));
        // Header + 2 ranks × 3 phases + separator + 3 totals.
        assert!(table.lines().count() >= 10);
    }

    #[test]
    fn counter_and_gauge_lookup() {
        let ranks = sample();
        assert_eq!(ranks[1].counter("moves_proposed"), Some(101));
        assert_eq!(ranks[0].gauge("ln_f"), Some(0.5));
        assert_eq!(ranks[0].counter("missing"), None);
    }
}
