//! Named counters, gauges, and monotonic histograms.
//!
//! Handles are `Arc`-backed: fetch one once (outside a hot loop) and
//! increment it lock-free thereafter. The registry itself is a small
//! mutex-guarded name table — only handle *lookup* takes the lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically-increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: covers `1 ns` to `~2⁶³ ns` (≈ 292 years), so
/// any duration or positive magnitude lands in a bucket.
const BUCKETS: usize = 64;

/// A lock-free monotonic histogram over log₂-spaced buckets.
///
/// Designed for durations in nanoseconds but usable for any non-negative
/// `u64` magnitude. Buckets only ever grow (no decrement, no reset), so
/// concurrent recorders never need coordination and snapshots are
/// monotone: a percentile read during recording is a valid percentile of
/// *some* prefix of the event stream.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index of a value: its log₂ magnitude (0 maps to bucket 0).
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).saturating_sub(1)
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`): the geometric midpoint
    /// of the bucket holding the q-th observation. Bucket resolution is a
    /// factor of two, so the estimate is within ~√2 of the true value.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i spans [2^i, 2^(i+1)); geometric midpoint.
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        2f64.powi((BUCKETS - 1) as i32)
    }
}

/// Interior of a [`MetricsRegistry`]; name tables are `BTreeMap` so
/// snapshots iterate in a stable order.
#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// A shared table of named metrics. Cloning shares the underlying
/// storage, so every clone observes the same counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("registry lock")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("registry lock")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.inner
            .histograms
            .lock()
            .expect("registry lock")
            .entry(name)
            .or_default()
            .clone()
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.inner
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("moves");
        let b = reg.counter("moves");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("moves").get(), 4);
        assert_eq!(reg.counter_values(), vec![("moves".to_string(), 4)]);
    }

    #[test]
    fn gauges_hold_last_value() {
        let reg = MetricsRegistry::new();
        reg.gauge("ln_f").set(0.5);
        reg.gauge("ln_f").set(0.25);
        assert_eq!(reg.gauge("ln_f").get(), 0.25);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        // True median 500; log2 buckets put it in [256, 512).
        assert!((256.0..=724.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 512.0, "p99 {p99}");
        assert!(h.quantile(1.0) >= p99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn zero_and_huge_values_land_in_range() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
