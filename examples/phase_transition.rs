//! Phase-transition study: the workload that motivates the paper.
//!
//! ```text
//! cargo run --release --example phase_transition [-- --l 4]
//! ```
//!
//! Samples the density of states of equiatomic NbMoTaW with DeepThermo's
//! deep proposals, then walks the temperature axis to characterize the
//! B2-type order–disorder transition: heat-capacity peak, entropy release
//! toward the ideal-mixing limit `ln 4` per atom, and the Mo–Ta
//! Warren–Cowley parameter's collapse across T_c.

use deepthermo::hamiltonian::KB_EV_PER_K;
use deepthermo::rewl::{DeepSpec, KernelSpec};
use deepthermo::{DeepThermo, DeepThermoConfig, DeepThermoError};

fn main() -> Result<(), DeepThermoError> {
    let l = std::env::args()
        .skip_while(|a| a != "--l")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);

    let mut config = DeepThermoConfig::quick_demo().with_deep(DeepSpec::default());
    config.material = deepthermo::MaterialSpec::nbmotaw(l);
    config.rewl.max_sweeps = 150_000;
    let n = config.material.num_sites();
    println!("Phase transition of NbMoTaW, {n} atoms, deep proposals on\n");

    let runner = DeepThermo::nbmotaw(config)?;
    let report = runner.run()?;
    assert!(matches!(runner.config().rewl.kernel, KernelSpec::Deep(_)));

    println!("{}", report.summary());

    // Entropy must approach the ideal-mixing value at high temperature.
    let s_per_atom_hot = report.thermo.last().expect("points").s / n as f64;
    println!(
        "entropy per atom at {:.0} K: {:.3} kB (ideal mixing ln 4 = {:.3})",
        report.thermo.last().expect("points").t,
        s_per_atom_hot,
        4.0f64.ln()
    );

    // Transition signatures.
    let (tc, cv) = (report.transition_temperature, report.cv_peak);
    println!(
        "heat-capacity peak: Cv/kB = {:.2} per cell ({:.3} per atom) at {tc:.0} K",
        cv,
        cv / n as f64
    );
    println!(
        "thermal scale check: kB*Tc = {:.1} meV vs strongest EPI 46.5 meV",
        KB_EV_PER_K * tc * 1e3
    );

    let mo_ta = report
        .sro_curves
        .iter()
        .find(|c| c.label == "Mo-Ta")
        .expect("Mo-Ta SRO curve");
    println!("\nMo-Ta first-shell Warren-Cowley parameter:");
    println!("{:>8} {:>10}", "T [K]", "alpha");
    for (t, a) in mo_ta.points.iter().step_by(6) {
        println!("{t:>8.0} {a:>10.3}");
    }
    let a_cold = mo_ta.points.first().expect("points").1;
    let a_hot = mo_ta.points.last().expect("points").1;
    println!(
        "\nordering strength decays {:.2} -> {:.2} across the transition",
        a_cold, a_hot
    );
    Ok(())
}
