//! Fault tolerance: REWL on a lossy simulated cluster.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! Injects a deterministic fault plan — kill one walker mid-run, drop a
//! couple of protocol messages — into the thread cluster and shows the
//! run degrading instead of dying: the lost walker is reported, the
//! survivors finish, and the DOS still matches exact enumeration.

use deepthermo::hamiltonian::{exact::ExactDos, PairHamiltonian};
use deepthermo::hpc::FaultPlan;
use deepthermo::lattice::{Composition, Structure, Supercell};
use deepthermo::rewl::{run_rewl, KernelSpec, RewlConfig};
use deepthermo::wanglandau::{LnfSchedule, WlParams};
use deepthermo::DeepThermoError;

fn main() -> Result<(), DeepThermoError> {
    // BCC 2x2x2, 2 species: small enough to enumerate exactly.
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).expect("composition");
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);

    let cfg = RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 5e-6,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 300_000,
        seed: 3,
        kernel: KernelSpec::LocalSwap,
        // Kill rank 3 (window 1, second walker) at round 4 and drop two
        // protocol messages: the run must survive all of it.
        faults: FaultPlan::none()
            .kill_at_round(3, 4)
            .drop_message(0, 2, 0)
            .drop_message(2, 0, 1),
        ..RewlConfig::default()
    };

    println!("running 2 windows x 2 walkers with a fault plan (kill rank 3 at round 4)...");
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg)?;

    println!("converged: {}", out.converged);
    println!("lost ranks: {:?}", out.lost_ranks);
    for w in &out.windows {
        println!(
            "window {}: lost walkers {}, exchange rate {:.2} ({} of {})",
            w.window,
            w.lost_walkers,
            w.exchange_rate(),
            w.exchange_accepted,
            w.exchange_attempts
        );
    }

    // Survivors' DOS must still match exact enumeration.
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));
    let mut max_err: f64 = 0.0;
    for (&e, &count) in exact.energies().iter().zip(exact.counts()) {
        let bin = dos.grid().bin(e).expect("level in grid");
        assert!(out.mask[bin], "exact level {e} unvisited");
        max_err = max_err.max((dos.ln_g_bin(bin) - (count as f64).ln()).abs());
    }
    println!("max |ln g - exact| over visited bins: {max_err:.3}");
    assert!(out.converged, "survivors must converge");
    assert_eq!(out.lost_ranks, vec![3], "exactly rank 3 should be lost");
    assert!(max_err < 0.8, "degraded run must stay accurate");
    println!("ok: the cluster degraded gracefully and stayed accurate");
    Ok(())
}
