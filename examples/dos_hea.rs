//! Density of states of a high-entropy alloy over an astronomically large
//! configuration space — the paper's headline capability.
//!
//! ```text
//! cargo run --release --example dos_hea [-- --l 4]
//! ```
//!
//! For an equiatomic quaternary alloy of N atoms the configuration count
//! is `N!/( (N/4)! )^4 ≈ e^{1.386·N}`, i.e. `~e^10,000` at the paper's
//! N = 8192. This example samples `ln g(E)` with replica-exchange
//! Wang–Landau and prints the curve; the `ln g` *range* it reports is the
//! quantity the abstract quotes. (The supercell edge is configurable: the
//! default L=3 finishes in seconds; L=16 is the paper-scale workload and
//! is CPU-hours on a laptop.)

use deepthermo::lattice::Composition;
use deepthermo::{DeepThermo, DeepThermoConfig, DeepThermoError, MaterialSpec};

fn main() -> Result<(), DeepThermoError> {
    let l = std::env::args()
        .skip_while(|a| a != "--l")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);

    let mut config = DeepThermoConfig::quick_demo();
    config.material = MaterialSpec::nbmotaw(l);
    config.rewl.num_bins = (16 * l * l).min(512);
    config.rewl.max_sweeps = 200_000;
    let n = config.material.num_sites();

    let comp = Composition::equiatomic(4, n).expect("valid composition");
    println!(
        "NbMoTaW, N = {n}: exact configuration count = e^{:.1}",
        comp.ln_num_configurations()
    );
    println!("(paper scale: N = 8192 gives e^{:.0})\n", {
        Composition::equiatomic(4, 8192)
            .expect("valid")
            .ln_num_configurations()
    });

    let runner = DeepThermo::nbmotaw(config)?;
    let report = runner.run()?;

    println!(
        "sampled ln g(E) over {} visited bins:",
        report.mask.iter().filter(|&&v| v).count()
    );
    println!("{:>12} {:>14}", "E [eV]", "ln g");
    let visited: Vec<usize> = report
        .mask
        .iter()
        .enumerate()
        .filter_map(|(b, &v)| v.then_some(b))
        .collect();
    for &bin in visited.iter().step_by((visited.len() / 24).max(1)) {
        println!(
            "{:>12.4} {:>14.2}",
            report.dos.grid().center(bin),
            report.dos.ln_g_bin(bin)
        );
    }

    println!(
        "\nln g spans {:.1} natural-log units (visited bins)",
        report.ln_g_range
    );
    println!(
        "normalization check: ln Σ g = {:.2} vs exact {:.2}",
        deepthermo::wanglandau::histogram::log_sum_exp(
            visited.iter().map(|&b| report.dos.ln_g_bin(b))
        ),
        comp.ln_num_configurations()
    );
    Ok(())
}
