//! Fault tolerance: checkpoint a Wang–Landau walker mid-run and resume.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```
//!
//! Production runs at the paper's scale live for hours across thousands of
//! GPUs, so walkers persist their state (DOS estimate, histogram,
//! configuration, schedule position) and resume after failures. This
//! example interrupts a run, round-trips the state through the serialized
//! checkpoint format, and finishes the run from the restore.

use deepthermo::hamiltonian::nbmotaw;
use deepthermo::lattice::{Composition, Configuration, Structure, Supercell};
use deepthermo::proposal::{LocalSwap, ProposalContext};
use deepthermo::wanglandau::{
    explore_energy_range, EnergyGrid, LnfSchedule, WalkerCheckpoint, WlParams, WlWalker,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cell = Supercell::cubic(Structure::bcc(), 3);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).expect("composition");
    let h = nbmotaw();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&h, &nt, &comp, 30, 0.02, &mut rng);
    let params = WlParams {
        ln_f_initial: 1.0,
        ln_f_final: 1e-4,
        schedule: LnfSchedule::OneOverT {
            flatness: 0.7,
            reduction: 0.5,
        },
        sweeps_per_check: 10,
    };

    // Phase 1: sample, then "crash".
    let mut walker = WlWalker::new(
        EnergyGrid::new(range.0, range.1, 96),
        params.clone(),
        Configuration::random(&comp, &mut rng),
        &h,
        &nt,
        Box::new(LocalSwap::new()),
        7,
    );
    assert!(walker.drive_into_window(&h, &nt, 5_000));
    let partial = walker.run(&h, &nt, &ctx, 500);
    println!(
        "phase 1: {} sweeps, ln f = {:.3e}, converged = {}",
        partial.sweeps, partial.ln_f, partial.converged
    );

    let blob = walker.checkpoint().encode();
    println!("checkpoint captured: {} bytes", blob.len());
    drop(walker); // the "node failure"

    // Phase 2: restore and finish.
    let cp = WalkerCheckpoint::decode(&blob).expect("valid checkpoint");
    let mut resumed = WlWalker::from_checkpoint(&cp, params, Box::new(LocalSwap::new()), 99);
    println!(
        "restored: {} prior moves, ln f = {:.3e}, energy = {:.4} eV",
        resumed.total_moves(),
        resumed.ln_f(),
        resumed.energy()
    );
    let done = resumed.run(&h, &nt, &ctx, 200_000);
    println!(
        "phase 2: +{} sweeps, ln f = {:.3e}, converged = {}",
        done.sweeps, done.ln_f, done.converged
    );
    let mask = resumed.visited_mask();
    println!(
        "final DOS: {} visited bins, ln g range {:.1}",
        mask.iter().filter(|&&v| v).count(),
        resumed.dos().ln_g_range(Some(&mask))
    );
}
