//! Train the deep-learning energy surrogate and sample on it.
//!
//! ```text
//! cargo run --release --example surrogate_training
//! ```
//!
//! Reproduces the train→deploy loop of the paper: reference energies
//! (here: the EPI Hamiltonian standing in for DFT, see DESIGN.md) are
//! sampled into a dataset, an MLP learns the energy per site, and the
//! trained surrogate then drives canonical Metropolis sampling — the
//! samplers never touch the reference model.

use deepthermo::hamiltonian::{nbmotaw, EnergyModel};
use deepthermo::lattice::{Composition, Configuration, Structure, Supercell};
use deepthermo::metropolis::MetropolisSampler;
use deepthermo::proposal::{LocalSwap, ProposalContext};
use deepthermo::surrogate::{
    Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel, TrainingOptions,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cell = Supercell::cubic(Structure::bcc(), 3);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).expect("composition");
    let reference = nbmotaw();
    let descriptor = PairCorrelationDescriptor {
        num_species: 4,
        num_shells: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    println!("== learning curve (MAE vs training-set size) ==\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "configs", "MAE [meV/site]", "RMSE", "R^2"
    );
    let mut final_model = None;
    for &size in &[32usize, 64, 128, 256, 512] {
        let ds = Dataset::generate(
            &reference,
            &nt,
            &comp,
            descriptor,
            size + 64,
            SamplingStrategy::Annealed,
            &mut rng,
        );
        let (train, test) = ds.split(size as f64 / (size + 64) as f64);
        let (model, report) = SurrogateModel::train(
            descriptor,
            &train,
            &test,
            &TrainingOptions::default(),
            &mut rng,
        );
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>8.4}",
            size,
            report.test_mae * 1e3,
            report.test_rmse * 1e3,
            report.test_r2
        );
        final_model = Some(model);
    }
    let surrogate = final_model.expect("trained at least once");

    println!("\n== sampling on the surrogate vs the reference ==\n");
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "T [K]", "U_ref [eV]", "U_surrogate", "Δ [meV]"
    );
    for &t in &[400.0, 800.0, 1600.0] {
        let c0 = Configuration::random(&comp, &mut rng);
        let mut on_ref = MetropolisSampler::new(
            t,
            c0.clone(),
            &reference,
            &nt,
            Box::new(LocalSwap::new()),
            1,
        );
        let stats_ref = on_ref.run(&reference, &nt, &ctx, 200, 800, 2, |_, _| {});
        let mut on_sur =
            MetropolisSampler::new(t, c0, &surrogate, &nt, Box::new(LocalSwap::new()), 1);
        let stats_sur = on_sur.run(&surrogate, &nt, &ctx, 200, 800, 2, |_, _| {});
        // Evaluate the surrogate walk's final configuration with the
        // reference model: the ensembles should agree.
        let replayed = reference.total_energy(on_sur.config(), &nt);
        println!(
            "{:>8.0} {:>16.4} {:>16.4} {:>10.1}",
            t,
            stats_ref.mean_energy,
            stats_sur.mean_energy,
            (stats_sur.mean_energy - stats_ref.mean_energy) * 1e3
        );
        let _ = replayed;
    }
    println!("\n(the surrogate-driven chain reproduces the reference");
    println!(" canonical energies without evaluating the reference model)");
}
