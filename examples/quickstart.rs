//! Quickstart: evaluate the thermodynamics of a small NbMoTaW supercell.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the full DeepThermo pipeline on a 3×3×3 BCC supercell (54 atoms):
//! energy-range discovery, parallel replica-exchange Wang–Landau sampling,
//! and evaluation of U(T), C_v(T), S(T) plus Warren–Cowley short-range
//! order, finishing with the order–disorder transition estimate.

use deepthermo::{DeepThermo, DeepThermoConfig, DeepThermoError};

fn main() -> Result<(), DeepThermoError> {
    let config = DeepThermoConfig::quick_demo();
    println!(
        "DeepThermo quickstart: NbMoTaW, {} sites, {} windows x {} walkers",
        config.material.num_sites(),
        config.rewl.num_windows,
        config.rewl.walkers_per_window
    );

    let runner = DeepThermo::nbmotaw(config)?;
    let report = runner.run()?;

    println!("\n== summary =====================================");
    print!("{}", report.summary());

    println!("\n== thermodynamics (every 10th point) ===========");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "T [K]", "U [eV]", "Cv/kB", "S/kB"
    );
    for p in report.thermo.iter().step_by(10) {
        println!("{:>8.0} {:>12.4} {:>12.3} {:>12.3}", p.t, p.u, p.cv, p.s);
    }

    println!("\n== first-shell Warren-Cowley SRO at the ends ===");
    for curve in &report.sro_curves {
        let lo = curve.points.first().expect("points");
        let hi = curve.points.last().expect("points");
        println!(
            "{:>6}: alpha({:.0} K) = {:+.3}   alpha({:.0} K) = {:+.3}",
            curve.label, lo.0, lo.1, hi.0, hi.1
        );
    }

    println!(
        "\nDensity of states spans e^{:.0}; transition near {:.0} K.",
        report.ln_g_range, report.transition_temperature
    );
    Ok(())
}
