//! Scaling study: DeepThermo on simulated V100 and MI250X fleets.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```
//!
//! Two layers, matching DESIGN.md's substitution note:
//!
//! 1. **Projected scaling** — the calibrated analytic performance model
//!    extrapolates one walker-per-GPU weak scaling to the paper's 3,000
//!    GPUs on both Summit-class (V100) and Frontier-class (MI250X)
//!    hardware.
//! 2. **Measured scaling** — a real thread-parallel REWL run at increasing
//!    walker counts on this machine, demonstrating the functional path.

use std::time::Instant;

use deepthermo::hamiltonian::nbmotaw;
use deepthermo::hpc::{weak_scaling_table, GpuSpec, WorkloadShape};
use deepthermo::lattice::{Composition, Structure, Supercell};
use deepthermo::rewl::{run_rewl, KernelSpec, RewlConfig};
use deepthermo::wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use deepthermo::DeepThermoError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), DeepThermoError> {
    println!("== projected weak scaling (perf model, 1 walker/GPU) ==\n");
    let shape = WorkloadShape::paper_default();
    let ranks = [8usize, 32, 128, 512, 1024, 2048, 3000];
    for gpu in [GpuSpec::v100(), GpuSpec::mi250x_gcd()] {
        println!("{}:", gpu.name);
        println!(
            "{:>7} {:>14} {:>16} {:>12}",
            "GPUs", "s/iteration", "moves/s (agg.)", "efficiency"
        );
        for row in weak_scaling_table(&gpu, &shape, &ranks) {
            println!(
                "{:>7} {:>14.4} {:>16.3e} {:>12.3}",
                row.ranks, row.time_per_iteration_s, row.throughput, row.efficiency
            );
        }
        println!();
    }

    println!("== measured thread-parallel REWL on this machine ==\n");
    let cell = Supercell::cubic(Structure::bcc(), 3);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).expect("composition");
    let h = nbmotaw();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&h, &nt, &comp, 30, 0.02, &mut rng);

    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "walkers", "windows", "wall [s]", "moves/s (agg.)"
    );
    for (windows, per_window) in [(2usize, 1usize), (2, 2), (4, 2), (4, 4)] {
        let cfg = RewlConfig {
            num_windows: windows,
            walkers_per_window: per_window,
            overlap: 0.75,
            num_bins: 48,
            wl: WlParams {
                ln_f_initial: 1.0,
                ln_f_final: 1e-2,
                schedule: LnfSchedule::OneOverT {
                    flatness: 0.7,
                    reduction: 0.5,
                },
                sweeps_per_check: 10,
            },
            exchange_every_sweeps: 10,
            observe_every_sweeps: 4,
            max_sweeps: 20_000,
            seed: 1,
            kernel: KernelSpec::LocalSwap,
            ..RewlConfig::default()
        };
        let start = Instant::now();
        let out = run_rewl(&h, &nt, &comp, range, &cfg)?;
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>10} {:>12.2} {:>14.3e}",
            windows * per_window,
            windows,
            wall,
            out.total_moves as f64 / wall
        );
    }
    println!("\n(the projected table is what reproduces the paper's Fig/Tab");
    println!(" shapes at 3,000 GPUs; the measured table exercises the same");
    println!(" code path with real threads)");
    Ok(())
}
