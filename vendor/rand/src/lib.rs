//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small API subset DeepThermo uses: the object-safe
//! [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`/`random_range`), [`SeedableRng`], and [`seq::SliceRandom`].
//! Semantics match the upstream API shape; the generated streams are *not*
//! bit-compatible with upstream `rand`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The object-safe core of a random number generator.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draw one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty float range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty float range");
                let u = <$t as StandardUniform>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` via 128-bit widening multiply
/// with rejection (Lemire's method). `span == 0` means the full u64 range.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (the standard
    /// upstream convenience).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build by drawing a seed from another generator.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public so sibling vendored crates reuse it).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream from a 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngExt};

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.random_range(0u8..3);
            assert!(w < 3);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = Counter(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let y = dyn_rng.random_range(0..10usize);
        assert!(y < 10);
    }
}
