//! Vendored stand-in for `criterion`.
//!
//! Keeps the bench suite compiling and runnable without the registry. By
//! default every benchmark body is *skipped* so `cargo test` / `cargo
//! bench` finish instantly in CI; set `DT_RUN_BENCH=1` to actually execute
//! each routine a few times and print crude per-iteration wall-clock
//! timings (no statistics, no HTML reports).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

fn bench_enabled() -> bool {
    std::env::var_os("DT_RUN_BENCH").is_some_and(|v| v != "0")
}

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a handful of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        report_elapsed(start, self.iters);
    }

    /// Time `routine` with a fresh `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut inputs = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            inputs.push(setup());
        }
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        report_elapsed(start, self.iters);
    }

    /// Like [`Bencher::iter_batched`] but passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut inputs = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            inputs.push(setup());
        }
        let start = Instant::now();
        for mut input in inputs {
            black_box(routine(&mut input));
        }
        report_elapsed(start, self.iters);
    }
}

fn report_elapsed(start: Instant, iters: u64) {
    let elapsed = start.elapsed();
    let per_iter = elapsed / iters.max(1) as u32;
    println!("    {iters} iters in {elapsed:?} ({per_iter:?}/iter)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted, scaled down).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Run one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, f);
        self
    }

    /// Run one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, |b| f(b, input));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the sample count (accepted; this shim runs min(3, n) iters).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement time (accepted, ignored).
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if !bench_enabled() {
            println!("bench {name}: skipped (set DT_RUN_BENCH=1 to run)");
            return;
        }
        println!("bench {name}:");
        let mut b = Bencher {
            iters: self.sample_size.clamp(1, 3) as u64,
        };
        f(&mut b);
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_named(name, f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Parse CLI args (no-op shim for `criterion_main!`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_compiles_and_skips_by_default() {
        let mut c = Criterion::default().sample_size(30);
        a_bench(&mut c);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
