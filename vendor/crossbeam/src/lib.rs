//! Vendored minimal `crossbeam`.
//!
//! Covers the API surface this workspace uses, offline: bounded MPMC
//! [`channel`]s (the job queue behind `dt-serve`'s worker pool and 429
//! backpressure) built on std sync primitives, plus
//! [`std::thread::scope`] re-exported as `crossbeam::scope`'s closest
//! std equivalent.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;

pub use std::thread::scope;
