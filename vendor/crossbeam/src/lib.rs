//! Vendored placeholder for `crossbeam`.
//!
//! `dt-hpc` declares the dependency but the sources only use std threading
//! plus the vendored `parking_lot`; this empty crate satisfies the
//! manifest without a registry. Re-exports [`std::thread::scope`] as
//! `crossbeam::scope`'s closest std equivalent should future code want it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use std::thread::scope;
