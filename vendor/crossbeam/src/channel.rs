//! Bounded multi-producer multi-consumer channels.
//!
//! A minimal drop-in for the `crossbeam-channel` API surface DeepThermo
//! uses: [`bounded`] queues with non-blocking [`Sender::try_send`] (the
//! backpressure primitive behind `dt-serve`'s 429 path) and blocking /
//! timeout-bounded receives for worker pools. Implemented with a mutex
//! and two condvars — correctness over microseconds; the serving hot
//! path amortizes one channel operation over an entire connection.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error from [`Sender::try_send`], carrying the rejected message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error from [`Sender::send`]: every receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error from [`Receiver::recv`]: the channel is empty and every sender
/// is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error from [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// The sending half of a bounded channel. Clonable; the channel
/// disconnects for receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel. Clonable (any message goes
/// to exactly one receiver); the channel disconnects for senders when
/// the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel holding at most `cap` in-flight messages.
///
/// # Panics
/// Panics when `cap == 0` (rendezvous channels are not implemented).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue without blocking; a full queue returns the message in
    /// [`TrySendError::Full`] so the caller can shed load.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().expect("channel lock");
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if st.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the queue is full.
    ///
    /// # Errors
    /// [`SendError`] when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().expect("channel lock");
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            if st.queue.len() < self.shared.cap {
                st.queue.push_back(msg);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).expect("channel lock");
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeue, blocking while the queue is empty.
    ///
    /// # Errors
    /// [`RecvError`] when the queue is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).expect("channel lock");
        }
    }

    /// Dequeue, blocking at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when the queue is empty and
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .expect("channel lock");
            st = guard;
            if res.timed_out() && st.queue.is_empty() {
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Dequeue without blocking; `None` when the queue is empty (whether
    /// or not senders remain).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("channel lock");
        let msg = st.queue.pop_front();
        drop(st);
        if msg.is_some() {
            self.shared.not_full.notify_one();
        }
        msg
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn try_send_sheds_load_when_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_drains_after_senders_drop() {
        let (tx, rx) = bounded(4);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
        assert_eq!(tx.send(8), Err(SendError(8)));
    }

    #[test]
    fn mpmc_each_message_delivered_exactly_once() {
        let (tx, rx) = bounded(8);
        let n_senders = 4;
        let per_sender = 250u32;
        let n_receivers = 3;
        let received = std::thread::scope(|s| {
            for t in 0..n_senders {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_sender {
                        tx.send(t * per_sender + i).unwrap();
                    }
                });
            }
            drop(tx);
            let handles: Vec<_> = (0..n_receivers)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        });
        let expected: Vec<u32> = (0..n_senders * per_sender).collect();
        assert_eq!(received, expected);
    }

    #[test]
    fn blocking_send_waits_for_space() {
        let (tx, rx) = bounded(1);
        tx.try_send(0).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| tx.send(1).unwrap());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        });
    }
}
