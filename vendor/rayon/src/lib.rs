//! Vendored stand-in for `rayon`: the `par_iter` API shape backed by
//! ordinary sequential iterators.
//!
//! The registry is unreachable in this build environment, so the
//! work-stealing pool is replaced by a drop-in shim: `into_par_iter()` /
//! `par_iter()` hand back the corresponding *sequential* iterator, and all
//! downstream combinators (`map`, `filter`, `collect`, `sum`, …) are the
//! std `Iterator` methods, which have identical semantics and ordering
//! guarantees to rayon's indexed parallel iterators. Code written against
//! this shim stays source-compatible with real rayon.
//!
//! Parallel REWL does not go through this shim at all — it runs on
//! `dt_hpc::ThreadCluster`'s real threads — so only ancillary paths
//! (dataset preparation, the serial-baseline driver) lose parallelism.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Conversion into a "parallel" (here: sequential) iterator by value.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Convert into an iterator (sequential in this shim).
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Conversion into a "parallel" iterator over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Iterate over `&self` (sequential in this shim).
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Conversion into a "parallel" iterator over mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Iterate over `&mut self` (sequential in this shim).
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    type Item = <&'data mut C as IntoIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Run two closures (sequentially in this shim) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The traits user code is expected to glob-import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..10usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_vec_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let total: i32 = v.par_iter().sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }
}
