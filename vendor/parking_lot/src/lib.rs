//! Vendored stand-in for `parking_lot` built on `std::sync`.
//!
//! Provides the `parking_lot` API shape (guards returned without a
//! `Result`, condvars that take `&mut MutexGuard`) for the subset
//! DeepThermo's simulated cluster fabric uses: [`Mutex`], [`Condvar`]
//! (including [`Condvar::wait_for`], which the fault-tolerant comm layer
//! needs for deadline-bounded receives), and [`RwLock`].
//!
//! Poisoning is deliberately ignored — a panicking rank must not poison
//! the shared fabric for its surviving peers, matching `parking_lot`'s
//! no-poisoning semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that hands out guards directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end by timing out (vs. a notification)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard.
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let lock = Arc::new(Mutex::new(5u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*lock.lock(), 5);
    }
}
