//! Vendored ChaCha generators over the vendored `rand` traits.
//!
//! Implements the genuine ChaCha block function (D. J. Bernstein) with a
//! 64-bit block counter and a 64-bit stream id, which gives the two
//! properties DeepThermo relies on:
//!
//! * **determinism** — the stream is a pure function of `(seed, stream)`;
//! * **seekability** — `get_word_pos`/`set_word_pos` allow a run to record
//!   its RNG position in a checkpoint manifest and resume bit-exactly.
//!
//! Streams are *not* bit-compatible with upstream `rand_chacha` (the seed
//! expansion differs), which is irrelevant in-repo: all reproducibility
//! guarantees are stated against this implementation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// The ChaCha quarter round.
#[inline]
fn quarter(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with `R` double-rounds per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const DR: usize> {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buffer: [u32; WORDS_PER_BLOCK],
    index: usize,
}

impl<const DR: usize> ChaChaRng<DR> {
    fn block(&self) -> [u32; WORDS_PER_BLOCK] {
        let mut st: [u32; WORDS_PER_BLOCK] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let init = st;
        for _ in 0..DR {
            // Column rounds.
            quarter(&mut st, 0, 4, 8, 12);
            quarter(&mut st, 1, 5, 9, 13);
            quarter(&mut st, 2, 6, 10, 14);
            quarter(&mut st, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut st, 0, 5, 10, 15);
            quarter(&mut st, 1, 6, 11, 12);
            quarter(&mut st, 2, 7, 8, 13);
            quarter(&mut st, 3, 4, 9, 14);
        }
        for (s, i) in st.iter_mut().zip(init) {
            *s = s.wrapping_add(i);
        }
        st
    }

    fn refill(&mut self) {
        self.buffer = self.block();
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The 64-bit stream id (orthogonal to the seed).
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Select an independent stream; restarts output at that stream's
    /// beginning so `(seed, stream)` fully determines what follows.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = WORDS_PER_BLOCK; // force refill
    }

    /// The seed as bytes (for checkpoint manifests).
    pub fn get_seed(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.key) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Absolute position in the output stream, in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        if self.index >= WORDS_PER_BLOCK {
            // Buffer exhausted (or never filled): `counter` is the next
            // block to generate, and everything before it was consumed.
            (self.counter as u128) * WORDS_PER_BLOCK as u128
        } else {
            // Mid-buffer: `counter` was already advanced past the
            // buffered block, so back it off by one.
            (self.counter.wrapping_sub(1) as u128) * WORDS_PER_BLOCK as u128 + self.index as u128
        }
    }

    /// Seek to an absolute word position (inverse of
    /// [`ChaChaRng::get_word_pos`]).
    pub fn set_word_pos(&mut self, pos: u128) {
        self.counter = (pos / WORDS_PER_BLOCK as u128) as u64;
        self.refill();
        self.index = (pos % WORDS_PER_BLOCK as u128) as usize;
    }
}

impl<const DR: usize> SeedableRng for ChaChaRng<DR> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            stream: 0,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl<const DR: usize> Rng for ChaChaRng<DR> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// ChaCha with 8 rounds (4 double-rounds): the fast variant the paper's
/// per-walker streams use.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(1);
        let matches = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn word_pos_round_trip_resumes_exactly() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let pos = a.get_word_pos();
        let upcoming: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();

        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(3);
        b.set_word_pos(pos);
        let replay: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(upcoming, replay);
    }

    #[test]
    fn word_pos_counts_words() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(r.get_word_pos(), 0);
        r.next_u32();
        assert_eq!(r.get_word_pos(), 1);
        for _ in 0..16 {
            r.next_u32();
        }
        assert_eq!(r.get_word_pos(), 17);
    }

    #[test]
    fn output_looks_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut ones = 0u32;
        let mut r2 = ChaCha8Rng::seed_from_u64(10);
        for _ in 0..1000 {
            ones += r2.next_u64().count_ones();
        }
        let frac = ones as f64 / 64_000.0;
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }
}
