//! Vendored mini-proptest.
//!
//! A small, dependency-free property-testing harness exposing the subset
//! of the `proptest` macro/strategy surface DeepThermo's test suites use:
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map`/`collection::vec`
//! strategies, `any::<T>()`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: cases are drawn from a ChaCha stream seeded
//! deterministically from the test name (every run explores the same
//! cases), and failing inputs are **not shrunk** — the failure message
//! reports the case seed so a failure can be replayed under a debugger by
//! re-running the test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filter generated values; draws are retried (bounded) until
        /// `pred` holds.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.whence);
        }
    }

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// `any::<T>()` — full-range arbitrary values.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{RngExt, StandardUniform};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: StandardUniform> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> T {
            rng.random()
        }
    }

    /// Strategy yielding arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Case execution: config, RNG, and the test-runner loop.
pub mod test_runner {
    use rand::SeedableRng;

    /// The deterministic per-case RNG.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: draw a fresh case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: repeatedly draw cases until `config.cases`
    /// accepted runs pass, panicking on the first failure.
    pub fn run_proptest<F>(config: ProptestConfig, name: &str, property: F)
    where
        F: Fn(&mut TestRng) -> TestCaseResult,
    {
        // Deterministic across runs: seeded by the test name only.
        let base = fnv1a(name);
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let reject_budget = config.cases as u64 * 64 + 1024;
        let mut case = 0u64;
        while accepted < config.cases {
            let case_seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            match property(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_budget,
                        "property {name}: prop_assume! rejected {rejected} cases \
                         (accepted only {accepted}/{})",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed at case #{accepted} (seed {case_seed}): {msg}");
                }
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests (see the crate docs for the supported surface).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_proptest(
                    $config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {y}");
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0u8..4, 0.0f64..1.0), 1..9),
            n in crate::collection::vec(0usize..10, 3),
        ) {
            prop_assert_eq!(n.len(), 3);
            prop_assert!(!pairs.is_empty() && pairs.len() < 9);
            for (s, f) in pairs {
                prop_assert!(s < 4 && (0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn maps_and_oneof_apply(e in evens(), pick in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 7, "pick = {pick}");
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u64..1000, 4..9);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| s.generate(&mut TestRng::seed_from_u64(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| s.generate(&mut TestRng::seed_from_u64(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property fails_visibly failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run_proptest(ProptestConfig::with_cases(4), "fails_visibly", |_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }
}
